//! Workspace smoke test: every sub-crate must stay reachable through the
//! facade re-exports, and one cheap call per crate must work. (The
//! companion check that `cargo run --example quickstart` exits 0 lives in
//! CI — see `.github/workflows/ci.yml` — since spawning cargo from a test
//! is slow and non-hermetic.)

use octopus::sim::Duration;

#[test]
fn facade_reexports_all_nine_subcrates() {
    // id
    let a = octopus::id::NodeId(10);
    assert_eq!(a.distance_to(octopus::id::NodeId(20)), 10);

    // crypto
    let mac = octopus::crypto::hmac_sha256(b"key", b"msg");
    assert_eq!(mac.0.len(), 32);

    // sim
    assert_eq!(Duration::from_secs(2).as_millis_f64(), 2000.0);

    // net
    let ledger = octopus::net::BandwidthLedger::default();
    assert_eq!(ledger.total_bytes(), 0);

    // chord
    let chord_cfg = octopus::chord::ChordConfig::for_network(1000);
    assert!(chord_cfg.fingers > 0);

    // core
    let oct_cfg = octopus::core::OctopusConfig::for_network(100);
    assert!(oct_cfg.chord.successors > 0);

    // baselines
    assert_eq!(
        octopus::baselines::HALO_REDUNDANCY * octopus::baselines::HALO_DEGREE,
        32
    );

    // anonymity
    let anon = octopus::anonymity::AnonymityConfig::default();
    assert!(anon.n > 0);

    // metrics
    let h = octopus::metrics::entropy_bits(&[0.5, 0.5]);
    assert!((h - 1.0).abs() < 1e-12);
}

#[test]
fn facade_security_sim_runs_end_to_end() {
    // the quick-start path of src/lib.rs, kept tiny: a short passive sim
    let cfg = octopus::core::SimConfig {
        n: 60,
        duration: Duration::from_secs(30),
        octopus: octopus::core::OctopusConfig::for_network(60),
        attack: octopus::core::AttackKind::Passive,
        ..octopus::core::SimConfig::default()
    };
    let report = octopus::core::SecuritySim::new(cfg).run();
    assert_eq!(report.false_positives, 0);
}
