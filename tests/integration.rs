//! Cross-crate integration tests through the public facade.

use octopus::anonymity::{AnonymityConfig, LookupPresim, PresimConfig};
use octopus::chord::{iterative_lookup, ChordConfig, GroundTruthView};
use octopus::core::{AttackKind, OctopusConfig, SecuritySim, SimConfig};
use octopus::crypto::{onion, CertificateAuthority, KeyPair};
use octopus::id::{IdSpace, Key, NodeId};
use octopus::sim::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn facade_exposes_a_working_stack() {
    // ring + lookup
    let mut rng = StdRng::seed_from_u64(1);
    let space = IdSpace::random(300, &mut rng);
    let view = GroundTruthView::new(&space, ChordConfig::for_network(300));
    let key = Key(rng.gen());
    let trace = iterative_lookup(&view, space.random_member(&mut rng), key);
    assert_eq!(trace.result(), Some(space.owner_of(key).owner));

    // crypto: certificates + onion round trip
    let mut ca = CertificateAuthority::new(&mut rng);
    let kp = KeyPair::generate(&mut rng);
    let cert = ca.issue(NodeId(7), 1, kp.public(), u64::MAX);
    assert!(ca.check(&cert, 0).is_ok());
    let keys = [[1u8; 32], [2u8; 32]];
    let wrapped = onion::wrap(b"q", &keys, &[9, 0], 1);
    let l1 = onion::unwrap(&wrapped, &keys[0]).unwrap();
    let l2 = onion::unwrap(&l1.inner, &keys[1]).unwrap();
    assert_eq!(l2.inner, b"q");
}

#[test]
fn end_to_end_attack_and_eviction() {
    let cfg = SimConfig {
        n: 120,
        malicious_fraction: 0.2,
        attack: AttackKind::LookupBias,
        attack_rate: 1.0,
        duration: Duration::from_secs(200),
        seed: 5,
        octopus: OctopusConfig::for_network(120),
        ..SimConfig::default()
    };
    let report = SecuritySim::new(cfg).run();
    assert_eq!(report.false_positives, 0);
    assert!(report.revocations > 0, "attackers must be identified");
    assert!(report.completed_lookups > 50);
}

#[test]
fn anonymity_pipeline_runs_end_to_end() {
    let presim = LookupPresim::run(PresimConfig {
        n: 3000,
        samples: 200,
        seed: 3,
    });
    let cfg = AnonymityConfig {
        n: 3000,
        f: 0.2,
        alpha: 0.01,
        dummies: 6,
        trials: 100,
        seed: 4,
    };
    let h_i = octopus::anonymity::initiator_entropy(&cfg, &presim);
    let h_t = octopus::anonymity::target_entropy(&cfg, &presim);
    let ideal = cfg.ideal_entropy();
    assert!(h_i > ideal - 3.0 && h_i <= ideal + 0.01);
    assert!(h_t > ideal - 4.0 && h_t <= ideal + 0.01);
}

#[test]
fn timing_attack_defeated_through_facade() {
    let cfg = octopus::anonymity::TimingConfig {
        trials: 100,
        ..Default::default()
    };
    let err = octopus::anonymity::timing_attack_error_rate(&cfg);
    assert!(err > 0.9);
}
