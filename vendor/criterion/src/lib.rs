//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides
//! the slice of the criterion 0.5 API the `octopus-bench` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `throughput` / `sample_size` / `finish`), [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple warm-up + median-of-samples wall-clock
//! measurement printed as `ns/iter` — adequate for spotting order-of-
//! magnitude regressions, not for microsecond-precision statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (reported, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure of `bench_function`; drives the measurement.
pub struct Bencher {
    samples: u64,
    measured: Vec<Duration>,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            measured: Vec::new(),
        }
    }

    /// Measure `f`, called repeatedly: a warm-up pass sizes the batch so
    /// each sample runs ≥ ~1 ms, then `samples` batches are timed.
    // Sanctioned wall-clock site: timing real elapsed time is the
    // bench harness's entire purpose (OCT-LINT-002 exempts benches).
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and batch sizing
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.measured.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.measured
                .push(Duration::from_nanos(t0.elapsed().as_nanos() as u64 / batch));
        }
    }

    fn median_ns(&mut self) -> u64 {
        if self.measured.is_empty() {
            return 0;
        }
        self.measured.sort_unstable();
        self.measured[self.measured.len() / 2].as_nanos() as u64
    }
}

/// The benchmark driver; one per `criterion_group!`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Run one benchmark and print its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.median_ns(), None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.median_ns(),
            self.throughput,
        );
        self
    }

    /// Close the group (printing is immediate; this is a no-op marker).
    pub fn finish(&mut self) {}
}

fn report(name: &str, median_ns: u64, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Bytes(bytes)) if median_ns > 0 => {
            let mib_s = bytes as f64 / (median_ns as f64 / 1e9) / (1024.0 * 1024.0);
            println!("{name:<40} {median_ns:>12} ns/iter   {mib_s:>10.1} MiB/s");
        }
        Some(Throughput::Elements(elems)) if median_ns > 0 => {
            let elem_s = elems as f64 / (median_ns as f64 / 1e9);
            println!("{name:<40} {median_ns:>12} ns/iter   {elem_s:>10.0} elem/s");
        }
        _ => println!("{name:<40} {median_ns:>12} ns/iter"),
    }
}

/// Bundle benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` for one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(5);
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
