//! Slice sampling helpers (rand's `seq` module, subset).

use crate::{Rng, RngCore};

/// Extension methods for random sampling from slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly chosen reference, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Up to `amount` distinct elements, in random order.
    fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(amount.min(self.len()));
        indices.into_iter().map(|i| &self[i]).collect()
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<u32> = (0..10).collect();
        let picked = xs.choose_multiple(&mut rng, 4);
        assert_eq!(picked.len(), 4);
        let mut vals: Vec<u32> = picked.into_iter().copied().collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 4, "choices must be distinct");
    }
}
