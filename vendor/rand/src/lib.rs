//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the rand 0.8 API the Octopus crates actually
//! use: the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`,
//! `fill_bytes`), [`SeedableRng::seed_from_u64`], the deterministic
//! [`rngs::StdRng`], [`seq::SliceRandom`] (`choose`, `shuffle`,
//! `choose_multiple`) and [`thread_rng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of upstream rand — so absolute random sequences differ from
//! upstream, but every determinism property the simulator relies on
//! (same seed ⇒ same stream, distinct seeds ⇒ independent streams)
//! holds. Swapping the real crate back in is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words; everything else derives from this.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the shim's
/// equivalent of rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize, T: Standard> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring rand's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Debiased reduction of a random word into `[0, span)` (`span > 0`).
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    // widening-multiply reduction (Lemire); the bias for simulation-scale
    // spans is < 2^-64 per draw, far below anything the harness measures.
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`; panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;

    /// Build from OS/time entropy — *not* deterministic across runs.
    fn from_entropy() -> Self {
        Self::seed_from_u64(crate::rngs::entropy_seed())
    }
}

/// An automatically seeded RNG for one-off use (examples, demos).
///
/// Unlike upstream rand this is not thread-local state: every call
/// returns a fresh generator seeded from process entropy.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Uniform value of type `T` from [`thread_rng`].
// Sanctioned: the shim's own convenience wrapper over its entropy source.
#[allow(clippy::disallowed_methods)]
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

/// Distribution types (subset; see [`Standard`]).
pub mod distributions {
    pub use crate::Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_bool_probability_rough() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
