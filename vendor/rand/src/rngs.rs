//! Concrete generators: the deterministic [`StdRng`] and the
//! entropy-seeded [`ThreadRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the workspace's deterministic standard generator.
///
/// Not the ChaCha12 of upstream rand, but passes the same practical
/// tests the simulator cares about (equidistribution, stream
/// independence under SplitMix64 seeding) and is substantially faster.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut sm: u64) -> Self {
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_state(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derive a fresh seed from process entropy (time + a process counter).
// Sanctioned wall-clock site: this IS the ambient-entropy source the
// contract routes everything else away from (offline rand shim).
#[allow(clippy::disallowed_types)]
pub(crate) fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    let n = COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    nanos ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (std::process::id() as u64) << 32
}

/// An entropy-seeded generator returned by [`crate::thread_rng`].
#[derive(Clone, Debug)]
pub struct ThreadRng {
    inner: StdRng,
}

impl ThreadRng {
    pub(crate) fn new() -> Self {
        ThreadRng {
            inner: StdRng::seed_from_u64(entropy_seed()),
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_progression() {
        // sanity: stream is stable across runs (regression pin)
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = StdRng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_eq!(first.len(), 4);
    }

    #[test]
    fn thread_rngs_are_independent() {
        let mut a = ThreadRng::new();
        let mut b = ThreadRng::new();
        // counter-salted seeding makes collisions effectively impossible
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
