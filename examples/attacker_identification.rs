//! Watch Octopus evict an active adversary: 20 % of nodes mount the
//! lookup-bias attack, and the secret-surveillance + CA machinery
//! identifies and revokes them (paper Fig. 3).
//!
//!     cargo run --release --example attacker_identification

use octopus::core::{AttackKind, OctopusConfig, SecuritySim, SimConfig};
use octopus::sim::Duration;

fn main() {
    let n = 300;
    println!("{n} nodes, 20% malicious, lookup-bias attack at rate 100%…\n");
    let cfg = SimConfig {
        n,
        malicious_fraction: 0.2,
        attack: AttackKind::LookupBias,
        attack_rate: 1.0,
        duration: Duration::from_secs(400),
        seed: 2,
        octopus: OctopusConfig::for_network(n),
        ..SimConfig::default()
    };
    let report = SecuritySim::new(cfg).run();
    println!("time(s)  remaining malicious fraction");
    for &(t, f) in report.malicious_fraction.iter().step_by(4) {
        let bar = "#".repeat((f * 200.0) as usize);
        println!("{t:6.0}   {f:.3} {bar}");
    }
    println!(
        "\nrevocations: {}  (honest nodes revoked: {})",
        report.revocations, report.false_positives
    );
    println!(
        "lookups biased before eviction: {} of {}",
        report.biased_lookups, report.completed_lookups
    );
}
