//! Measure how much an adversary learns: Octopus H(I)/H(T) vs the
//! NISAN, Torsk and Chord baselines (paper Figs. 5/6), on a reduced
//! 20 000-node ring.
//!
//!     cargo run --release --example anonymity_analysis

use octopus::anonymity::{
    chord_entropies, initiator_entropy, nisan_entropies, target_entropy, torsk_entropies,
    AnonymityConfig, LookupPresim, PresimConfig,
};

fn main() {
    let n = 20_000;
    println!("pre-simulating lookups on an N = {n} ring…");
    let presim = LookupPresim::run(PresimConfig {
        n,
        samples: 800,
        seed: 7,
    });
    let cfg = AnonymityConfig {
        n,
        f: 0.2,
        alpha: 0.01,
        dummies: 6,
        trials: 400,
        seed: 42,
    };
    let ideal = cfg.ideal_entropy();
    println!("ideal entropy: {ideal:.2} bits  (f = 20%, alpha = 1%, 6 dummies)\n");
    let h_i = initiator_entropy(&cfg, &presim);
    let h_t = target_entropy(&cfg, &presim);
    let nis = nisan_entropies(&cfg, &presim);
    let tor = torsk_entropies(&cfg, &presim);
    let cho = chord_entropies(&cfg, &presim);
    println!("scheme    H(I)      leak    H(T)      leak");
    println!(
        "Octopus   {h_i:6.2}  {:6.2}  {h_t:6.2}  {:6.2}",
        ideal - h_i,
        ideal - h_t
    );
    println!(
        "NISAN     {:6.2}  {:6.2}  {:6.2}  {:6.2}",
        nis.h_i,
        ideal - nis.h_i,
        nis.h_t,
        ideal - nis.h_t
    );
    println!(
        "Torsk     {:6.2}  {:6.2}  {:6.2}  {:6.2}",
        tor.h_i,
        ideal - tor.h_i,
        tor.h_t,
        ideal - tor.h_t
    );
    println!(
        "Chord     {:6.2}  {:6.2}  {:6.2}  {:6.2}",
        cho.h_i,
        ideal - cho.h_i,
        cho.h_t,
        ideal - cho.h_t
    );
    println!("\n(the paper's headline: Octopus leaks 4-6x less than NISAN/Torsk)");
}
