//! Quickstart: spin up a small Octopus network, watch it run anonymous
//! lookups, and confirm nothing goes wrong in an honest deployment.
//!
//!     cargo run --release --example quickstart

use octopus::core::{AttackKind, OctopusConfig, SecuritySim, SimConfig};
use octopus::sim::Duration;

fn main() {
    let n = 200;
    println!("building an Octopus network of {n} nodes (all honest)…");
    let cfg = SimConfig {
        n,
        malicious_fraction: 0.0,
        attack: AttackKind::Passive,
        mean_lifetime: None,
        duration: Duration::from_secs(180),
        seed: 1,
        octopus: OctopusConfig::for_network(n),
        lookups_enabled: true,
        scheduler: Default::default(),
        shards: 1,
        ..SimConfig::default()
    };
    let report = SecuritySim::new(cfg).run();
    println!("ran 180 simulated seconds:");
    println!(
        "  anonymous lookups completed: {}",
        report.completed_lookups
    );
    println!("  wrong results:               {}", report.biased_lookups);
    println!("  relay-selection walks ok:    {}", report.walks_ok);
    println!("  revocations (should be 0):   {}", report.revocations);
    let mut lat = octopus::metrics::Summary::new();
    lat.extend(report.lookup_latencies_ms.iter().map(|&ms| ms / 1000.0));
    println!(
        "  lookup latency: mean {:.2}s, median {:.2}s (each query rides a 4-relay onion path)",
        lat.mean(),
        lat.median()
    );
}
