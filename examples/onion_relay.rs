//! Drive the *real byte-level* onion encryption over live threads: three
//! relay threads forward a layered query, each stripping exactly one
//! layer, with the middle relay adding the anti-timing-analysis delay
//! (paper §4.1/§4.7).
//!
//!     cargo run --release --example onion_relay

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use octopus::crypto::onion;
use rand::Rng;

/// Master seed for the demo's derived RNG streams.
const DEMO_SEED: u64 = 0x0C70;

struct Relay {
    name: &'static str,
    key: [u8; 32],
    #[allow(dead_code)]
    addr: u64,
    inbox: Receiver<Vec<u8>>,
    network: Vec<(u64, Sender<Vec<u8>>)>,
    add_delay: bool,
}

impl Relay {
    fn run(self, log: Arc<Mutex<Vec<String>>>) {
        // each relay handles exactly one packet in this demo
        if let Ok(packet) = self.inbox.recv() {
            let layer = onion::unwrap(&packet, &self.key).expect("valid layer");
            if self.add_delay {
                // the middle relay B blurs timing correlation (§4.7);
                // the jitter draws from a seeded per-relay stream so the
                // demo replays identically (determinism contract)
                let ms = octopus::sim::derive_rng(DEMO_SEED, b"relay-delay", self.addr)
                    .gen_range(0..100);
                thread::sleep(Duration::from_millis(ms));
            }
            if layer.next_hop == 0 {
                log.lock().unwrap().push(format!(
                    "{}: exit — decrypted query: {:?}",
                    self.name,
                    String::from_utf8_lossy(&layer.inner)
                ));
                return;
            }
            log.lock()
                .unwrap()
                .push(format!("{}: forwarding to {}", self.name, layer.next_hop));
            let next = self
                .network
                .iter()
                .find(|(a, _)| *a == layer.next_hop)
                .expect("known hop");
            next.1.send(layer.inner).expect("send");
        }
    }
}

fn main() {
    let keys: Vec<[u8; 32]> = (0..3).map(|i| [i as u8 + 1; 32]).collect();
    let addrs = [101u64, 102, 103];
    type Packet = Vec<u8>;
    let (senders, receivers): (Vec<Sender<Packet>>, Vec<Receiver<Packet>>) =
        (0..3).map(|_| channel()).unzip();
    let network: Vec<(u64, Sender<Vec<u8>>)> = addrs
        .iter()
        .zip(senders.iter())
        .map(|(&a, tx)| (a, tx.clone()))
        .collect();
    let log = Arc::new(Mutex::new(Vec::new()));

    let mut handles = Vec::new();
    for (i, rx) in receivers.into_iter().enumerate() {
        let relay = Relay {
            name: ["relay A", "relay B", "relay D (exit)"][i],
            key: keys[i],
            addr: addrs[i],
            inbox: rx,
            network: network.clone(),
            add_delay: i == 1,
        };
        let log = log.clone();
        handles.push(thread::spawn(move || relay.run(log)));
    }
    // drop the initiator's copies so exit relays see disconnected inboxes
    drop(senders);

    // the initiator wraps the query for A → B → D
    let onion_packet = onion::wrap(
        b"GET routing-table (key hidden)",
        &keys,
        &[102, 103, 0],
        octopus::sim::derive_rng(DEMO_SEED, b"onion-nonce", 0).gen(),
    );
    println!(
        "initiator: sending {}-byte onion to relay A",
        onion_packet.len()
    );
    network[0].1.send(onion_packet).expect("send");
    drop(network);

    for h in handles {
        let _ = h.join();
    }
    for line in log.lock().unwrap().iter() {
        println!("{line}");
    }
    println!("no relay saw both the initiator and the query — that's the point.");
}
