//! Generative differential properties: [`ShardedIdSpace`] must be
//! observationally identical to the flat [`IdSpace`] under arbitrary
//! seeded churn — same membership, same ring queries, bit-compatible
//! `random_member` draws, and a slice layout that always partitions the
//! universe by top id bits. (Originally written against `proptest`; the
//! offline build replays the same properties over seeded random case
//! generators.)

use std::collections::HashSet;

use octopus_id::sharded::SLICES;
use octopus_id::{IdSpace, Key, NodeId, ShardedIdSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;
const CHURN_OPS: usize = 400;

/// A random set of distinct ids, biased so some slices cluster.
fn random_ids(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<NodeId> {
    let n = rng.gen_range(lo..hi);
    let mut set = HashSet::new();
    while set.len() < n {
        // half the ids cluster into a single slice to exercise uneven
        // occupancy, half spread uniformly
        let id = if rng.gen_bool(0.5) {
            rng.gen::<u64>()
        } else {
            (7u64 << 58) | (rng.gen::<u64>() >> 6)
        };
        set.insert(id);
    }
    set.into_iter().map(NodeId).collect()
}

/// The slice a member must live in (top bits), mirrored from the
/// documented layout contract.
fn expected_slice(id: NodeId) -> usize {
    (id.0 >> (64 - SLICES.trailing_zeros())) as usize
}

/// Assert the two spaces agree on everything observable.
fn assert_twin(flat: &IdSpace, sharded: &ShardedIdSpace, probes: &mut StdRng) {
    assert_eq!(sharded.len(), flat.len());
    assert_eq!(sharded.is_empty(), flat.is_empty());
    assert_eq!(sharded.to_vec(), flat.ids(), "universe order diverged");
    let occupancy = sharded.slice_occupancy();
    assert_eq!(occupancy.len(), SLICES);
    assert_eq!(
        occupancy.iter().sum::<usize>(),
        flat.len(),
        "occupancy does not sum to the population"
    );
    // occupancy must equal the top-bits histogram of the flat universe
    let mut histogram = vec![0usize; SLICES];
    for &id in flat.ids() {
        histogram[expected_slice(id)] += 1;
    }
    assert_eq!(occupancy, histogram, "slice layout diverged from top bits");
    for _ in 0..16 {
        let probe = NodeId(probes.gen());
        assert_eq!(sharded.contains(probe), flat.contains(probe));
        if flat.is_empty() {
            continue;
        }
        let key = Key(probe.0);
        assert_eq!(sharded.owner_of(key), flat.owner_of(key));
        for k in 1..=3 {
            assert_eq!(sharded.successor(probe, k), flat.successor(probe, k));
            assert_eq!(sharded.predecessor(probe, k), flat.predecessor(probe, k));
        }
        assert_eq!(
            sharded.successor_list(probe, 5),
            flat.successor_list(probe, 5)
        );
        assert_eq!(
            sharded.predecessor_list(probe, 5),
            flat.predecessor_list(probe, 5)
        );
    }
}

/// Random interleaved churn: inserts, removes (of members and
/// non-members alike) keep the two spaces in lockstep, with every
/// mutation's return value matching.
#[test]
fn churn_keeps_spaces_in_lockstep() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE + case as u64);
        let ids = random_ids(&mut rng, 1, 200);
        let mut flat = IdSpace::new(ids.clone());
        let mut sharded = ShardedIdSpace::new(&ids);
        let mut pool = ids;
        for _ in 0..CHURN_OPS {
            let insert = rng.gen_bool(0.5);
            // half the time target an existing member, half a fresh id
            let id = if !pool.is_empty() && rng.gen_bool(0.5) {
                pool[rng.gen_range(0..pool.len())]
            } else {
                let fresh = NodeId(rng.gen());
                pool.push(fresh);
                fresh
            };
            if insert {
                assert_eq!(sharded.insert(id), flat.insert(id), "insert({id})");
            } else {
                assert_eq!(sharded.remove(id), flat.remove(id), "remove({id})");
            }
        }
        assert_twin(&flat, &sharded, &mut rng);
    }
}

/// `random_member` consumes exactly one `gen_range(0..len)` draw on
/// both implementations: same seed, same draw sequence, same members —
/// so swapping storage backends never shifts a seeded experiment.
#[test]
fn random_member_draws_are_bit_compatible() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD1CE + case as u64);
        let ids = random_ids(&mut rng, 1, 300);
        let mut flat = IdSpace::new(ids.clone());
        let mut sharded = ShardedIdSpace::new(&ids);
        let mut flat_rng = StdRng::seed_from_u64(case as u64);
        let mut sharded_rng = StdRng::seed_from_u64(case as u64);
        for round in 0..64 {
            let a = flat.random_member(&mut flat_rng);
            let b = sharded.random_member(&mut sharded_rng);
            assert_eq!(a, b, "case {case} round {round}: draw diverged");
            // interleave churn between draws so stream alignment
            // survives mutation too
            if round % 3 == 0 && flat.len() > 1 {
                assert_eq!(sharded.remove(a), flat.remove(a));
            } else if round % 3 == 1 {
                let fresh = NodeId(rng.gen());
                assert_eq!(sharded.insert(fresh), flat.insert(fresh));
            }
        }
        // after identical draw counts the two rngs are in the same
        // state: one more draw from each still agrees
        assert_eq!(
            flat.random_member(&mut flat_rng),
            sharded.random_member(&mut sharded_rng)
        );
    }
}

/// Slice occupancy tracks churn exactly: draining the space slice by
/// slice leaves every occupancy bucket empty, and `at` walks slices in
/// global order throughout.
#[test]
fn occupancy_tracks_churn_to_empty() {
    let mut rng = StdRng::seed_from_u64(0xACC);
    let ids = random_ids(&mut rng, 50, 150);
    let mut flat = IdSpace::new(ids.clone());
    let mut sharded = ShardedIdSpace::new(&ids);
    let mut order = flat.ids().to_vec();
    // drain in a shuffled order
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for (drained, id) in order.iter().enumerate() {
        assert_eq!(sharded.at(0), flat.ids()[0], "smallest member diverged");
        assert!(sharded.remove(*id));
        assert!(flat.remove(*id));
        assert_eq!(
            sharded.slice_occupancy().iter().sum::<usize>(),
            order.len() - drained - 1
        );
    }
    assert!(sharded.is_empty());
    assert!(sharded.slice_occupancy().iter().all(|&n| n == 0));
}
