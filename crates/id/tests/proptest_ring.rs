//! Property-based tests of the ring invariants every protocol relies on.

use octopus_id::{IdSpace, Key, NodeId};
use proptest::prelude::*;

proptest! {
    /// Clockwise distances around the full circle sum to 2^64 (≡ 0).
    #[test]
    fn distances_sum_to_ring(a: u64, b: u64) {
        let (a, b) = (NodeId(a), NodeId(b));
        prop_assert_eq!(
            a.distance_to(b).wrapping_add(b.distance_to(a)),
            if a == b { 0 } else { 0u64 }
        );
    }

    /// `is_between` is equivalent to a distance comparison.
    #[test]
    fn between_matches_distance(x: u64, from: u64, to: u64) {
        let (x, from, to) = (NodeId(x), NodeId(from), NodeId(to));
        let by_def = x.is_between(from, to);
        let by_dist = if from == to {
            x != from
        } else {
            from.distance_to(x) > 0 && from.distance_to(x) < from.distance_to(to)
        };
        prop_assert_eq!(by_def, by_dist);
    }

    /// Exactly one node owns any key, and ownership matches the
    /// predecessor interval definition.
    #[test]
    fn exactly_one_owner(ids in proptest::collection::hash_set(any::<u64>(), 2..50), key: u64) {
        let space = IdSpace::new(ids.into_iter().map(NodeId).collect());
        let key = Key(key);
        let own = space.owner_of(key);
        let owners: Vec<_> = space
            .ids()
            .iter()
            .filter(|&&n| key.owned_by(n, space.predecessor(n, 1)))
            .collect();
        prop_assert_eq!(owners.len(), 1, "key must have a unique owner");
        prop_assert_eq!(*owners[0], own.owner);
    }

    /// successor and predecessor are inverse on members.
    #[test]
    fn succ_pred_inverse(ids in proptest::collection::hash_set(any::<u64>(), 2..50), k in 1usize..5) {
        let space = IdSpace::new(ids.into_iter().map(NodeId).collect());
        for &n in space.ids() {
            let s = space.successor(n, k);
            prop_assert_eq!(space.predecessor(s, k), n);
        }
    }

    /// The successor list is sorted by clockwise distance from the node.
    #[test]
    fn successor_list_ordered(ids in proptest::collection::hash_set(any::<u64>(), 3..60)) {
        let space = IdSpace::new(ids.into_iter().map(NodeId).collect());
        let n = space.ids()[0];
        let sl = space.successor_list(n, space.len() - 1);
        let mut last = 0u64;
        for s in sl {
            let d = n.distance_to(s);
            prop_assert!(d > last, "successor list must be clockwise-ordered");
            last = d;
        }
    }

    /// Fingers never precede their target: owner_of(t) is at or after t.
    #[test]
    fn finger_at_or_after_target(ids in proptest::collection::hash_set(any::<u64>(), 2..40), node: u64) {
        let space = IdSpace::new(ids.into_iter().map(NodeId).collect());
        let n = NodeId(node);
        for i in 0..64 {
            let t = n.finger_target(i);
            let f = space.owner_of(t).owner;
            // distance from target to owner < distance from target to any other node
            for &m in space.ids() {
                prop_assert!(t.distance_to_node(f) <= t.distance_to_node(m));
            }
        }
    }
}
