//! Randomized property tests of the ring invariants every protocol
//! relies on. (Originally written against `proptest`; the offline build
//! replays the same properties over seeded random case generators.)

use std::collections::HashSet;

use octopus_id::{IdSpace, Key, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

/// A random set of `lo..hi` distinct ids, mirroring
/// `proptest::collection::hash_set(any::<u64>(), lo..hi)`.
fn random_ids(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<NodeId> {
    let n = rng.gen_range(lo..hi);
    let mut set = HashSet::new();
    while set.len() < n {
        set.insert(rng.gen::<u64>());
    }
    set.into_iter().map(NodeId).collect()
}

/// Clockwise distances around the full circle sum to 2^64 (≡ 0).
#[test]
fn distances_sum_to_ring() {
    let mut rng = StdRng::seed_from_u64(0xd15);
    for _ in 0..CASES {
        let (a, b) = (NodeId(rng.gen()), NodeId(rng.gen()));
        assert_eq!(a.distance_to(b).wrapping_add(b.distance_to(a)), 0);
    }
}

/// `is_between` is equivalent to a distance comparison.
#[test]
fn between_matches_distance() {
    let mut rng = StdRng::seed_from_u64(0xbe7);
    for _ in 0..CASES {
        let (x, from, to) = (NodeId(rng.gen()), NodeId(rng.gen()), NodeId(rng.gen()));
        let by_def = x.is_between(from, to);
        let by_dist = if from == to {
            x != from
        } else {
            from.distance_to(x) > 0 && from.distance_to(x) < from.distance_to(to)
        };
        assert_eq!(by_def, by_dist);
    }
}

/// Exactly one node owns any key, and ownership matches the
/// predecessor interval definition.
#[test]
fn exactly_one_owner() {
    let mut rng = StdRng::seed_from_u64(0x04e);
    for _ in 0..CASES {
        let space = IdSpace::new(random_ids(&mut rng, 2, 50));
        let key = Key(rng.gen());
        let own = space.owner_of(key);
        let owners: Vec<_> = space
            .ids()
            .iter()
            .filter(|&&n| key.owned_by(n, space.predecessor(n, 1)))
            .collect();
        assert_eq!(owners.len(), 1, "key must have a unique owner");
        assert_eq!(*owners[0], own.owner);
    }
}

/// successor and predecessor are inverse on members.
#[test]
fn succ_pred_inverse() {
    let mut rng = StdRng::seed_from_u64(0x10c);
    for _ in 0..CASES {
        let space = IdSpace::new(random_ids(&mut rng, 2, 50));
        let k = rng.gen_range(1usize..5);
        for &n in space.ids() {
            let s = space.successor(n, k);
            assert_eq!(space.predecessor(s, k), n);
        }
    }
}

/// The successor list is sorted by clockwise distance from the node.
#[test]
fn successor_list_ordered() {
    let mut rng = StdRng::seed_from_u64(0x50d);
    for _ in 0..CASES {
        let space = IdSpace::new(random_ids(&mut rng, 3, 60));
        let n = space.ids()[0];
        let sl = space.successor_list(n, space.len() - 1);
        let mut last = 0u64;
        for s in sl {
            let d = n.distance_to(s);
            assert!(d > last, "successor list must be clockwise-ordered");
            last = d;
        }
    }
}

/// Fingers never precede their target: owner_of(t) is at or after t.
#[test]
fn finger_at_or_after_target() {
    let mut rng = StdRng::seed_from_u64(0xf19);
    for _ in 0..64 {
        let space = IdSpace::new(random_ids(&mut rng, 2, 40));
        let n = NodeId(rng.gen());
        for i in 0..64 {
            let t = n.finger_target(i);
            let f = space.owner_of(t).owner;
            // distance from target to owner < distance from target to any other node
            for &m in space.ids() {
                assert!(t.distance_to_node(f) <= t.distance_to_node(m));
            }
        }
    }
}
