//! Helpers for populating and reasoning about a whole identifier space.
//!
//! The simulators repeatedly need "a ring of N nodes" plus queries such as
//! *who owns key k* or *which node is the p-th successor of id x*. This
//! module centralizes those so Chord, the baselines, and the anonymity
//! calculators all agree on ownership semantics.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ring::{Key, NodeId};

/// A sorted universe of node identifiers with successor/predecessor and
/// ownership queries — the "ground truth" view of the ring that
/// simulators use to validate protocol behaviour.
#[derive(Clone, Debug)]
pub struct IdSpace {
    ids: Vec<NodeId>,
}

/// Result of an ownership query: the owner and its index in the sorted
/// ring order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyOwnership {
    /// The node owning the key.
    pub owner: NodeId,
    /// Index of the owner within the sorted id list.
    pub index: usize,
}

impl IdSpace {
    /// Build a space from arbitrary ids; duplicates are removed.
    #[must_use]
    pub fn new(mut ids: Vec<NodeId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        IdSpace { ids }
    }

    /// Sample `n` distinct random ids.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut ids = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::with_capacity(n); // membership-only dedup while sampling; never iterated, O(1) matters at N=1M
        while ids.len() < n {
            let id = NodeId(rng.gen());
            if seen.insert(id) {
                ids.push(id);
            }
        }
        IdSpace::new(ids)
    }

    /// Build a space of `n` ids spread *evenly* around the ring — useful
    /// in tests where deterministic geometry matters.
    #[must_use]
    pub fn evenly_spaced(n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        let step = (u64::MAX as u128 + 1) / n as u128;
        let ids = (0..n).map(|i| NodeId((i as u128 * step) as u64)).collect();
        IdSpace::new(ids)
    }

    /// Number of ids in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the space holds no ids.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted ids.
    #[must_use]
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Does the space contain `id`?
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Index of `id` in sorted order, if present.
    #[must_use]
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The node owning `key`: the first node clockwise at or after the
    /// key (Chord's `successor(key)`).
    ///
    /// # Panics
    /// Panics when the space is empty.
    #[must_use]
    pub fn owner_of(&self, key: Key) -> KeyOwnership {
        assert!(!self.ids.is_empty(), "empty id space");
        let index = match self.ids.binary_search(&key.as_id()) {
            Ok(i) => i,
            Err(i) if i == self.ids.len() => 0, // wrap to the smallest id
            Err(i) => i,
        };
        KeyOwnership {
            owner: self.ids[index],
            index,
        }
    }

    /// The `k`-th successor of position `id` (k = 1 is the immediate
    /// successor). `id` itself need not be a member.
    #[must_use]
    pub fn successor(&self, id: NodeId, k: usize) -> NodeId {
        assert!(!self.ids.is_empty(), "empty id space");
        let base = match self.ids.binary_search(&id) {
            Ok(i) => i,
            // first id strictly greater is already the 1st successor
            Err(i) => (i + self.ids.len() - 1) % self.ids.len(),
        };
        self.ids[(base + k) % self.ids.len()]
    }

    /// The `k`-th predecessor of position `id` (k = 1 is the immediate
    /// predecessor).
    #[must_use]
    pub fn predecessor(&self, id: NodeId, k: usize) -> NodeId {
        assert!(!self.ids.is_empty(), "empty id space");
        let n = self.ids.len();
        let base = match self.ids.binary_search(&id) {
            Ok(i) => i,
            Err(i) => i % n, // first id after the position; pred(1) steps back from it
        };
        self.ids[(base + n - (k % n)) % n]
    }

    /// The first `k` successors of `id`, in ring order — ground truth for
    /// a correct Chord successor list.
    #[must_use]
    pub fn successor_list(&self, id: NodeId, k: usize) -> Vec<NodeId> {
        (1..=k).map(|i| self.successor(id, i)).collect()
    }

    /// The first `k` predecessors of `id`, closest first — ground truth
    /// for a correct Octopus predecessor list (§4.3).
    #[must_use]
    pub fn predecessor_list(&self, id: NodeId, k: usize) -> Vec<NodeId> {
        (1..=k).map(|i| self.predecessor(id, i)).collect()
    }

    /// Ground-truth fingertable of `id`: for each bit `i`, the owner of
    /// `id + 2^i`.
    #[must_use]
    pub fn fingertable(&self, id: NodeId, fingers: u32) -> Vec<NodeId> {
        (0..fingers)
            .map(|i| self.owner_of(id.finger_target(i)).owner)
            .collect()
    }

    /// A uniformly random member id.
    pub fn random_member<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        *self.ids.choose(rng).expect("empty id space")
    }

    /// Remove an id (e.g. a churned node). Returns whether it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(i) => {
                self.ids.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Insert an id (e.g. a joining node). Returns whether it was new.
    pub fn insert(&mut self, id: NodeId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(i) => {
                self.ids.insert(i, id);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> IdSpace {
        IdSpace::new(vec![NodeId(10), NodeId(20), NodeId(30), NodeId(40)])
    }

    #[test]
    fn owner_is_first_at_or_after() {
        let s = space();
        assert_eq!(s.owner_of(Key(10)).owner, NodeId(10));
        assert_eq!(s.owner_of(Key(11)).owner, NodeId(20));
        assert_eq!(s.owner_of(Key(41)).owner, NodeId(10)); // wraps
        assert_eq!(s.owner_of(Key(0)).owner, NodeId(10));
    }

    #[test]
    fn successors_and_predecessors() {
        let s = space();
        assert_eq!(s.successor(NodeId(10), 1), NodeId(20));
        assert_eq!(s.successor(NodeId(40), 1), NodeId(10));
        assert_eq!(s.successor(NodeId(10), 4), NodeId(10));
        assert_eq!(s.predecessor(NodeId(10), 1), NodeId(40));
        assert_eq!(s.predecessor(NodeId(30), 2), NodeId(10));
        // non-member position
        assert_eq!(s.successor(NodeId(25), 1), NodeId(30));
        assert_eq!(s.predecessor(NodeId(25), 1), NodeId(20));
    }

    #[test]
    fn successor_list_matches_manual() {
        let s = space();
        assert_eq!(
            s.successor_list(NodeId(30), 3),
            vec![NodeId(40), NodeId(10), NodeId(20)]
        );
        assert_eq!(
            s.predecessor_list(NodeId(10), 2),
            vec![NodeId(40), NodeId(30)]
        );
    }

    #[test]
    fn fingertable_ground_truth() {
        let s = space();
        let ft = s.fingertable(NodeId(10), 6);
        // targets 11,12,14,18,26,42 → owners 20,20,20,20,30,10
        assert_eq!(
            ft,
            vec![
                NodeId(20),
                NodeId(20),
                NodeId(20),
                NodeId(20),
                NodeId(30),
                NodeId(10)
            ]
        );
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = space();
        assert!(s.insert(NodeId(25)));
        assert!(!s.insert(NodeId(25)));
        assert_eq!(s.owner_of(Key(22)).owner, NodeId(25));
        assert!(s.remove(NodeId(25)));
        assert!(!s.remove(NodeId(25)));
        assert_eq!(s.owner_of(Key(22)).owner, NodeId(30));
    }

    #[test]
    fn random_space_has_n_distinct() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = IdSpace::random(500, &mut rng);
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn evenly_spaced_geometry() {
        let s = IdSpace::evenly_spaced(4);
        assert_eq!(s.len(), 4);
        let d01 = s.ids()[0].distance_to(s.ids()[1]);
        let d12 = s.ids()[1].distance_to(s.ids()[2]);
        assert_eq!(d01, d12);
    }
}
