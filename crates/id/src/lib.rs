//! Identifier arithmetic for the Octopus DHT.
//!
//! Octopus is built on a customized Chord ring (paper §4). This crate
//! provides the identifier space shared by every other crate:
//!
//! * [`NodeId`] — a position on the 64-bit Chord ring,
//! * [`Key`] — a lookup key hashed into the same space,
//! * clockwise [`distance`](NodeId::distance_to) and interval tests that
//!   implement Chord's half-open interval semantics,
//! * ideal finger targets (`n + 2^i`) used by fingertable maintenance and
//!   by the secret-finger-surveillance checks of §4.4.
//!
//! All arithmetic is modulo 2^64 and uses wrapping operations, so the ring
//! wrap-around case is handled uniformly rather than special-cased.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod sharded;
pub mod space;

pub use ring::{Key, NodeId, RingInterval, RING_BITS};
pub use sharded::ShardedIdSpace;
pub use space::{IdSpace, KeyOwnership};
