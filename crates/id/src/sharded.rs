//! A range-partitioned identifier space for large, churning rings.
//!
//! [`IdSpace`] keeps one sorted `Vec`, so membership updates memmove
//! `O(N)` — fine at the paper's N=1000, painful for million-node rings
//! where churn and revocation mutate the ground truth constantly.
//! [`ShardedIdSpace`] stores the same sorted universe as [`SLICES`]
//! contiguous range partitions (the top id bits pick the slice, exactly
//! like the world's `ShardMap` picks a shard), so an insert or remove
//! memmoves only `O(N / SLICES)` while every query still sees the one
//! global ring order.
//!
//! The slice count is a **fixed constant**, deliberately decoupled from
//! the world's shard count: the partition is pure storage layout, and
//! tying it to a run-time knob would invite layout-dependent iteration
//! orders. Every query answers over the merged view — concatenating the
//! slices *is* the sorted universe — so results are byte-identical to
//! [`IdSpace`] for any operation sequence, including the RNG draws of
//! [`ShardedIdSpace::random_member`] (pinned by tests).

use rand::Rng;

use crate::ring::{Key, NodeId};
use crate::space::{IdSpace, KeyOwnership};

/// Number of range partitions (a power of two; the top 6 id bits).
pub const SLICES: usize = 64;

/// Bits to shift an id right to obtain its slice index.
const SLICE_SHIFT: u32 = 64 - SLICES.trailing_zeros();

/// A sorted universe of node identifiers, stored as [`SLICES`]
/// contiguous range partitions. Same queries and semantics as
/// [`IdSpace`]; `O(N / SLICES)` membership updates.
#[derive(Clone, Debug)]
pub struct ShardedIdSpace {
    /// Slice `s` holds the sorted ids whose top bits equal `s`;
    /// concatenated, the slices form the sorted universe.
    slices: Vec<Vec<NodeId>>,
    /// Total id count (the sum of slice lengths).
    len: usize,
}

/// The slice owning `id`.
fn slice_of(id: NodeId) -> usize {
    (id.0 >> SLICE_SHIFT) as usize
}

impl From<IdSpace> for ShardedIdSpace {
    fn from(space: IdSpace) -> Self {
        Self::new(space.ids())
    }
}

impl ShardedIdSpace {
    /// Build from a slice of ids (sorted or not; duplicates removed).
    #[must_use]
    pub fn new(ids: &[NodeId]) -> Self {
        let mut slices: Vec<Vec<NodeId>> = (0..SLICES).map(|_| Vec::new()).collect();
        for &id in ids {
            slices[slice_of(id)].push(id);
        }
        let mut len = 0;
        for slice in &mut slices {
            slice.sort_unstable();
            slice.dedup();
            len += slice.len();
        }
        ShardedIdSpace { slices, len }
    }

    /// Number of ids in the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the space holds no ids.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Does the space contain `id`?
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.slices[slice_of(id)].binary_search(&id).is_ok()
    }

    /// Iterate over every id in global sorted (ring) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slices.iter().flatten().copied()
    }

    /// The merged read-only view: one sorted [`IdSpace`] (an `O(N)`
    /// copy — materialize it for bulk consumers, not per query).
    #[must_use]
    pub fn merged(&self) -> IdSpace {
        IdSpace::new(self.to_vec())
    }

    /// The sorted ids, materialized (`O(N)`).
    #[must_use]
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// The id at global sorted index `i`.
    ///
    /// # Panics
    /// Panics when `i >= len`.
    #[must_use]
    pub fn at(&self, mut i: usize) -> NodeId {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        for slice in &self.slices {
            if i < slice.len() {
                return slice[i];
            }
            i -= slice.len();
        }
        unreachable!("len invariant violated")
    }

    /// Global sorted index of `id`, or the insertion point
    /// (`Err`) where it would go — the sharded analogue of
    /// `ids.binary_search(&id)`.
    fn search(&self, id: NodeId) -> Result<usize, usize> {
        let s = slice_of(id);
        let before: usize = self.slices[..s].iter().map(Vec::len).sum();
        match self.slices[s].binary_search(&id) {
            Ok(i) => Ok(before + i),
            Err(i) => Err(before + i),
        }
    }

    /// Index of `id` in sorted order, if present.
    #[must_use]
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.search(id).ok()
    }

    /// The node owning `key`: the first node clockwise at or after the
    /// key (Chord's `successor(key)`). Identical to
    /// [`IdSpace::owner_of`].
    ///
    /// # Panics
    /// Panics when the space is empty.
    #[must_use]
    pub fn owner_of(&self, key: Key) -> KeyOwnership {
        assert!(!self.is_empty(), "empty id space");
        let index = match self.search(key.as_id()) {
            Ok(i) => i,
            Err(i) if i == self.len => 0, // wrap to the smallest id
            Err(i) => i,
        };
        KeyOwnership {
            owner: self.at(index),
            index,
        }
    }

    /// The `k`-th successor of position `id` (k = 1 is the immediate
    /// successor). `id` itself need not be a member.
    #[must_use]
    pub fn successor(&self, id: NodeId, k: usize) -> NodeId {
        assert!(!self.is_empty(), "empty id space");
        let base = match self.search(id) {
            Ok(i) => i,
            // first id strictly greater is already the 1st successor
            Err(i) => (i + self.len - 1) % self.len,
        };
        self.at((base + k) % self.len)
    }

    /// The `k`-th predecessor of position `id` (k = 1 is the immediate
    /// predecessor).
    #[must_use]
    pub fn predecessor(&self, id: NodeId, k: usize) -> NodeId {
        assert!(!self.is_empty(), "empty id space");
        let n = self.len;
        let base = match self.search(id) {
            Ok(i) => i,
            Err(i) => i % n, // first id after the position; pred(1) steps back from it
        };
        self.at((base + n - (k % n)) % n)
    }

    /// The first `k` successors of `id`, in ring order.
    #[must_use]
    pub fn successor_list(&self, id: NodeId, k: usize) -> Vec<NodeId> {
        (1..=k).map(|i| self.successor(id, i)).collect()
    }

    /// The first `k` predecessors of `id`, closest first.
    #[must_use]
    pub fn predecessor_list(&self, id: NodeId, k: usize) -> Vec<NodeId> {
        (1..=k).map(|i| self.predecessor(id, i)).collect()
    }

    /// A uniformly random member id. Consumes exactly the RNG draw
    /// [`IdSpace::random_member`] consumes (one `gen_range(0..len)`), so
    /// swapping the storage never shifts a seeded stream.
    ///
    /// # Panics
    /// Panics when the space is empty.
    pub fn random_member<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        assert!(!self.is_empty(), "empty id space");
        self.at(rng.gen_range(0..self.len))
    }

    /// Per-slice occupancy, in slice order. The sum equals [`len`];
    /// slice `s` counts exactly the members whose top bits equal `s` —
    /// the storage-layout invariant the churn property tests pin.
    ///
    /// [`len`]: ShardedIdSpace::len
    #[must_use]
    pub fn slice_occupancy(&self) -> Vec<usize> {
        self.slices.iter().map(Vec::len).collect()
    }

    /// Remove an id (e.g. a churned node). Returns whether it was
    /// present. Memmoves `O(N / SLICES)`.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let slice = &mut self.slices[slice_of(id)];
        match slice.binary_search(&id) {
            Ok(i) => {
                slice.remove(i);
                self.len -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Insert an id (e.g. a joining node). Returns whether it was new.
    /// Memmoves `O(N / SLICES)`.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let slice = &mut self.slices[slice_of(id)];
        match slice.binary_search(&id) {
            Ok(_) => false,
            Err(i) => {
                slice.insert(i, id);
                self.len += 1;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Ids spread across several slices plus a cluster inside one.
    fn ids() -> Vec<NodeId> {
        vec![
            NodeId(10),
            NodeId(20),
            NodeId(1 << 60),
            NodeId((1 << 60) + 5),
            NodeId(7 << 60),
            NodeId(u64::MAX - 3),
        ]
    }

    #[test]
    fn mirrors_idspace_queries() {
        let flat = IdSpace::new(ids());
        let sharded = ShardedIdSpace::new(&ids());
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.to_vec(), flat.ids());
        for probe in [0u64, 10, 11, 1 << 59, (1 << 60) + 1, u64::MAX] {
            assert_eq!(
                sharded.owner_of(Key(probe)),
                flat.owner_of(Key(probe)),
                "owner_of({probe})"
            );
            for k in 1..=3 {
                assert_eq!(
                    sharded.successor(NodeId(probe), k),
                    flat.successor(NodeId(probe), k)
                );
                assert_eq!(
                    sharded.predecessor(NodeId(probe), k),
                    flat.predecessor(NodeId(probe), k)
                );
            }
        }
        assert_eq!(
            sharded.successor_list(NodeId(10), 4),
            flat.successor_list(NodeId(10), 4)
        );
        assert_eq!(
            sharded.predecessor_list(NodeId(10), 4),
            flat.predecessor_list(NodeId(10), 4)
        );
    }

    #[test]
    fn random_member_consumes_the_same_draw() {
        let flat = IdSpace::new(ids());
        let sharded = ShardedIdSpace::new(&ids());
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..32 {
            assert_eq!(sharded.random_member(&mut r1), flat.random_member(&mut r2));
        }
    }

    #[test]
    fn insert_remove_mirror_flat_semantics() {
        let mut sharded = ShardedIdSpace::new(&ids());
        let extra = NodeId((1 << 60) + 3);
        assert!(sharded.insert(extra));
        assert!(!sharded.insert(extra));
        assert!(sharded.contains(extra));
        assert_eq!(sharded.index_of(extra), Some(3));
        assert_eq!(sharded.owner_of(Key((1 << 60) + 1)).owner, extra);
        assert!(sharded.remove(extra));
        assert!(!sharded.remove(extra));
        assert_eq!(
            sharded.owner_of(Key((1 << 60) + 1)).owner,
            NodeId((1 << 60) + 5)
        );
    }

    #[test]
    fn merged_view_roundtrips() {
        let sharded = ShardedIdSpace::new(&ids());
        let merged = sharded.merged();
        assert_eq!(merged.ids(), sharded.to_vec());
        assert_eq!(
            ShardedIdSpace::from(merged).to_vec(),
            sharded.to_vec(),
            "IdSpace -> ShardedIdSpace -> IdSpace is lossless"
        );
    }

    #[test]
    fn random_population_agrees_with_flat_under_churn() {
        let mut rng = StdRng::seed_from_u64(5);
        let flat = IdSpace::random(500, &mut rng);
        let mut sharded = ShardedIdSpace::from(flat.clone());
        let mut flat = flat;
        // churn a third of the population out and back in
        let victims: Vec<NodeId> = flat.ids().iter().step_by(3).copied().collect();
        for &v in &victims {
            assert_eq!(sharded.remove(v), flat.remove(v));
        }
        for &v in &victims {
            assert_eq!(sharded.insert(v), flat.insert(v));
        }
        assert_eq!(sharded.to_vec(), flat.ids());
        for probe in 0..64u64 {
            let key = Key(probe.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            assert_eq!(sharded.owner_of(key), flat.owner_of(key));
        }
    }
}
