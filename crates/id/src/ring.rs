//! The 64-bit Chord identifier ring.

use std::fmt;

/// Number of bits in the identifier space (`m` in the Chord paper).
pub const RING_BITS: u32 = 64;

/// A position on the Chord ring.
///
/// Both peers and keys live in the same circular identifier space; a
/// `NodeId` is the position assigned to a peer (in Octopus, derived from a
/// hash of its certificate), while a [`Key`] is the position of a lookup
/// key. Ordering on the ring is *relative*: use
/// [`NodeId::is_between`]/[`RingInterval`] rather than `Ord` for routing
/// decisions. (`Ord` is still derived so ids can live in sorted
/// containers.)
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// A lookup key hashed into the ring space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl NodeId {
    /// The zero identifier, the conventional ring origin.
    pub const ZERO: NodeId = NodeId(0);

    /// Clockwise distance from `self` to `other` (how far a lookup must
    /// travel forward along the ring to get from `self` to `other`).
    ///
    /// `a.distance_to(a) == 0`, and for `a != b`,
    /// `a.distance_to(b) + b.distance_to(a) == 2^64` (wrapping to 0).
    #[must_use]
    pub fn distance_to(self, other: NodeId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The ideal `i`-th finger target, `self + 2^i (mod 2^64)`.
    ///
    /// Chord nodes keep a finger pointing at the first node succeeding
    /// each of these targets; Octopus' secret finger surveillance (§4.4)
    /// checks fingers against the same targets. `i` must be `< 64`.
    #[must_use]
    pub fn finger_target(self, i: u32) -> Key {
        assert!(i < RING_BITS, "finger index {i} out of range");
        Key(self.0.wrapping_add(1u64 << i))
    }

    /// True when `self` lies in the *open* interval `(from, to)` walking
    /// clockwise. An empty interval (`from == to`) contains every id
    /// except `from`, matching Chord's "full ring" convention when a node
    /// is its own successor.
    #[must_use]
    pub fn is_between(self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            self != from
        } else {
            from.distance_to(self) > 0 && from.distance_to(self) < from.distance_to(to)
        }
    }

    /// True when `self` is in the half-open interval `(from, to]`
    /// clockwise — the Chord ownership test: the successor of a key `k`
    /// is the node `s` with `k ∈ (pred(s), s]`.
    #[must_use]
    pub fn is_between_incl(self, from: NodeId, to: NodeId) -> bool {
        self == to || self.is_between(from, to)
    }

    /// Reinterpret this node position as a key (their spaces coincide).
    #[must_use]
    pub fn as_key(self) -> Key {
        Key(self.0)
    }
}

impl Key {
    /// Clockwise distance from this key to a node: how far past the key
    /// the node sits. The key's owner is the node minimizing this.
    #[must_use]
    pub fn distance_to_node(self, node: NodeId) -> u64 {
        node.0.wrapping_sub(self.0)
    }

    /// Clockwise distance from a node to this key: how far a lookup
    /// starting at `node` still has to travel.
    #[must_use]
    pub fn distance_from_node(self, node: NodeId) -> u64 {
        self.0.wrapping_sub(node.0)
    }

    /// Reinterpret this key as a ring position.
    #[must_use]
    pub fn as_id(self) -> NodeId {
        NodeId(self.0)
    }

    /// Ownership test: does the node owning `(pred, node]` own this key?
    #[must_use]
    pub fn owned_by(self, node: NodeId, pred: NodeId) -> bool {
        self.as_id().is_between_incl(pred, node)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:016x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:016x})", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

/// A clockwise interval on the ring, used to express ranges such as the
/// estimation range produced by the range-estimation attack (paper §6.3
/// and \[38\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RingInterval {
    /// Interval start (exclusive).
    pub from: NodeId,
    /// Interval end (inclusive).
    pub to: NodeId,
}

impl RingInterval {
    /// A new half-open interval `(from, to]`.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId) -> Self {
        RingInterval { from, to }
    }

    /// Does the interval contain `id`?
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        id.is_between_incl(self.from, self.to)
    }

    /// Clockwise width of the interval.
    #[must_use]
    pub fn width(&self) -> u64 {
        self.from.distance_to(self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_clockwise() {
        let a = NodeId(10);
        let b = NodeId(20);
        assert_eq!(a.distance_to(b), 10);
        assert_eq!(b.distance_to(a), u64::MAX - 9);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn distance_wraps() {
        let a = NodeId(u64::MAX - 1);
        let b = NodeId(3);
        assert_eq!(a.distance_to(b), 5);
    }

    #[test]
    fn between_simple() {
        assert!(NodeId(5).is_between(NodeId(1), NodeId(9)));
        assert!(!NodeId(1).is_between(NodeId(1), NodeId(9)));
        assert!(!NodeId(9).is_between(NodeId(1), NodeId(9)));
        assert!(NodeId(9).is_between_incl(NodeId(1), NodeId(9)));
    }

    #[test]
    fn between_wrapping() {
        // interval (fffe..2] crosses the origin
        assert!(NodeId(0).is_between(NodeId(u64::MAX - 1), NodeId(2)));
        assert!(NodeId(u64::MAX).is_between(NodeId(u64::MAX - 1), NodeId(2)));
        assert!(!NodeId(3).is_between(NodeId(u64::MAX - 1), NodeId(2)));
    }

    #[test]
    fn empty_interval_is_full_ring() {
        // from == to means "everything but from": a node that is its own
        // successor owns the whole ring.
        assert!(NodeId(7).is_between(NodeId(3), NodeId(3)));
        assert!(!NodeId(3).is_between(NodeId(3), NodeId(3)));
        assert!(NodeId(3).is_between_incl(NodeId(3), NodeId(3)));
    }

    #[test]
    fn finger_targets() {
        let n = NodeId(100);
        assert_eq!(n.finger_target(0), Key(101));
        assert_eq!(n.finger_target(3), Key(108));
        assert_eq!(NodeId(u64::MAX).finger_target(0), Key(0));
    }

    #[test]
    #[should_panic(expected = "finger index")]
    fn finger_target_out_of_range() {
        let _ = NodeId(0).finger_target(64);
    }

    #[test]
    fn key_ownership() {
        // node 20 with predecessor 10 owns (10, 20]
        assert!(Key(15).owned_by(NodeId(20), NodeId(10)));
        assert!(Key(20).owned_by(NodeId(20), NodeId(10)));
        assert!(!Key(10).owned_by(NodeId(20), NodeId(10)));
        assert!(!Key(25).owned_by(NodeId(20), NodeId(10)));
    }

    #[test]
    fn interval_width_and_contains() {
        let iv = RingInterval::new(NodeId(u64::MAX - 4), NodeId(5));
        assert_eq!(iv.width(), 10);
        assert!(iv.contains(NodeId(0)));
        assert!(iv.contains(NodeId(5)));
        assert!(!iv.contains(NodeId(6)));
        assert!(!iv.contains(NodeId(u64::MAX - 4)));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(NodeId(0xabcd).to_string(), "000000000000abcd");
        assert_eq!(format!("{:?}", Key(1)), "Key(0000000000000001)");
    }
}
