//! Signed, timestamped routing state — the non-repudiation proofs at the
//! heart of attacker identification.
//!
//! §4.3: *"To provide a non-repudiation proof on a manipulated successor
//! list that is verifiable to the CA, each routing table is required to
//! be signed and attached a time stamp by its owner."* Nodes additionally
//! keep a queue of the latest signed successor lists they received during
//! stabilization, to prove their own list was computed honestly.

use octopus_crypto::{Certificate, KeyPair, PublicKey, Signature, SignatureError};
use octopus_id::NodeId;

use crate::table::RoutingTable;

/// A routing table signed and timestamped by its owner, with the owner's
/// certificate attached (as in the random walk of Appendix I: "each
/// replied fingertable is signed by its owner with the owner's
/// certificate attached").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedRoutingTable {
    /// The signed content.
    pub table: RoutingTable,
    /// Owner's timestamp (simulation seconds).
    pub timestamp: u64,
    /// Owner's signature over `encode(table) ‖ timestamp`.
    pub signature: Signature,
    /// Owner's identity certificate.
    pub certificate: Certificate,
}

/// Errors from verifying signed routing state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignedTableError {
    /// Signature did not verify against the attached certificate's key.
    BadSignature,
    /// The certificate's node id does not match the table owner — a
    /// stolen-table replay.
    OwnerMismatch,
    /// The attached certificate fails CA verification.
    BadCertificate,
}

impl std::fmt::Display for SignedTableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignedTableError::BadSignature => write!(f, "routing table signature invalid"),
            SignedTableError::OwnerMismatch => write!(f, "certificate does not match table owner"),
            SignedTableError::BadCertificate => write!(f, "attached certificate invalid"),
        }
    }
}

impl std::error::Error for SignedTableError {}

fn signing_bytes(table: &RoutingTable, timestamp: u64) -> Vec<u8> {
    let mut bytes = table.encode();
    bytes.extend_from_slice(&timestamp.to_be_bytes());
    bytes
}

impl SignedRoutingTable {
    /// Sign `table` at `timestamp` with the owner's key pair.
    #[must_use]
    pub fn sign(
        table: RoutingTable,
        timestamp: u64,
        keypair: &KeyPair,
        certificate: Certificate,
    ) -> Self {
        let signature = keypair.sign(&signing_bytes(&table, timestamp));
        SignedRoutingTable {
            table,
            timestamp,
            signature,
            certificate,
        }
    }

    /// Verify the owner signature and owner/certificate binding, and the
    /// certificate itself against the CA key.
    ///
    /// # Errors
    /// See [`SignedTableError`].
    pub fn verify(&self, ca_key: PublicKey, now: u64) -> Result<(), SignedTableError> {
        if self.certificate.node_id != self.table.owner {
            return Err(SignedTableError::OwnerMismatch);
        }
        self.certificate
            .verify(ca_key, now)
            .map_err(|_| SignedTableError::BadCertificate)?;
        self.certificate
            .public_key
            .verify(&signing_bytes(&self.table, self.timestamp), self.signature)
            .map_err(|_: SignatureError| SignedTableError::BadSignature)
    }

    /// The table's owner.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.table.owner
    }
}

/// A signed successor list — what stabilization replies carry and what
/// nodes queue as proofs (§4.3's "queue of latest received successor
/// lists"). Internally a signed routing table whose fingers are empty,
/// so one signature scheme covers both.
pub type SignedSuccessorList = SignedRoutingTable;

/// A signed predecessor list (returned by secret-finger-surveillance
/// pred-list requests, §4.4).
pub type SignedPredecessorList = SignedRoutingTable;

/// Build a successor-list-only table for signing.
#[must_use]
pub fn successor_list_table(owner: NodeId, successors: Vec<NodeId>) -> RoutingTable {
    RoutingTable {
        owner,
        fingers: Vec::new(),
        successors,
        predecessors: Vec::new(),
    }
}

/// Build a predecessor-list-only table for signing.
#[must_use]
pub fn predecessor_list_table(owner: NodeId, predecessors: Vec<NodeId>) -> RoutingTable {
    RoutingTable {
        owner,
        fingers: Vec::new(),
        successors: Vec::new(),
        predecessors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_crypto::CertificateAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ca: CertificateAuthority,
        kp: KeyPair,
        cert: Certificate,
    }

    fn fixture(id: NodeId) -> Fixture {
        let mut rng = StdRng::seed_from_u64(id.0 ^ 77);
        let mut ca = CertificateAuthority::new(&mut rng);
        let kp = KeyPair::generate(&mut rng);
        let cert = ca.issue(id, 1, kp.public(), u64::MAX);
        Fixture { ca, kp, cert }
    }

    fn table(owner: NodeId) -> RoutingTable {
        RoutingTable {
            owner,
            fingers: vec![NodeId(5)],
            successors: vec![NodeId(2), NodeId(3)],
            predecessors: vec![NodeId(99)],
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let f = fixture(NodeId(1));
        let srt = SignedRoutingTable::sign(table(NodeId(1)), 100, &f.kp, f.cert);
        assert!(srt.verify(f.ca.public_key(), 100).is_ok());
        assert_eq!(srt.owner(), NodeId(1));
    }

    #[test]
    fn tampered_table_detected() {
        let f = fixture(NodeId(1));
        let mut srt = SignedRoutingTable::sign(table(NodeId(1)), 100, &f.kp, f.cert);
        srt.table.successors[0] = NodeId(666); // CA sees a manipulated list
        assert_eq!(
            srt.verify(f.ca.public_key(), 100),
            Err(SignedTableError::BadSignature)
        );
    }

    #[test]
    fn tampered_timestamp_detected() {
        let f = fixture(NodeId(1));
        let mut srt = SignedRoutingTable::sign(table(NodeId(1)), 100, &f.kp, f.cert);
        srt.timestamp = 200;
        assert_eq!(
            srt.verify(f.ca.public_key(), 100),
            Err(SignedTableError::BadSignature)
        );
    }

    #[test]
    fn stolen_table_replay_detected() {
        // node 2 tries to present node 1's signed table as its own
        let f1 = fixture(NodeId(1));
        let f2 = fixture(NodeId(2));
        let mut srt = SignedRoutingTable::sign(table(NodeId(1)), 100, &f1.kp, f1.cert);
        srt.certificate = f2.cert; // swap in own certificate
        assert_eq!(
            srt.verify(f1.ca.public_key(), 100),
            Err(SignedTableError::OwnerMismatch)
        );
    }

    #[test]
    fn forged_certificate_detected() {
        let f = fixture(NodeId(1));
        let mut rng = StdRng::seed_from_u64(123);
        let other_ca = CertificateAuthority::new(&mut rng);
        let srt = SignedRoutingTable::sign(table(NodeId(1)), 100, &f.kp, f.cert);
        // verifying against a different CA's key rejects the certificate
        assert_eq!(
            srt.verify(other_ca.public_key(), 100),
            Err(SignedTableError::BadCertificate)
        );
    }

    #[test]
    fn list_only_tables() {
        let t = successor_list_table(NodeId(1), vec![NodeId(2)]);
        assert!(t.fingers.is_empty());
        assert_eq!(t.successors, vec![NodeId(2)]);
        let t = predecessor_list_table(NodeId(1), vec![NodeId(0)]);
        assert_eq!(t.predecessors, vec![NodeId(0)]);
        assert!(t.successors.is_empty());
    }
}
