//! Oracle-driven iterative lookup.
//!
//! The anonymity pre-simulations (paper §6: the distributions ξ, γ, χ are
//! "obtained via pre-simulations of the lookup"), the range-estimation
//! attack's *virtual lookup* (Appendix III), and the baselines all need
//! to run lookups against some view of the ring without paying for
//! message-level simulation. [`RoutingView`] abstracts "ask node X for
//! its routing table"; [`iterative_lookup`] drives the greedy rule of
//! [`RoutingTable::next_hop`] over any such view and records the query
//! trace an adversary could observe.

use octopus_id::{IdSpace, Key, NodeId};

use crate::config::ChordConfig;
use crate::table::{NextHop, RoutingTable};

/// Hop-count cap: honest Chord lookups take Θ(log N) hops; anything past
/// this indicates a routing loop induced by manipulated tables.
pub const MAX_HOPS: usize = 96;

/// A source of routing tables (ground truth, cached state, or an
/// adversarially manipulated view).
pub trait RoutingView {
    /// The routing table node `of` would return to a query.
    fn table_of(&self, of: NodeId) -> RoutingTable;
}

/// Ground-truth view backed by an [`IdSpace`]: every node's fingers and
/// successor/predecessor lists are globally correct. This models a
/// converged, attack-free ring.
#[derive(Clone, Debug)]
pub struct GroundTruthView<'a> {
    space: &'a IdSpace,
    config: ChordConfig,
}

impl<'a> GroundTruthView<'a> {
    /// View over `space` with ring parameters `config`.
    #[must_use]
    pub fn new(space: &'a IdSpace, config: ChordConfig) -> Self {
        GroundTruthView { space, config }
    }

    /// The underlying id space.
    #[must_use]
    pub fn space(&self) -> &IdSpace {
        self.space
    }

    /// The ring configuration.
    #[must_use]
    pub fn config(&self) -> ChordConfig {
        self.config
    }
}

impl RoutingView for GroundTruthView<'_> {
    fn table_of(&self, of: NodeId) -> RoutingTable {
        let fingers = (0..self.config.fingers)
            .map(|i| self.space.owner_of(self.config.finger_target(of, i)).owner)
            .collect();
        RoutingTable {
            owner: of,
            fingers,
            successors: self.space.successor_list(of, self.config.successors),
            predecessors: self.space.predecessor_list(of, self.config.predecessors),
        }
    }
}

/// Why a lookup terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The greedy rule converged on an owner.
    Found(NodeId),
    /// The hop cap was hit (routing loop — only possible under attack).
    HopLimit,
}

/// The observable trace of one iterative lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupTrace {
    /// The key being looked up.
    pub key: Key,
    /// Nodes queried, in order. The initiator's own table is consulted
    /// first but the initiator itself is *not* part of this list.
    pub queried: Vec<NodeId>,
    /// Result of the lookup.
    pub outcome: LookupOutcome,
}

impl LookupTrace {
    /// The lookup result if it converged.
    #[must_use]
    pub fn result(&self) -> Option<NodeId> {
        match self.outcome {
            LookupOutcome::Found(n) => Some(n),
            LookupOutcome::HopLimit => None,
        }
    }

    /// Number of remote queries performed.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.queried.len()
    }
}

/// Run an iterative lookup from `initiator` for `key` over `view`.
///
/// The initiator first consults its *own* routing table, then iteratively
/// queries remote nodes for theirs, applying the greedy
/// [`RoutingTable::next_hop`] rule — exactly the query pattern whose
/// observability the anonymity analysis models.
pub fn iterative_lookup<V: RoutingView>(view: &V, initiator: NodeId, key: Key) -> LookupTrace {
    let mut queried = Vec::new();
    let mut current = view.table_of(initiator);
    loop {
        match current.next_hop(key) {
            NextHop::Found(owner) => {
                return LookupTrace {
                    key,
                    queried,
                    outcome: LookupOutcome::Found(owner),
                }
            }
            NextHop::Forward(next) => {
                if queried.len() >= MAX_HOPS {
                    return LookupTrace {
                        key,
                        queried,
                        outcome: LookupOutcome::HopLimit,
                    };
                }
                queried.push(next);
                current = view.table_of(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, seed: u64) -> (IdSpace, ChordConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = IdSpace::random(n, &mut rng);
        (space, ChordConfig::for_network(n))
    }

    #[test]
    fn lookup_finds_correct_owner() {
        let (space, cfg) = setup(500, 1);
        let view = GroundTruthView::new(&space, cfg);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let initiator = space.random_member(&mut rng);
            let key = Key(rng.gen());
            let trace = iterative_lookup(&view, initiator, key);
            assert_eq!(
                trace.result(),
                Some(space.owner_of(key).owner),
                "lookup must return ground-truth owner"
            );
        }
    }

    #[test]
    fn lookup_is_logarithmic() {
        let (space, cfg) = setup(1000, 3);
        let view = GroundTruthView::new(&space, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let initiator = space.random_member(&mut rng);
            let key = Key(rng.gen());
            let trace = iterative_lookup(&view, initiator, key);
            assert!(
                trace.hops() <= 30,
                "hops {} too high for N=1000",
                trace.hops()
            );
            total += trace.hops();
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (2.0..12.0).contains(&mean),
            "mean hops {mean} should be Θ(log N) ≈ 5-10"
        );
    }

    #[test]
    fn queries_approach_key_monotonically_in_distance() {
        let (space, cfg) = setup(800, 5);
        let view = GroundTruthView::new(&space, cfg);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let initiator = space.random_member(&mut rng);
            let key = Key(rng.gen());
            let trace = iterative_lookup(&view, initiator, key);
            // distance from each queried node to the key strictly decreases
            let mut last = key.distance_from_node(initiator);
            for &q in &trace.queried {
                let d = key.distance_from_node(q);
                assert!(d < last, "greedy lookup must advance");
                last = d;
            }
        }
    }

    #[test]
    fn own_key_resolves_locally_or_via_successor() {
        let (space, cfg) = setup(100, 7);
        let view = GroundTruthView::new(&space, cfg);
        let n = space.ids()[0];
        // a key owned by n's direct successor: no remote queries needed
        let succ = space.successor(n, 1);
        let trace = iterative_lookup(&view, n, succ.as_key());
        assert_eq!(trace.result(), Some(succ));
        assert_eq!(trace.hops(), 0);
    }

    #[test]
    fn two_node_ring() {
        let space = IdSpace::new(vec![NodeId(10), NodeId(1 << 60)]);
        let cfg = ChordConfig::for_network(2);
        let view = GroundTruthView::new(&space, cfg);
        let trace = iterative_lookup(&view, NodeId(10), Key(11));
        assert_eq!(trace.result(), Some(NodeId(1 << 60)));
        let trace = iterative_lookup(&view, NodeId(10), Key(5));
        assert_eq!(trace.result(), Some(NodeId(10)));
    }

    #[test]
    fn hop_limit_on_adversarial_crawl() {
        /// Greedy forwarding always advances clockwise, so a cycle is
        /// impossible — but an adversary inventing endless node ids can
        /// make each step advance by only one position, stretching the
        /// lookup toward 2^64 hops. The cap must cut this off.
        struct Crawl;
        impl RoutingView for Crawl {
            fn table_of(&self, of: NodeId) -> RoutingTable {
                RoutingTable {
                    owner: of,
                    fingers: vec![NodeId(of.0.wrapping_add(1))],
                    successors: vec![],
                    predecessors: vec![],
                }
            }
        }
        let trace = iterative_lookup(&Crawl, NodeId(1), Key(u64::MAX / 2));
        assert_eq!(trace.outcome, LookupOutcome::HopLimit);
        assert_eq!(trace.hops(), MAX_HOPS);
    }
}
