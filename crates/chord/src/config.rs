//! Ring parameters.

/// Chord/Octopus ring configuration.
///
/// Defaults follow the paper's §5.1 experiment setup: 12 fingers and 6
/// successors/predecessors for a 1000-node network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChordConfig {
    /// Number of fingers each node maintains. Finger `i` targets
    /// `n + 2^(64 - fingers + i)` … we keep the *top* `fingers` bits so a
    /// small fingertable still spans the whole ring (see
    /// [`ChordConfig::finger_bit`]).
    pub fingers: u32,
    /// Successor list length.
    pub successors: usize,
    /// Predecessor list length (Octopus keeps it equal to `successors`;
    /// §4.3 requires it to be "of the same size as the successor list").
    pub predecessors: usize,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            fingers: 12,
            successors: 6,
            predecessors: 6,
        }
    }
}

impl ChordConfig {
    /// A configuration scaled for a network of `n` nodes: `⌈log₂ n⌉ + 2`
    /// fingers (enough for O(log N) routing with slack), 6
    /// successors/predecessors.
    #[must_use]
    pub fn for_network(n: usize) -> Self {
        let bits = usize::BITS - n.saturating_sub(1).leading_zeros();
        ChordConfig {
            fingers: (bits + 2).clamp(4, 63),
            successors: 6,
            predecessors: 6,
        }
    }

    /// The ring-bit index of finger `i` (0-based, `i < self.fingers`).
    ///
    /// With `fingers = f`, finger `i` targets `n + 2^(64 - f + i)`: the
    /// *longest* finger always spans half the ring, and the shortest
    /// spans `2^(64-f)` — about `ring / 2^f`, i.e. roughly the expected
    /// spacing of `2^f` nodes. This is how deployments with `m`-bit ids
    /// but far fewer than `2^m` nodes actually provision fingertables.
    #[must_use]
    pub fn finger_bit(&self, i: u32) -> u32 {
        assert!(i < self.fingers, "finger index out of range");
        64 - self.fingers + i
    }

    /// Ideal target key of finger `i` for node `n`.
    #[must_use]
    pub fn finger_target(&self, node: octopus_id::NodeId, i: u32) -> octopus_id::Key {
        node.finger_target(self.finger_bit(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_id::NodeId;

    #[test]
    fn defaults_match_paper() {
        let c = ChordConfig::default();
        assert_eq!(c.fingers, 12);
        assert_eq!(c.successors, 6);
        assert_eq!(c.predecessors, 6);
    }

    #[test]
    fn for_network_scales() {
        assert_eq!(ChordConfig::for_network(1000).fingers, 12);
        assert_eq!(ChordConfig::for_network(100_000).fingers, 19);
        assert_eq!(ChordConfig::for_network(2).fingers, 4);
    }

    #[test]
    fn longest_finger_spans_half_ring() {
        let c = ChordConfig::default();
        let t = c.finger_target(NodeId(0), c.fingers - 1);
        assert_eq!(t.0, 1u64 << 63);
    }

    #[test]
    fn shortest_finger_spacing() {
        let c = ChordConfig::default();
        let t = c.finger_target(NodeId(0), 0);
        assert_eq!(t.0, 1u64 << 52);
    }

    #[test]
    #[should_panic(expected = "finger index out of range")]
    fn finger_bit_bounds() {
        let c = ChordConfig::default();
        let _ = c.finger_bit(12);
    }
}
