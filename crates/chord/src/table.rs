//! Routing tables and the greedy next-hop rule.
//!
//! In Octopus every queried node returns its full *routing table* — the
//! combination of fingertable and successor list (§4.3) — rather than a
//! single closest finger. Returning the whole table both hides the lookup
//! key from intermediate nodes (target anonymity, §4.1) and lets the
//! initiator use successor entries to finish the lookup early.

use octopus_id::{Key, NodeId};

/// A node's routing state as returned to lookup queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTable {
    /// The table's owner.
    pub owner: NodeId,
    /// Finger entries, shortest span first. May contain `owner` itself
    /// when the network is small.
    pub fingers: Vec<NodeId>,
    /// Successor list, nearest first.
    pub successors: Vec<NodeId>,
    /// Predecessor list, nearest first (Octopus extension, §4.3).
    pub predecessors: Vec<NodeId>,
}

/// The next step of a greedy lookup using one routing table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NextHop {
    /// The key's owner has been determined.
    Found(NodeId),
    /// The lookup should query this node next.
    Forward(NodeId),
}

impl RoutingTable {
    /// An empty table for `owner` (fresh node before stabilization).
    #[must_use]
    pub fn empty(owner: NodeId) -> Self {
        RoutingTable {
            owner,
            fingers: Vec::new(),
            successors: Vec::new(),
            predecessors: Vec::new(),
        }
    }

    /// All distinct routing entries (fingers ∪ successors), the candidate
    /// set for greedy forwarding.
    #[must_use]
    pub fn candidates(&self) -> Vec<NodeId> {
        let mut c: Vec<NodeId> = self
            .fingers
            .iter()
            .chain(self.successors.iter())
            .copied()
            .filter(|&n| n != self.owner)
            .collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Octopus' greedy routing rule for `key` against this table:
    ///
    /// 1. If the key falls between the owner and one of its successors
    ///    (scanning the successor list in ring order), that successor
    ///    *is* the key's owner — the lookup completes (§4.3's "use the
    ///    successor list to speed up the last few hops").
    /// 2. Otherwise forward to the candidate that most closely *precedes*
    ///    the key (classic Chord greedy step over fingers ∪ successors).
    /// 3. With no preceding candidate, fall back to the first successor
    ///    (guarantees progress on sparse tables).
    #[must_use]
    pub fn next_hop(&self, key: Key) -> NextHop {
        // 1. successor-list completion
        let mut prev = self.owner;
        for &s in &self.successors {
            if key.as_id().is_between_incl(prev, s) {
                return NextHop::Found(s);
            }
            prev = s;
        }
        // 2. closest preceding candidate
        let mut best: Option<(u64, NodeId)> = None;
        for c in self.candidates() {
            if c.is_between(self.owner, key.as_id()) {
                let advance = self.owner.distance_to(c);
                if best.map_or(true, |(b, _)| advance > b) {
                    best = Some((advance, c));
                }
            }
        }
        if let Some((_, c)) = best {
            return NextHop::Forward(c);
        }
        // 3. fallback
        match self.successors.first() {
            Some(&s) => NextHop::Forward(s),
            None => NextHop::Found(self.owner), // isolated node owns everything
        }
    }

    /// Number of routing items (fingers + successors) — the quantity the
    /// wire-size model charges for.
    #[must_use]
    pub fn item_count(&self) -> u32 {
        (self.fingers.len() + self.successors.len()) as u32
    }

    /// Canonical byte encoding, the content covered by table signatures.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 * (2 + self.fingers.len() + self.successors.len() + self.predecessors.len()),
        );
        out.extend_from_slice(&self.owner.0.to_be_bytes());
        for (tag, list) in [
            (0u8, &self.fingers),
            (1u8, &self.successors),
            (2u8, &self.predecessors),
        ] {
            out.push(tag);
            out.extend_from_slice(&(list.len() as u32).to_be_bytes());
            for id in list {
                out.extend_from_slice(&id.0.to_be_bytes());
            }
        }
        out
    }

    /// Inverse of [`RoutingTable::encode`]: parse a canonical encoding,
    /// requiring every byte to be consumed. Returns `None` on any
    /// malformation (wrong tag, length lies, truncation, trailing
    /// bytes) — never panics. Because the decode accepts exactly the
    /// canonical form, a table that roundtrips still carries valid
    /// signatures over its re-encoding.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let owner = NodeId(u64::from_be_bytes(take(&mut pos, 8)?.try_into().ok()?));
        let mut lists: [Vec<NodeId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (tag, slot) in lists.iter_mut().enumerate() {
            if *take(&mut pos, 1)?.first()? != tag as u8 {
                return None;
            }
            let len = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            // each id is 8 bytes: a forged length cannot pass this gate,
            // so allocation stays bounded by the input size
            if len.checked_mul(8)? > bytes.len() - pos {
                return None;
            }
            slot.reserve(len);
            for _ in 0..len {
                slot.push(NodeId(u64::from_be_bytes(
                    take(&mut pos, 8)?.try_into().ok()?,
                )));
            }
        }
        if pos != bytes.len() {
            return None;
        }
        let [fingers, successors, predecessors] = lists;
        Some(RoutingTable {
            owner,
            fingers,
            successors,
            predecessors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable {
        RoutingTable {
            owner: NodeId(100),
            fingers: vec![NodeId(200), NodeId(400), NodeId(800)],
            successors: vec![NodeId(110), NodeId(120), NodeId(130)],
            predecessors: vec![NodeId(90), NodeId(80)],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = table();
        let bytes = t.encode();
        let back = RoutingTable::decode(&bytes).expect("canonical bytes decode");
        assert_eq!(back, t);
        // signature stability: re-encoding the decode is byte-identical
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decode_rejects_malformed() {
        let bytes = table().encode();
        // every truncation
        for cut in 0..bytes.len() {
            assert!(RoutingTable::decode(&bytes[..cut]).is_none(), "cut={cut}");
        }
        // trailing garbage
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(RoutingTable::decode(&padded).is_none());
        // wrong section tag
        let mut bad_tag = bytes.clone();
        bad_tag[8] = 7;
        assert!(RoutingTable::decode(&bad_tag).is_none());
        // forged length prefix
        let mut bad_len = bytes;
        bad_len[9..13].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(RoutingTable::decode(&bad_len).is_none());
    }

    #[test]
    fn successor_completion() {
        let t = table();
        assert_eq!(t.next_hop(Key(105)), NextHop::Found(NodeId(110)));
        assert_eq!(t.next_hop(Key(110)), NextHop::Found(NodeId(110)));
        assert_eq!(t.next_hop(Key(115)), NextHop::Found(NodeId(120)));
        assert_eq!(t.next_hop(Key(130)), NextHop::Found(NodeId(130)));
    }

    #[test]
    fn greedy_forwarding() {
        let t = table();
        // key 500: candidates preceding it are 200, 400 (and succs) → 400
        assert_eq!(t.next_hop(Key(500)), NextHop::Forward(NodeId(400)));
        // key 1000: 800 precedes → forward to 800
        assert_eq!(t.next_hop(Key(1000)), NextHop::Forward(NodeId(800)));
        // key 150: no finger precedes except successors; 130 is closest preceding
        assert_eq!(t.next_hop(Key(150)), NextHop::Forward(NodeId(130)));
    }

    #[test]
    fn wrapping_key() {
        let t = table();
        // key 50 (behind owner, wraps all the way around): the farthest
        // candidate preceding it clockwise from 100 is 800
        assert_eq!(t.next_hop(Key(50)), NextHop::Forward(NodeId(800)));
    }

    #[test]
    fn fallback_to_first_successor() {
        let t = RoutingTable {
            owner: NodeId(100),
            fingers: vec![],
            successors: vec![NodeId(110)],
            predecessors: vec![],
        };
        // key 110 covered by succ list
        assert_eq!(t.next_hop(Key(110)), NextHop::Found(NodeId(110)));
        // key far away, no fingers: still makes progress via successor
        assert_eq!(t.next_hop(Key(5000)), NextHop::Forward(NodeId(110)));
    }

    #[test]
    fn isolated_node_owns_everything() {
        let t = RoutingTable::empty(NodeId(7));
        assert_eq!(t.next_hop(Key(123)), NextHop::Found(NodeId(7)));
    }

    #[test]
    fn candidates_deduped_without_owner() {
        let mut t = table();
        t.fingers.push(NodeId(110)); // duplicate of a successor
        t.fingers.push(NodeId(100)); // owner itself
        let c = t.candidates();
        assert_eq!(c.iter().filter(|&&n| n == NodeId(110)).count(), 1);
        assert!(!c.contains(&NodeId(100)));
    }

    #[test]
    fn encode_is_injective_across_lists() {
        // same ids distributed differently must encode differently
        let a = RoutingTable {
            owner: NodeId(1),
            fingers: vec![NodeId(2)],
            successors: vec![],
            predecessors: vec![],
        };
        let b = RoutingTable {
            owner: NodeId(1),
            fingers: vec![],
            successors: vec![NodeId(2)],
            predecessors: vec![],
        };
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn item_count_charges_fingers_and_successors() {
        assert_eq!(table().item_count(), 6);
    }
}
