//! The Chord DHT substrate Octopus is built on.
//!
//! Octopus customizes Chord (§4.3): each node maintains a fingertable for
//! routing, a successor list for stabilization *and lookups* (speeding up
//! the last hops), and — new in Octopus — a predecessor list maintained by
//! running the stabilization protocol anticlockwise, which powers secret
//! neighbor surveillance.
//!
//! This crate contains the protocol-agnostic pieces shared by the Octopus
//! core, the baselines, and the anonymity calculators:
//!
//! * [`config::ChordConfig`] — ring parameters (12 fingers, 6
//!   successors/predecessors in the paper's §5.1 setup),
//! * [`table::RoutingTable`] and its greedy [`table::NextHop`] rule,
//! * [`lookup`] — an oracle-driven iterative lookup over any
//!   [`lookup::RoutingView`], used by the anonymity pre-simulations and
//!   the baselines (the message-level lookup lives in `octopus-core`),
//! * [`stabilize`] — pure successor/predecessor list maintenance rules,
//! * [`signed`] — signed, timestamped routing tables (the non-repudiation
//!   proofs consumed by the CA),
//! * [`bound_check`] — NISAN-style fingertable bound checking, Octopus'
//!   lightweight defense for random walks (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound_check;
pub mod config;
pub mod lookup;
pub mod signed;
pub mod stabilize;
pub mod table;

pub use bound_check::BoundChecker;
pub use config::ChordConfig;
pub use lookup::{iterative_lookup, GroundTruthView, LookupOutcome, LookupTrace, RoutingView};
pub use signed::{SignedPredecessorList, SignedRoutingTable, SignedSuccessorList};
pub use table::{NextHop, RoutingTable};
