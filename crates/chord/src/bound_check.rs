//! NISAN-style fingertable bound checking.
//!
//! Octopus' lightweight random-walk defense (§4.1): *"like NISAN, the
//! initiator applies bound checking on the fingertables returned by
//! intermediate nodes of the random walk to limit fingertable
//! manipulation."* The idea: in a ring of `N` uniformly distributed
//! nodes, the first node succeeding a finger target is, with high
//! probability, within a few multiples of the mean node spacing. A
//! returned finger lying much farther past its ideal target than that —
//! or *preceding* the target — is evidence of manipulation.
//!
//! Bound checking is "merely a moderate defense" (§2): an adversary can
//! substitute colluders that happen to fall inside the bound. The strong
//! defense is secret finger surveillance (`octopus-core`).

use octopus_id::NodeId;

use crate::config::ChordConfig;
use crate::table::RoutingTable;

/// Verdict for one finger entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FingerVerdict {
    /// Within the plausibility bound.
    Plausible,
    /// The finger *precedes* its ideal target — always invalid.
    PrecedesTarget,
    /// The finger overshoots the target by more than the bound.
    TooFar,
}

/// Bound checker calibrated from a local density estimate.
#[derive(Clone, Copy, Debug)]
pub struct BoundChecker {
    config: ChordConfig,
    /// Estimated mean spacing between adjacent nodes on the ring.
    mean_spacing: u64,
    /// Slack multiplier β: a finger may overshoot its target by at most
    /// `β · mean_spacing`.
    beta: f64,
}

impl BoundChecker {
    /// Default slack β = 16: with uniform ids the overshoot is
    /// Exp(mean_spacing), so P(overshoot > 16·mean) ≈ e⁻¹⁶ — honest
    /// fingers essentially never fail while gross manipulation is caught.
    pub const DEFAULT_BETA: f64 = 16.0;

    /// Build a checker from one's own successor list — the same local
    /// information NISAN uses for its density estimate. The spacing
    /// estimate is the mean clockwise gap across the list.
    #[must_use]
    pub fn from_successor_list(config: ChordConfig, own: NodeId, successors: &[NodeId]) -> Self {
        let mean_spacing = if successors.is_empty() {
            u64::MAX / 2 // no information: accept almost anything
        } else {
            let span = own.distance_to(*successors.last().expect("non-empty"));
            (span / successors.len() as u64).max(1)
        };
        BoundChecker {
            config,
            mean_spacing,
            beta: Self::DEFAULT_BETA,
        }
    }

    /// Build a checker from a known network size (used in simulations
    /// where N is a parameter).
    #[must_use]
    pub fn from_network_size(config: ChordConfig, n: usize) -> Self {
        let mean_spacing = if n == 0 {
            u64::MAX / 2
        } else {
            u64::MAX / n as u64
        };
        BoundChecker {
            config,
            mean_spacing,
            beta: Self::DEFAULT_BETA,
        }
    }

    /// Override the slack multiplier.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// The estimated mean node spacing.
    #[must_use]
    pub fn mean_spacing(&self) -> u64 {
        self.mean_spacing
    }

    /// Check one finger of `owner` at index `i`.
    #[must_use]
    pub fn check_finger(&self, owner: NodeId, i: u32, finger: NodeId) -> FingerVerdict {
        let target = self.config.finger_target(owner, i);
        let overshoot = target.distance_to_node(finger);
        // a finger exactly at the target is valid (overshoot 0); one that
        // "precedes" shows up as a huge clockwise overshoot beyond the
        // finger span itself
        let span = 1u64 << self.config.finger_bit(i);
        if overshoot > span.saturating_add(span) && overshoot > self.bound() {
            // far beyond the next finger's region going clockwise means it
            // actually precedes the target
            return FingerVerdict::PrecedesTarget;
        }
        if overshoot > self.bound() {
            return FingerVerdict::TooFar;
        }
        FingerVerdict::Plausible
    }

    /// Check an entire routing table; returns the indices of implausible
    /// fingers.
    #[must_use]
    pub fn check_table(&self, table: &RoutingTable) -> Vec<(u32, FingerVerdict)> {
        let mut bad = Vec::new();
        for (i, &f) in table.fingers.iter().enumerate() {
            let i = i as u32;
            if i >= self.config.fingers {
                break;
            }
            let v = self.check_finger(table.owner, i, f);
            if v != FingerVerdict::Plausible {
                bad.push((i, v));
            }
        }
        bad
    }

    /// Does the whole table pass?
    #[must_use]
    pub fn passes(&self, table: &RoutingTable) -> bool {
        self.check_table(table).is_empty()
    }

    fn bound(&self) -> u64 {
        let b = self.mean_spacing as f64 * self.beta;
        if b >= u64::MAX as f64 {
            u64::MAX
        } else {
            b as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{GroundTruthView, RoutingView};
    use octopus_id::IdSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (IdSpace, ChordConfig) {
        let mut rng = StdRng::seed_from_u64(42);
        let space = IdSpace::random(1000, &mut rng);
        (space, ChordConfig::for_network(1000))
    }

    #[test]
    fn honest_tables_pass() {
        let (space, cfg) = setup();
        let view = GroundTruthView::new(&space, cfg);
        let checker = BoundChecker::from_network_size(cfg, space.len());
        let mut failures = 0;
        for &n in space.ids().iter().take(200) {
            if !checker.passes(&view.table_of(n)) {
                failures += 1;
            }
        }
        assert!(
            failures <= 2,
            "honest tables should essentially always pass ({failures}/200 failed)"
        );
    }

    #[test]
    fn local_density_estimate_close_to_truth() {
        let (space, cfg) = setup();
        let own = space.ids()[0];
        let sl = space.successor_list(own, 6);
        let checker = BoundChecker::from_successor_list(cfg, own, &sl);
        let truth = u64::MAX / 1000;
        let est = checker.mean_spacing();
        // within an order of magnitude is plenty for a β=16 bound
        assert!(
            est > truth / 10 && est < truth.saturating_mul(10),
            "estimate {est} vs {truth}"
        );
    }

    #[test]
    fn distant_colluder_caught() {
        let (space, cfg) = setup();
        let view = GroundTruthView::new(&space, cfg);
        let checker = BoundChecker::from_network_size(cfg, space.len());
        let owner = space.ids()[0];
        let mut table = view.table_of(owner);
        // replace the longest finger with a node a quarter-span past the
        // target: ~128 mean spacings with N=1000, far beyond the β=16 bound
        let i = cfg.fingers - 1;
        let target = cfg.finger_target(owner, i);
        let span = 1u64 << cfg.finger_bit(i);
        let fake = NodeId(target.0.wrapping_add(span / 4));
        table.fingers[i as usize] = fake;
        let bad = checker.check_table(&table);
        assert!(
            bad.iter().any(|&(j, _)| j == i),
            "manipulated finger must fail"
        );
    }

    #[test]
    fn preceding_finger_caught() {
        let (space, cfg) = setup();
        let view = GroundTruthView::new(&space, cfg);
        let checker = BoundChecker::from_network_size(cfg, space.len());
        let owner = space.ids()[0];
        let mut table = view.table_of(owner);
        // a "finger" sitting just before its own target wraps nearly the
        // whole ring in clockwise overshoot
        let target = cfg.finger_target(owner, 5);
        table.fingers[5] = NodeId(target.0.wrapping_sub(1000));
        let bad = checker.check_table(&table);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 5);
    }

    #[test]
    fn nearby_colluder_evades() {
        // the documented limitation: a colluder within the bound passes
        let (space, cfg) = setup();
        let view = GroundTruthView::new(&space, cfg);
        let checker = BoundChecker::from_network_size(cfg, space.len());
        let owner = space.ids()[0];
        let mut table = view.table_of(owner);
        let target = cfg.finger_target(owner, 3);
        // a colluder 2 mean-spacings past the target: plausible
        table.fingers[3] = NodeId(target.0.wrapping_add(2 * (u64::MAX / 1000)));
        assert!(
            checker.passes(&table),
            "bound checking is only a moderate defense"
        );
    }

    #[test]
    fn empty_successor_list_is_permissive() {
        let cfg = ChordConfig::default();
        let checker = BoundChecker::from_successor_list(cfg, NodeId(0), &[]);
        assert!(checker.mean_spacing() > u64::MAX / 4);
    }
}
