//! Pure stabilization rules for successor and predecessor lists.
//!
//! Octopus nodes run Chord stabilization clockwise for the successor
//! list and — its extension — *anticlockwise* for the predecessor list
//! (§4.3), every 2 s in the paper's setup. The message choreography lives
//! in `octopus-core::simnet`; the list arithmetic lives here where it can
//! be tested exhaustively.

use octopus_id::NodeId;

/// Merge the first successor's list into our own:
/// `new = [s1] ++ s1_list`, with ourselves removed, deduplicated, and
/// truncated to `k` entries.
#[must_use]
pub fn merge_successor_list(own: NodeId, s1: NodeId, s1_list: &[NodeId], k: usize) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(k);
    for &cand in std::iter::once(&s1).chain(s1_list.iter()) {
        if cand == own || out.contains(&cand) {
            continue;
        }
        out.push(cand);
        if out.len() == k {
            break;
        }
    }
    out
}

/// Mirror of [`merge_successor_list`] for the anticlockwise direction.
#[must_use]
pub fn merge_predecessor_list(
    own: NodeId,
    p1: NodeId,
    p1_list: &[NodeId],
    k: usize,
) -> Vec<NodeId> {
    merge_successor_list(own, p1, p1_list, k)
}

/// Classic Chord rectification: if our successor's predecessor sits
/// between us and the successor, a closer successor has joined.
#[must_use]
pub fn closer_successor(own: NodeId, s1: NodeId, s1_pred: NodeId) -> Option<NodeId> {
    s1_pred.is_between(own, s1).then_some(s1_pred)
}

/// Anticlockwise rectification: if our predecessor's successor sits
/// between the predecessor and us, a closer predecessor has joined.
#[must_use]
pub fn closer_predecessor(own: NodeId, p1: NodeId, p1_succ: NodeId) -> Option<NodeId> {
    p1_succ.is_between(p1, own).then_some(p1_succ)
}

/// Drop a dead head from a neighbor list, promoting the next entry.
pub fn drop_head(list: &mut Vec<NodeId>, dead: NodeId) {
    list.retain(|&n| n != dead);
}

/// Is `list` strictly ordered by clockwise distance from `own`? Correct
/// successor lists always are; the CA uses this as a cheap sanity check
/// on submitted proofs.
#[must_use]
pub fn is_clockwise_ordered(own: NodeId, list: &[NodeId]) -> bool {
    let mut last = 0u64;
    for &n in list {
        let d = own.distance_to(n);
        if d == 0 || d <= last {
            return false;
        }
        last = d;
    }
    true
}

/// Is `list` strictly ordered by *anticlockwise* distance from `own`
/// (correct predecessor lists)?
#[must_use]
pub fn is_anticlockwise_ordered(own: NodeId, list: &[NodeId]) -> bool {
    let mut last = 0u64;
    for &n in list {
        let d = n.distance_to(own);
        if d == 0 || d <= last {
            return false;
        }
        last = d;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_id::IdSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn merge_basic() {
        let merged = merge_successor_list(
            NodeId(10),
            NodeId(20),
            &[NodeId(30), NodeId(40), NodeId(50)],
            3,
        );
        assert_eq!(merged, vec![NodeId(20), NodeId(30), NodeId(40)]);
    }

    #[test]
    fn merge_skips_self_and_dups() {
        let merged = merge_successor_list(
            NodeId(10),
            NodeId(20),
            &[NodeId(20), NodeId(10), NodeId(30)],
            4,
        );
        assert_eq!(merged, vec![NodeId(20), NodeId(30)]);
    }

    #[test]
    fn merge_converges_to_ground_truth() {
        // Applying the merge rule along the ring reproduces IdSpace's
        // ground-truth successor lists.
        let mut rng = StdRng::seed_from_u64(1);
        let space = IdSpace::random(50, &mut rng);
        let k = 6;
        for &n in space.ids() {
            let s1 = space.successor(n, 1);
            let s1_list = space.successor_list(s1, k);
            let merged = merge_successor_list(n, s1, &s1_list, k);
            assert_eq!(merged, space.successor_list(n, k));
        }
    }

    #[test]
    fn rectification() {
        assert_eq!(
            closer_successor(NodeId(10), NodeId(30), NodeId(20)),
            Some(NodeId(20))
        );
        assert_eq!(closer_successor(NodeId(10), NodeId(30), NodeId(40)), None);
        assert_eq!(closer_successor(NodeId(10), NodeId(30), NodeId(10)), None);
        assert_eq!(
            closer_predecessor(NodeId(30), NodeId(10), NodeId(20)),
            Some(NodeId(20))
        );
        assert_eq!(closer_predecessor(NodeId(30), NodeId(10), NodeId(5)), None);
    }

    #[test]
    fn ordering_checks() {
        assert!(is_clockwise_ordered(
            NodeId(10),
            &[NodeId(20), NodeId(30), NodeId(5)]
        ));
        assert!(!is_clockwise_ordered(NodeId(10), &[NodeId(30), NodeId(20)]));
        assert!(!is_clockwise_ordered(NodeId(10), &[NodeId(10)]));
        assert!(is_anticlockwise_ordered(
            NodeId(10),
            &[NodeId(5), NodeId(1), NodeId(200)]
        ));
        assert!(!is_anticlockwise_ordered(
            NodeId(10),
            &[NodeId(1), NodeId(5)]
        ));
    }

    #[test]
    fn predecessor_merge_converges() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = IdSpace::random(50, &mut rng);
        let k = 6;
        for &n in space.ids() {
            let p1 = space.predecessor(n, 1);
            let p1_list = space.predecessor_list(p1, k);
            let merged = merge_predecessor_list(n, p1, &p1_list, k);
            assert_eq!(merged, space.predecessor_list(n, k));
        }
    }

    #[test]
    fn drop_head_promotes() {
        let mut l = vec![NodeId(1), NodeId(2), NodeId(3)];
        drop_head(&mut l, NodeId(1));
        assert_eq!(l, vec![NodeId(2), NodeId(3)]);
        drop_head(&mut l, NodeId(9));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn empty_lists_are_ordered() {
        assert!(is_clockwise_ordered(NodeId(1), &[]));
        assert!(is_anticlockwise_ordered(NodeId(1), &[]));
    }
}
