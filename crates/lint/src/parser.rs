//! A lightweight, resilient statement-tree parser over the lexer's
//! token stream.
//!
//! This is not a Rust grammar: it recognizes exactly the structure the
//! dataflow rules need — items (`fn`/`impl`/`struct`/`trait`/`mod`),
//! per-function statement lists with `let`/`for`/`if let`/`while let`
//! bindings, and nested blocks — and treats everything else as opaque
//! expression statements. Two properties are load-bearing:
//!
//! 1. **Totality.** The parser never panics and always terminates; a
//!    construct it cannot structure degrades to an opaque statement.
//!    Genuinely unbalanced files produce [`ParsedFile::errors`], which
//!    the engine reports as violations — a parse failure is a lint
//!    error, never a silent skip.
//! 2. **Spans.** Every statement records its head-token range (the
//!    statement text excluding sub-block bodies) into the shared token
//!    stream, so rules pattern-match tokens without re-lexing.
//!
//! Angle brackets are tracked as delimiters only in type-ish positions
//! (struct fields, parameter lists, annotations, item headers); in
//! statement positions `<`/`>` are comparison operators and ignored.

use std::collections::BTreeSet;

use crate::lexer::Tok;

/// Structured view of one source file.
#[derive(Debug, Default)]
pub(crate) struct ParsedFile {
    pub(crate) fns: Vec<FnDef>,
    /// Named struct fields whose declared type mentions `f32`/`f64`.
    pub(crate) float_fields: BTreeSet<String>,
    /// Named struct fields whose declared type mentions `HashMap`/`HashSet`.
    pub(crate) hash_fields: BTreeSet<String>,
    /// Structural failures: (line, col, message). Non-empty means the
    /// file could not be fully analyzed.
    pub(crate) errors: Vec<(u32, u32, String)>,
}

/// One function (or method) definition with a parsed body.
#[derive(Debug)]
pub(crate) struct FnDef {
    pub(crate) name: String,
    pub(crate) is_pub: bool,
    /// Trait name when defined inside `impl Trait for Type { .. }`.
    pub(crate) impl_trait: Option<String>,
    pub(crate) line: u32,
    /// Parameter names whose declared type mentions `f32`/`f64`.
    pub(crate) float_params: BTreeSet<String>,
    /// Parameter names whose declared type mentions `HashMap`/`HashSet`.
    pub(crate) hash_params: BTreeSet<String>,
    /// Defined inside an inline `mod tests` — the dataflow/concurrency
    /// rules (006–009) skip such fns: unit-test assertions never feed
    /// replayed engine state.
    pub(crate) in_test_mod: bool,
    /// Token range of the body block, braces exclusive.
    pub(crate) body_span: (usize, usize),
    pub(crate) body: Block,
}

/// A `{ .. }` region as a list of statements.
#[derive(Debug, Default)]
pub(crate) struct Block {
    pub(crate) stmts: Vec<Stmt>,
}

/// Statement classification: only binding forms are distinguished.
#[derive(Debug)]
pub(crate) enum StmtKind {
    /// `let <pat>[: ty] [= init];` — including `let .. else { .. }`.
    Let {
        bindings: Vec<String>,
        /// Token range of the type annotation, if any.
        ty: Option<(usize, usize)>,
        /// Token range of the initializer, if any.
        init: Option<(usize, usize)>,
    },
    /// `for <pat> in <iter> { .. }` — bindings scope to the body.
    For {
        bindings: Vec<String>,
        iter: (usize, usize),
    },
    /// `if let` / `while let` header — bindings scope to the body.
    CondLet {
        bindings: Vec<String>,
        expr: (usize, usize),
    },
    /// Anything else (expressions, items we skip, match arms, ...).
    Expr,
}

/// One statement: classification, head-token span (excluding sub-block
/// bodies), source position, and any nested blocks.
#[derive(Debug)]
pub(crate) struct Stmt {
    pub(crate) kind: StmtKind,
    /// Token indices of the statement head, end-exclusive. Sub-block
    /// bodies are *not* part of the head; they are in `blocks`.
    pub(crate) head: (usize, usize),
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) blocks: Vec<Block>,
}

/// Pattern keywords and other idents that never name a binding.
const NON_BINDING: &[&str] = &["mut", "ref", "box", "_", "self"];

fn is_binding_ident(t: &Tok) -> bool {
    t.ident
        && !NON_BINDING.contains(&t.text.as_str())
        && t.text.starts_with(|c: char| c.is_lowercase() || c == '_')
}

/// Harvest candidate binding names from a pattern token range.
/// Over-approximates (struct-pattern field names are included); rules
/// tolerate over-binding because taint still requires a tainted source.
fn pattern_bindings(toks: &[Tok], range: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = range.0;
    while i < range.1.min(toks.len()) {
        let t = &toks[i];
        // skip path segments: `Event::Timer` contributes nothing
        if t.text == ":" && i + 1 < range.1 && toks[i + 1].text == ":" {
            i += 2;
            if i < range.1 && toks[i].ident {
                i += 1; // the segment after `::` is a path, not a binding
            }
            continue;
        }
        if is_binding_ident(t) && !out.contains(&t.text) {
            out.push(t.text.clone());
        }
        i += 1;
    }
    out
}

/// True when the type token range mentions a float scalar.
fn tokens_mention_float(toks: &[Tok], range: (usize, usize)) -> bool {
    toks[range.0..range.1.min(toks.len())]
        .iter()
        .any(|t| t.text == "f32" || t.text == "f64")
}

/// True when the type token range mentions an unordered hash container.
fn tokens_mention_hash(toks: &[Tok], range: (usize, usize)) -> bool {
    toks[range.0..range.1.min(toks.len())]
        .iter()
        .any(|t| t.text == "HashMap" || t.text == "HashSet")
}

/// Whether a depth-0 scan should treat `<`/`>` as delimiters (type
/// positions) or as comparison operators (statement positions).
#[derive(Clone, Copy, PartialEq)]
enum Angles {
    Type,
    Expr,
}

/// The parser: a cursor over the shared token stream.
struct Parser<'a> {
    toks: &'a [Tok],
    out: ParsedFile,
    /// Nesting depth of `mod tests` regions (see [`FnDef::in_test_mod`]).
    test_depth: usize,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Tok> {
        self.toks.get(i)
    }

    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn pos(&self, i: usize) -> (u32, u32) {
        self.at(i).map(|t| (t.line, t.col)).unwrap_or((1, 1))
    }

    fn error_at(&mut self, i: usize, msg: &str) {
        let (line, col) = self.pos(i.min(self.toks.len().saturating_sub(1)));
        self.out.errors.push((line, col, msg.to_string()));
    }

    /// Skip a balanced `(..)`, `[..]` or `{..}` region starting at an
    /// opening delimiter; returns the index just past the close. On an
    /// unbalanced region, returns end-of-stream and records an error.
    fn skip_balanced(&mut self, open: usize) -> usize {
        let (o, c) = match self.text(open) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return open + 1,
        };
        let mut depth = 0i64;
        let mut i = open;
        while i < self.toks.len() {
            let t = self.text(i);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        self.error_at(open, &format!("unbalanced `{o}` — file truncated?"));
        self.toks.len()
    }

    /// Find the next occurrence of any of `stops` at delimiter depth 0,
    /// starting at `i`. Returns (index, which-stop) or (end, None).
    fn find_at_depth0(
        &self,
        i: usize,
        end: usize,
        stops: &[&str],
        angles: Angles,
    ) -> (usize, Option<usize>) {
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut brace = 0i64;
        let mut angle = 0i64;
        let mut j = i;
        while j < end.min(self.toks.len()) {
            let t = self.text(j);
            if paren == 0 && bracket == 0 && brace == 0 && angle == 0 {
                if let Some(k) = stops.iter().position(|s| *s == t) {
                    return (j, Some(k));
                }
            }
            match t {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => brace -= 1,
                "<" if angles == Angles::Type => angle += 1,
                // `->` never closes a generic list
                ">" if angles == Angles::Type && j > 0 && self.text(j - 1) != "-" => {
                    angle = (angle - 1).max(0);
                }
                _ => {}
            }
            j += 1;
        }
        (end.min(self.toks.len()), None)
    }

    // ----- items -------------------------------------------------------

    /// Parse items in `toks[i..end]` (a file top level, `impl`/`trait`
    /// body, or `mod` body).
    fn parse_items(&mut self, mut i: usize, end: usize, impl_trait: Option<&str>) {
        while i < end {
            let next = match self.text(i) {
                "pub" => {
                    // `pub` / `pub(crate)` — skip visibility and any
                    // `const`/`unsafe` qualifiers before `fn`
                    let mut j = i + 1;
                    if self.text(j) == "(" {
                        j = self.skip_balanced(j);
                    }
                    while matches!(self.text(j), "const" | "unsafe") && self.text(j + 1) == "fn" {
                        j += 1;
                    }
                    if self.text(j) == "fn" {
                        self.parse_fn(j, end, true, impl_trait)
                    } else {
                        j
                    }
                }
                "fn" => self.parse_fn(i, end, false, impl_trait),
                "impl" => self.parse_impl(i, end),
                "struct" => self.parse_struct(i, end),
                "trait" | "mod" => {
                    // recurse into the body so trait default methods and
                    // inline modules are analyzed
                    let is_tests = self.text(i) == "mod" && self.text(i + 1) == "tests";
                    let (open, found) = self.find_at_depth0(i + 1, end, &["{", ";"], Angles::Type);
                    if found == Some(0) {
                        let close = self.skip_balanced(open);
                        self.test_depth += usize::from(is_tests);
                        self.parse_items(open + 1, close.saturating_sub(1), None);
                        self.test_depth -= usize::from(is_tests);
                        close
                    } else {
                        open + 1
                    }
                }
                "enum" | "union" => {
                    let (open, found) = self.find_at_depth0(i + 1, end, &["{", ";"], Angles::Type);
                    if found == Some(0) {
                        self.skip_balanced(open)
                    } else {
                        open + 1
                    }
                }
                "macro_rules" => self.skip_macro_rules(i),
                "const" if self.text(i + 1) == "fn" => self.parse_fn(i + 1, end, false, impl_trait),
                "static" | "const" | "type" | "extern" => {
                    let (semi, _) = self.find_at_depth0(i + 1, end, &[";"], Angles::Expr);
                    semi + 1
                }
                "{" => self.skip_balanced(i),
                _ => i + 1,
            };
            i = next.max(i + 1);
        }
    }

    /// Skip `macro_rules! name { .. }` entirely — macro bodies are
    /// token soup by design and never engine dataflow.
    fn skip_macro_rules(&mut self, i: usize) -> usize {
        let mut j = i + 1; // past `macro_rules`
        if self.text(j) == "!" {
            j += 1;
        }
        if self.at(j).is_some_and(|t| t.ident) {
            j += 1;
        }
        match self.text(j) {
            "{" | "(" | "[" => self.skip_balanced(j),
            _ => j,
        }
    }

    /// Parse `impl [Trait for] Type { items }`, extracting the trait
    /// name for `Merge`-path detection.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let (open, found) = self.find_at_depth0(i + 1, end, &["{", ";"], Angles::Type);
        if found != Some(0) {
            return open + 1;
        }
        // trait name: the last identifier before a depth-0 `for` in the
        // header (`impl<T> Merge for Series<T>` → `Merge`)
        let (for_pos, has_for) = self.find_at_depth0(i + 1, open, &["for"], Angles::Type);
        let impl_trait = if has_for.is_some() {
            self.toks[i + 1..for_pos]
                .iter()
                .rev()
                .find(|t| t.ident)
                .map(|t| t.text.clone())
        } else {
            None
        };
        let close = self.skip_balanced(open);
        self.parse_items(open + 1, close.saturating_sub(1), impl_trait.as_deref());
        close
    }

    /// Parse a struct item, recording float/hash typed named fields.
    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let (open, found) = self.find_at_depth0(i + 1, end, &["{", "(", ";"], Angles::Type);
        match found {
            Some(0) => {
                let close = self.skip_balanced(open);
                // fields: `[pub] name : TYPE` split on depth-0 commas
                let mut f = open + 1;
                let body_end = close.saturating_sub(1);
                while f < body_end {
                    let (comma, _) = self.find_at_depth0(f, body_end, &[","], Angles::Type);
                    let (colon, has_colon) = self.find_at_depth0(f, comma, &[":"], Angles::Type);
                    if has_colon.is_some() {
                        let name = self.toks[f..colon]
                            .iter()
                            .rev()
                            .find(|t| t.ident && t.text != "pub" && t.text != "crate");
                        if let Some(name) = name {
                            if tokens_mention_float(self.toks, (colon + 1, comma)) {
                                self.out.float_fields.insert(name.text.clone());
                            }
                            if tokens_mention_hash(self.toks, (colon + 1, comma)) {
                                self.out.hash_fields.insert(name.text.clone());
                            }
                        }
                    }
                    f = comma + 1;
                }
                close
            }
            Some(1) => self.skip_balanced(open), // tuple struct
            _ => open + 1,                       // unit struct
        }
    }

    /// Parse `fn name<...>(params) [-> ret] { body }` (or `;`).
    fn parse_fn(&mut self, i: usize, end: usize, is_pub: bool, impl_trait: Option<&str>) -> usize {
        let name_tok = match self.at(i + 1) {
            Some(t) if t.ident => t,
            _ => return i + 1,
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut j = i + 2;
        if self.text(j) == "<" {
            let (close, found) = self.find_at_depth0(j + 1, end, &[">", "{", ";"], Angles::Type);
            j = if found == Some(0) { close + 1 } else { j + 1 };
        }
        let mut float_params = BTreeSet::new();
        let mut hash_params = BTreeSet::new();
        if self.text(j) == "(" {
            let params_end = self.skip_balanced(j);
            let mut p = j + 1;
            let inner_end = params_end.saturating_sub(1);
            while p < inner_end {
                let (comma, _) = self.find_at_depth0(p, inner_end, &[","], Angles::Type);
                let (colon, has_colon) = self.find_at_depth0(p, comma, &[":"], Angles::Type);
                if has_colon.is_some() {
                    for t in &self.toks[p..colon] {
                        if is_binding_ident(t) {
                            if tokens_mention_float(self.toks, (colon + 1, comma)) {
                                float_params.insert(t.text.clone());
                            }
                            if tokens_mention_hash(self.toks, (colon + 1, comma)) {
                                hash_params.insert(t.text.clone());
                            }
                        }
                    }
                }
                p = comma + 1;
            }
            j = params_end;
        }
        // return type / where clause: scan to the body or a `;`
        let (open, found) = self.find_at_depth0(j, end, &["{", ";"], Angles::Type);
        match found {
            Some(0) => {
                let close = self.skip_balanced(open);
                let body_span = (open + 1, close.saturating_sub(1));
                let body = self.parse_block_range(body_span.0, body_span.1, false);
                self.out.fns.push(FnDef {
                    name,
                    is_pub,
                    impl_trait: impl_trait.map(str::to_string),
                    line,
                    float_params,
                    hash_params,
                    in_test_mod: self.test_depth > 0,
                    body_span,
                    body,
                });
                close
            }
            Some(_) => open + 1, // trait method signature, no body
            None => open.max(i + 1),
        }
    }

    // ----- statements --------------------------------------------------

    /// Parse statements in `toks[start..end]` (a brace-exclusive block
    /// body). `match_body` additionally terminates statements on depth-0
    /// commas, so match arms become separate statements.
    fn parse_block_range(&mut self, start: usize, end: usize, match_body: bool) -> Block {
        let mut block = Block::default();
        let mut i = start;
        while i < end {
            let t = self.text(i);
            let next = match t {
                ";" | "," => i + 1,
                "let" => self.parse_let(i, end, &mut block),
                "for" => self.parse_for(i, end, &mut block),
                "if" | "while" => self.parse_cond(i, end, &mut block),
                "match" => self.parse_match(i, end, &mut block),
                "loop" | "unsafe" => self.parse_headed_block(i, end, &mut block),
                "fn" | "pub" | "struct" | "impl" | "trait" | "mod" | "enum" | "static"
                | "const" | "macro_rules" => {
                    // nested items inside fn bodies: route through the
                    // item parser so inner fns are analyzed too
                    let item_end = self.item_extent(i, end);
                    self.parse_items(i, item_end, None);
                    item_end
                }
                "{" => {
                    let close = self.skip_balanced(i);
                    let inner = self.parse_block_range(i + 1, close.saturating_sub(1), false);
                    let (line, col) = self.pos(i);
                    block.stmts.push(Stmt {
                        kind: StmtKind::Expr,
                        head: (i, i + 1),
                        line,
                        col,
                        blocks: vec![inner],
                    });
                    close
                }
                "}" => end, // defensive; ranges are brace-exclusive
                _ => self.parse_expr_stmt(i, end, match_body, &mut block),
            };
            i = next.max(i + 1);
        }
        block
    }

    /// Extent of a nested item starting at `i`: through its balanced
    /// braces (or terminating `;`).
    fn item_extent(&mut self, i: usize, end: usize) -> usize {
        if self.text(i) == "macro_rules" {
            return self.skip_macro_rules(i);
        }
        let (stop, found) = self.find_at_depth0(i + 1, end, &["{", ";"], Angles::Expr);
        match found {
            Some(0) => self.skip_balanced(stop),
            _ => stop + 1,
        }
    }

    /// `let <pat>[: ty] [= init];` with let-else handled by the init
    /// scan recursing its `{ .. }`.
    fn parse_let(&mut self, i: usize, end: usize, block: &mut Block) -> usize {
        let (line, col) = self.pos(i);
        let (pat_end, which) = self.find_at_depth0(i + 1, end, &[":", "=", ";"], Angles::Expr);
        let bindings = pattern_bindings(self.toks, (i + 1, pat_end));
        let mut ty = None;
        let mut cursor = pat_end;
        if which == Some(0) {
            let (ty_end, _) = self.find_at_depth0(cursor + 1, end, &["=", ";"], Angles::Type);
            ty = Some((cursor + 1, ty_end));
            cursor = ty_end;
        }
        let mut blocks = Vec::new();
        let mut init = None;
        let mut head_end;
        if self.text(cursor) == "=" {
            let init_start = cursor + 1;
            let stmt_end = self.scan_expr(init_start, end, false, &mut blocks);
            init = Some((init_start, stmt_end));
            head_end = stmt_end;
        } else {
            head_end = cursor;
        }
        if self.text(head_end) == ";" {
            head_end += 1;
        }
        block.stmts.push(Stmt {
            kind: StmtKind::Let { bindings, ty, init },
            head: (i, head_end),
            line,
            col,
            blocks,
        });
        head_end.max(i + 1)
    }

    /// `for <pat> in <iter> { body }`.
    fn parse_for(&mut self, i: usize, end: usize, block: &mut Block) -> usize {
        let (line, col) = self.pos(i);
        let (in_pos, has_in) = self.find_at_depth0(i + 1, end, &["in", "{"], Angles::Expr);
        if has_in != Some(0) {
            // `for` in a bound position or malformed — opaque statement
            return self.parse_expr_stmt(i, end, false, block);
        }
        let bindings = pattern_bindings(self.toks, (i + 1, in_pos));
        let (open, found) = self.find_at_depth0(in_pos + 1, end, &["{"], Angles::Expr);
        if found.is_none() {
            self.error_at(i, "`for` without a body block");
            return end;
        }
        let iter = (in_pos + 1, open);
        let close = self.skip_balanced(open);
        let body = self.parse_block_range(open + 1, close.saturating_sub(1), false);
        block.stmts.push(Stmt {
            kind: StmtKind::For { bindings, iter },
            head: (i, open),
            line,
            col,
            blocks: vec![body],
        });
        close
    }

    /// `if`/`while` statements, including `if let`/`while let` binding
    /// headers and `else`/`else if` chains. Each `else if` header is
    /// emitted as a sibling statement so rules scan its tokens too.
    fn parse_cond(&mut self, i: usize, end: usize, block: &mut Block) -> usize {
        let (line, col) = self.pos(i);
        let mut blocks = Vec::new();
        let mut kind = StmtKind::Expr;
        let mut extra_heads: Vec<(usize, usize)> = Vec::new();
        let mut first_head_end = None;
        let mut cursor = i;
        loop {
            // one `if`/`while` header
            let header_start = cursor + 1;
            if self.text(header_start) == "let" {
                let (eq, has_eq) =
                    self.find_at_depth0(header_start + 1, end, &["=", "{"], Angles::Expr);
                if has_eq == Some(0) {
                    let bindings = pattern_bindings(self.toks, (header_start + 1, eq));
                    let (open, _) = self.find_at_depth0(eq + 1, end, &["{"], Angles::Expr);
                    if matches!(kind, StmtKind::Expr) {
                        kind = StmtKind::CondLet {
                            bindings,
                            expr: (eq + 1, open),
                        };
                    }
                }
            }
            let (open, found) = self.find_at_depth0(cursor + 1, end, &["{", ";"], Angles::Expr);
            if found != Some(0) {
                if first_head_end.is_none() {
                    first_head_end = Some(open);
                }
                cursor = open + 1;
                break;
            }
            if first_head_end.is_none() {
                first_head_end = Some(open);
            } else {
                extra_heads.push((header_start, open));
            }
            let close = self.skip_balanced(open);
            blocks.push(self.parse_block_range(open + 1, close.saturating_sub(1), false));
            cursor = close;
            // else / else-if chain
            if self.text(cursor) == "else" {
                if self.text(cursor + 1) == "{" {
                    let eopen = cursor + 1;
                    let eclose = self.skip_balanced(eopen);
                    blocks.push(self.parse_block_range(eopen + 1, eclose.saturating_sub(1), false));
                    cursor = eclose;
                    break;
                }
                if self.text(cursor + 1) == "if" {
                    cursor += 1;
                    continue;
                }
            }
            break;
        }
        block.stmts.push(Stmt {
            kind,
            head: (i, first_head_end.unwrap_or(i + 1)),
            line,
            col,
            blocks,
        });
        for (hs, he) in extra_heads {
            let (hl, hc) = self.pos(hs);
            block.stmts.push(Stmt {
                kind: StmtKind::Expr,
                head: (hs, he),
                line: hl,
                col: hc,
                blocks: Vec::new(),
            });
        }
        cursor.max(i + 1)
    }

    /// `match expr { arms }` — the arm list parses as a match body so
    /// depth-0 commas split arms into separate statements.
    fn parse_match(&mut self, i: usize, end: usize, block: &mut Block) -> usize {
        let (line, col) = self.pos(i);
        let (open, found) = self.find_at_depth0(i + 1, end, &["{", ";"], Angles::Expr);
        if found != Some(0) {
            return open + 1;
        }
        let close = self.skip_balanced(open);
        let body = self.parse_block_range(open + 1, close.saturating_sub(1), true);
        block.stmts.push(Stmt {
            kind: StmtKind::Expr,
            head: (i, open),
            line,
            col,
            blocks: vec![body],
        });
        // a match used as a statement may be followed by `;`
        if self.text(close) == ";" {
            close + 1
        } else {
            close
        }
    }

    /// `loop { .. }` / `unsafe { .. }`.
    fn parse_headed_block(&mut self, i: usize, end: usize, block: &mut Block) -> usize {
        let (line, col) = self.pos(i);
        let (open, found) = self.find_at_depth0(i + 1, end, &["{", ";"], Angles::Expr);
        if found != Some(0) {
            return open + 1;
        }
        let close = self.skip_balanced(open);
        let body = self.parse_block_range(open + 1, close.saturating_sub(1), false);
        block.stmts.push(Stmt {
            kind: StmtKind::Expr,
            head: (i, open),
            line,
            col,
            blocks: vec![body],
        });
        close
    }

    /// An opaque expression statement: scan to the terminator, recursing
    /// into any depth-0 `{ .. }` regions (closure bodies, match
    /// sub-expressions, struct literals) as nested blocks.
    fn parse_expr_stmt(
        &mut self,
        i: usize,
        end: usize,
        match_body: bool,
        block: &mut Block,
    ) -> usize {
        let (line, col) = self.pos(i);
        let mut blocks = Vec::new();
        let stmt_end = self.scan_expr(i, end, match_body, &mut blocks);
        let mut next = stmt_end;
        if matches!(self.text(next), ";" | ",") {
            next += 1;
        }
        block.stmts.push(Stmt {
            kind: StmtKind::Expr,
            head: (i, stmt_end),
            line,
            col,
            blocks,
        });
        next.max(i + 1)
    }

    /// Scan one expression starting at `i`: stop at a depth-0 `;` (or
    /// `,` in match bodies) or the region end; recurse into depth-0
    /// brace regions. Returns the end index (terminator exclusive).
    fn scan_expr(
        &mut self,
        i: usize,
        end: usize,
        match_body: bool,
        blocks: &mut Vec<Block>,
    ) -> usize {
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut j = i;
        let mut pending_match = false;
        while j < end {
            let t = self.text(j);
            match t {
                "(" => paren += 1,
                ")" => {
                    if paren == 0 {
                        return j;
                    }
                    paren -= 1;
                }
                "[" => bracket += 1,
                "]" => {
                    if bracket == 0 {
                        return j;
                    }
                    bracket -= 1;
                }
                ";" if paren == 0 && bracket == 0 => return j,
                "," if match_body && paren == 0 && bracket == 0 => return j,
                "}" if paren == 0 && bracket == 0 => return j,
                "match" if paren == 0 && bracket == 0 => pending_match = true,
                "{" if paren == 0 && bracket == 0 => {
                    let close = self.skip_balanced(j);
                    blocks.push(self.parse_block_range(
                        j + 1,
                        close.saturating_sub(1),
                        pending_match,
                    ));
                    pending_match = false;
                    j = close;
                    // continue the statement only through chain/else glue
                    match self.text(j) {
                        "." | "?" | "else" => continue,
                        _ => return j,
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end.min(j)
    }
}

/// Parse a stripped token stream into a [`ParsedFile`].
pub(crate) fn parse(toks: &[Tok]) -> ParsedFile {
    let mut p = Parser {
        toks,
        out: ParsedFile::default(),
        test_depth: 0,
    };
    p.parse_items(0, toks.len(), None);
    p.out
}

/// Render the statement tree as stable indented text — the contract the
/// parser torture fixture asserts against.
pub(crate) fn debug_tree(file: &ParsedFile) -> String {
    fn walk(block: &Block, depth: usize, out: &mut String) {
        for stmt in &block.stmts {
            for _ in 0..depth {
                out.push_str("  ");
            }
            let at = format!("@{}:{}", stmt.line, stmt.col);
            match &stmt.kind {
                StmtKind::Let { bindings, ty, init } => {
                    out.push_str(&format!(
                        "let [{}]{}{} {at}\n",
                        bindings.join(", "),
                        if ty.is_some() { " :ty" } else { "" },
                        if init.is_some() { " =init" } else { "" },
                    ));
                }
                StmtKind::For { bindings, .. } => {
                    out.push_str(&format!("for [{}] {at}\n", bindings.join(", ")));
                }
                StmtKind::CondLet { bindings, .. } => {
                    out.push_str(&format!("cond-let [{}] {at}\n", bindings.join(", ")));
                }
                StmtKind::Expr => out.push_str(&format!("expr {at}\n")),
            }
            for b in &stmt.blocks {
                walk(b, depth + 1, out);
            }
        }
    }
    let mut out = String::new();
    for f in &file.fns {
        out.push_str(&format!(
            "fn {}{}{} @{}\n",
            f.name,
            if f.is_pub { " pub" } else { "" },
            f.impl_trait
                .as_deref()
                .map(|t| format!(" impl:{t}"))
                .unwrap_or_default(),
            f.line,
        ));
        walk(&f.body, 1, &mut out);
    }
    for (line, col, msg) in &file.errors {
        out.push_str(&format!("error {line}:{col} {msg}\n"));
    }
    out
}
