//! The shared lexical pass: one scan per file produces the token
//! stream every rule family consumes and the suppression directives the
//! audit rule checks.
//!
//! The lexer strips comments, string/char literals and attributes,
//! keeps identifier/number/punctuation tokens with 1-based positions,
//! and harvests `// octolint: allow(...)` directives from line
//! comments. Decimal literals (`0.5`, `1.25e3`) lex as one token so the
//! float-accumulation rule can recognize them without re-scanning
//! source text.

/// One surviving token: an identifier/number or a single punctuation
/// character, with its 1-based source position.
#[derive(Clone, Debug)]
pub(crate) struct Tok {
    pub(crate) text: String,
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) ident: bool,
}

impl Tok {
    /// True for a number token carrying a decimal point (`0.5`,
    /// `1.25e3`) — the lexical evidence of float arithmetic.
    pub(crate) fn is_float_literal(&self) -> bool {
        self.text.starts_with(|c: char| c.is_ascii_digit()) && self.text.contains('.')
    }
}

/// One `// octolint: allow(CODE[, CODE]) -- justification` directive.
#[derive(Clone, Debug)]
pub(crate) struct Suppression {
    pub(crate) codes: Vec<String>,
    pub(crate) justified: bool,
    pub(crate) line: u32,
    pub(crate) col: u32,
}

/// Product of the shared pass: the stripped token stream plus the
/// harvested suppression directives.
pub(crate) struct Lexed {
    pub(crate) tokens: Vec<Tok>,
    pub(crate) suppressions: Vec<Suppression>,
}

/// Strip comments/strings/chars, collect identifier and punctuation
/// tokens with positions, and harvest `octolint: allow(...)` directives
/// from line comments.
pub(crate) fn lex(source: &str) -> Lexed {
    let b: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();

    let n = b.len();
    macro_rules! bump {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // line comment (and suppression directive harvesting)
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if let Some(s) = parse_suppression(&text, line, col) {
                suppressions.push(s);
            }
            col += (i - start) as u32;
            continue;
        }
        // block comment, nested
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            bump!('/');
            bump!('*');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!('/');
                    bump!('*');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!('*');
                    bump!('/');
                    i += 2;
                } else {
                    bump!(b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // raw strings r"..." / r#"..."# (and br variants via the ident path)
        if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                // consume r##"  ...  "##
                while i <= j {
                    bump!(b[i]);
                    i += 1;
                }
                'raw: while i < n {
                    if b[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                if i < n {
                                    bump!(b[i]);
                                    i += 1;
                                }
                            }
                            break 'raw;
                        }
                    }
                    bump!(b[i]);
                    i += 1;
                }
                continue;
            }
            // plain identifier starting with r — fall through
        }
        // string literal (also reached after a b/br prefix ident)
        if c == '"' {
            bump!('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!(b[i]);
                    bump!(b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == '"';
                bump!(b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // char literal vs lifetime: 'x' / '\n' vs 'a in generics
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                bump!('\'');
                i += 1; // skip the quote; the label lexes as an ident
                continue;
            }
            bump!('\'');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!(b[i]);
                    bump!(b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == '\'';
                bump!(b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // identifier / number (decimal literals keep their point:
        // `0.5` is one token, `1..2` and `x.0` are not)
        if c.is_alphanumeric() || c == '_' {
            let (tl, tc) = (line, col);
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                bump!(b[i]);
                i += 1;
            }
            if c.is_ascii_digit()
                && i + 1 < n
                && b[i] == '.'
                && b[i + 1].is_ascii_digit()
                && b[start..i].iter().all(|&d| d.is_ascii_digit() || d == '_')
            {
                bump!('.');
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump!(b[i]);
                    i += 1;
                }
            }
            tokens.push(Tok {
                text: b[start..i].iter().collect(),
                line: tl,
                col: tc,
                ident: c.is_alphabetic() || c == '_',
            });
            continue;
        }
        // whitespace
        if c.is_whitespace() {
            bump!(c);
            i += 1;
            continue;
        }
        // single-char punctuation token
        tokens.push(Tok {
            text: c.to_string(),
            line,
            col,
            ident: false,
        });
        bump!(c);
        i += 1;
    }

    Lexed {
        tokens: strip_attrs_and_uses(tokens),
        suppressions,
    }
}

/// Parse `// octolint: allow(OCT-LINT-001[, ...]) -- justification`.
fn parse_suppression(comment: &str, line: u32, col: u32) -> Option<Suppression> {
    let rest = comment.trim_start_matches('/').trim_start();
    let rest = rest.strip_prefix("octolint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (codes_part, tail) = rest.split_once(')')?;
    let codes: Vec<String> = codes_part
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let justified = tail
        .trim_start()
        .strip_prefix("--")
        .is_some_and(|j| !j.trim().is_empty());
    Some(Suppression {
        codes,
        justified,
        line,
        col,
    })
}

/// Drop attribute contents (`#[...]` / `#![...]`) and `use` declaration
/// bodies from the token stream: neither constitutes a *use* of a
/// disallowed construct.
fn strip_attrs_and_uses(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    let mut in_use = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if in_use {
            if t.text == ";" {
                in_use = false;
            }
            i += 1;
            continue;
        }
        if t.text == "#" {
            let bracket = match tokens.get(i + 1) {
                Some(t1) if t1.text == "[" => Some(i + 1),
                Some(t1) if t1.text == "!" => match tokens.get(i + 2) {
                    Some(t2) if t2.text == "[" => Some(i + 2),
                    _ => None,
                },
                _ => None,
            };
            if let Some(open) = bracket {
                let mut depth = 0i32;
                let mut j = open;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        if t.ident && t.text == "use" {
            in_use = true;
            i += 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}
