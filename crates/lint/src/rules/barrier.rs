//! `OCT-LINT-009` — barrier-path panic safety.
//!
//! Shard batch execution (`run_batch`) runs on worker threads between
//! window barriers. If a batch panic escapes uncaught, the worker dies
//! without posting its done-count and every peer blocks on the barrier
//! forever — or, worse, the driver merges a half-executed window. The
//! contract: every call into a protected callee must be lexically
//! covered by `catch_unwind`, or reached only *through* functions whose
//! own call sites are covered. This rule walks the intra-crate call
//! graph to check reachability:
//!
//! 1. a call to a protected callee outside any `catch_unwind(..)`
//!    argument range marks the containing fn **hot**;
//! 2. hotness propagates to callers whose call sites are themselves
//!    uncovered;
//! 3. a hot fn that is `pub` (callable from outside the crate) or has
//!    no intra-crate callers (an entry point) is a violation, reported
//!    at the original unprotected call site.
//!
//! The walk is name-based and per-crate: `crates/X/src/*` files are
//! analyzed together so `pool.rs` calling into `world.rs` resolves.

use std::collections::{BTreeMap, BTreeSet};

use super::{Candidate, FileCtx, BARRIER_PROTECTED};

/// One call site inside a fn body.
struct Call {
    callee: String,
    covered: bool,
    /// (file index, line, col) of the callee token.
    site: (usize, u32, u32),
}

struct FnInfo {
    name: String,
    is_pub: bool,
    calls: Vec<Call>,
}

/// Check one crate group (all `FileCtx`s share a crate). Returns
/// candidates tagged with the index of the file they anchor to.
pub(crate) fn check_crate(files: &[FileCtx<'_>]) -> Vec<(usize, Candidate)> {
    let mut fns: Vec<FnInfo> = Vec::new();
    for (file_idx, ctx) in files.iter().enumerate() {
        for f in ctx.parsed.fns.iter().filter(|f| !f.in_test_mod) {
            let (start, end) = f.body_span;
            let end = end.min(ctx.toks.len());
            // catch_unwind coverage: the balanced argument ranges
            let mut covered: Vec<(usize, usize)> = Vec::new();
            let mut i = start;
            while i < end {
                if ctx.toks[i].ident
                    && ctx.toks[i].text == "catch_unwind"
                    && ctx.toks.get(i + 1).is_some_and(|t| t.text == "(")
                {
                    let mut depth = 0i64;
                    let open = i + 1;
                    let mut j = open;
                    while j < end {
                        match ctx.toks[j].text.as_str() {
                            "(" => depth += 1,
                            ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    covered.push((open, j));
                    i = open + 1;
                    continue;
                }
                i += 1;
            }
            // call sites
            let mut calls = Vec::new();
            for i in start..end {
                let t = &ctx.toks[i];
                if !t.ident
                    || !ctx.toks.get(i + 1).is_some_and(|n| n.text == "(")
                    || (i > 0 && ctx.toks[i - 1].text == "fn")
                {
                    continue;
                }
                calls.push(Call {
                    callee: t.text.clone(),
                    covered: covered.iter().any(|&(a, b)| i > a && i < b),
                    site: (file_idx, t.line, t.col),
                });
            }
            fns.push(FnInfo {
                name: f.name.clone(),
                is_pub: f.is_pub,
                calls,
            });
        }
    }

    // callers: fn name -> indices of fns that call it (covered or not)
    let mut callers: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        for c in &f.calls {
            callers.entry(c.callee.as_str()).or_default().insert(idx);
        }
    }

    // hot set: fn index -> witness site of the unprotected call
    let mut hot: BTreeMap<usize, (usize, u32, u32)> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        for c in &f.calls {
            if !c.covered && BARRIER_PROTECTED.contains(&c.callee.as_str()) {
                hot.entry(idx).or_insert(c.site);
            }
        }
    }
    // propagate hotness up through uncovered call edges
    let mut changed = true;
    while changed {
        changed = false;
        for (idx, f) in fns.iter().enumerate() {
            if hot.contains_key(&idx) {
                continue;
            }
            for c in &f.calls {
                if c.covered {
                    continue;
                }
                let callee_hot = fns
                    .iter()
                    .enumerate()
                    .find(|(j, g)| g.name == c.callee && hot.contains_key(j))
                    .map(|(j, _)| hot[&j]);
                if let Some(witness) = callee_hot {
                    hot.insert(idx, witness);
                    changed = true;
                    break;
                }
            }
        }
    }

    // violations: hot fns that are entry points
    let mut out = Vec::new();
    for (&idx, &(file_idx, line, col)) in &hot {
        let f = &fns[idx];
        let has_other_caller = callers
            .get(f.name.as_str())
            .is_some_and(|set| set.iter().any(|&c| c != idx));
        let exposed = f.is_pub || !has_other_caller;
        if exposed {
            out.push((
                file_idx,
                Candidate {
                    line,
                    col,
                    code: "OCT-LINT-009",
                    message: format!(
                        "shard batch execution is reachable through `{}` without \
                         `catch_unwind` coverage: a panic here skips the window \
                         barrier merge and deadlocks the worker pool; wrap the call \
                         in `catch_unwind(AssertUnwindSafe(..))` and re-raise after \
                         the barrier",
                        f.name
                    ),
                },
            ));
        }
    }
    out
}
