//! `OCT-LINT-007` — float accumulation in merge paths.
//!
//! Float addition is not associative: `(a + b) + c != a + (b + c)` in
//! general, so an `f32`/`f64` `+=`, `.sum()` or `.fold(..)` inside a
//! *merge path* — an `impl Merge` method, an `absorb`, or any fn whose
//! name contains `merge` in an engine crate — produces results that
//! depend on merge order. Sequential/parallel equivalence requires the
//! driver to merge shard results in a fixed order; this rule flags the
//! accumulation sites so each is either integerized or carries an allow
//! documenting the fixed-order argument.
//!
//! Float evidence is resolved from declared types, not spelled tokens
//! alone: struct fields and parameters typed `f32`/`f64` taint the
//! bindings iterating or aliasing them.

use std::collections::BTreeMap;

use super::{engine_src, Candidate, FileCtx};
use crate::parser::{Block, FnDef, Stmt, StmtKind};

/// Is this fn a merge path: shard results folding into one another?
fn is_merge_path(f: &FnDef) -> bool {
    f.impl_trait.as_deref() == Some("Merge") || f.name == "absorb" || f.name.contains("merge")
}

/// Lexical scope stack: binding name → is-float.
struct Env {
    scopes: Vec<BTreeMap<String, bool>>,
}

impl Env {
    fn is_float(&self, name: &str) -> bool {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name).copied())
            .unwrap_or(false)
    }

    fn bind(&mut self, name: &str, float: bool) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string(), float);
        }
    }
}

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Candidate>) {
    if !engine_src(ctx.rel) {
        return;
    }
    for f in ctx
        .parsed
        .fns
        .iter()
        .filter(|f| is_merge_path(f) && !f.in_test_mod)
    {
        let mut env = Env {
            scopes: vec![BTreeMap::new()],
        };
        for p in &f.float_params {
            env.bind(p, true);
        }
        walk(ctx, &f.body, &mut env, out);
    }
}

/// Float evidence in a token range: a decimal literal, a spelled
/// `f32`/`f64`, a float-typed field/param, or a float-tainted binding.
fn has_float_evidence(ctx: &FileCtx<'_>, env: &Env, range: (usize, usize)) -> bool {
    let end = range.1.min(ctx.toks.len());
    ctx.toks[range.0..end].iter().any(|t| {
        t.is_float_literal()
            || t.text == "f32"
            || t.text == "f64"
            || (t.ident && (ctx.parsed.float_fields.contains(&t.text) || env.is_float(&t.text)))
    })
}

/// Does the expression range *source* floats (for let/for taint)?
fn expr_is_float(ctx: &FileCtx<'_>, env: &Env, range: (usize, usize)) -> bool {
    has_float_evidence(ctx, env, range)
}

fn walk(ctx: &FileCtx<'_>, block: &Block, env: &mut Env, out: &mut Vec<Candidate>) {
    for stmt in &block.stmts {
        check_stmt(ctx, stmt, env, out);
    }
}

fn check_stmt(ctx: &FileCtx<'_>, stmt: &Stmt, env: &mut Env, out: &mut Vec<Candidate>) {
    let (start, head_end) = (stmt.head.0, stmt.head.1.min(ctx.toks.len()));

    // `+=` with float evidence anywhere in the statement head
    let mut fired = false;
    for i in start..head_end.saturating_sub(1) {
        let a = &ctx.toks[i];
        let b = &ctx.toks[i + 1];
        if a.text == "+" && b.text == "=" && has_float_evidence(ctx, env, stmt.head) {
            out.push(Candidate {
                line: a.line,
                col: a.col,
                code: "OCT-LINT-007",
                message: "float `+=` in a merge path: float addition is not associative, \
                          so merge order changes the result; accumulate integers (counts, \
                          fixed-point) or justify a fixed merge order"
                    .to_string(),
            });
            fired = true;
            break;
        }
    }

    // `.sum()` / `.fold(..)` with float evidence
    if !fired {
        for i in start..head_end {
            if super::is_method_call(ctx.toks, i, &["sum", "fold"])
                && has_float_evidence(ctx, env, stmt.head)
            {
                let t = &ctx.toks[i];
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-007",
                    message: format!(
                        "float `.{}()` in a merge path: float reduction order changes \
                         the result across merge schedules; reduce integers or justify \
                         a fixed fold order",
                        t.text
                    ),
                });
                break;
            }
        }
    }

    // binding effects + sub-blocks
    match &stmt.kind {
        StmtKind::Let { bindings, ty, init } => {
            let float = ty.map(|r| has_float_evidence(ctx, env, r)).unwrap_or(false)
                || init.map(|r| expr_is_float(ctx, env, r)).unwrap_or(false);
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                walk(ctx, b, env, out);
                env.scopes.pop();
            }
            for name in bindings {
                env.bind(name, float);
            }
        }
        StmtKind::For { bindings, iter } => {
            let float = expr_is_float(ctx, env, *iter);
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                for name in bindings {
                    env.bind(name, float);
                }
                walk(ctx, b, env, out);
                env.scopes.pop();
            }
        }
        StmtKind::CondLet { bindings, expr } => {
            let float = expr_is_float(ctx, env, *expr);
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                for name in bindings {
                    env.bind(name, float);
                }
                walk(ctx, b, env, out);
                env.scopes.pop();
            }
        }
        StmtKind::Expr => {
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                walk(ctx, b, env, out);
                env.scopes.pop();
            }
        }
    }
}
