//! `OCT-LINT-008` — guard discipline in the barrier modules.
//!
//! PR 8's worst bug: a worker thread called `resume_unwind` while still
//! holding the panic-slot mutex guard, poisoning the mutex every other
//! worker was about to take and turning one shard panic into a cascade
//! of `PoisonError` panics that deadlocked the window barrier. This
//! rule encodes the post-mortem as static analysis, scoped to the two
//! modules where lock guards and the barrier protocol live
//! (`crates/net/src/pool.rs`, `world.rs`):
//!
//! - a **guard binding** is `let [mut] g = <expr>.lock()/.read()/
//!   .write()` followed only by `.unwrap()`/`.expect(..)` (a trailing
//!   `.take()` or similar makes it a temporary, not a guard);
//! - while a guard is live (until `drop(g)` or scope end), taking a
//!   second lock is a violation (lock-order deadlock / poison-cascade
//!   hazard);
//! - while a guard is live, any potential panic — `panic!`/
//!   `unreachable!`/`todo!`/`.unwrap()`/`.expect(..)`/`resume_unwind` —
//!   is a violation: it would poison the held lock;
//! - the acquisition statement itself and condvar reacquisition
//!   (`g = cv.wait(g).expect(..)`) are exempt — that `expect` fires
//!   only if the *condvar* is poisoned, at which point the window is
//!   already lost.

use std::collections::BTreeSet;

use super::{Candidate, FileCtx, GUARD_SCOPE};
use crate::lexer::Tok;
use crate::parser::{Block, Stmt, StmtKind};

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Candidate>) {
    if !GUARD_SCOPE.contains(&ctx.rel) {
        return;
    }
    for f in ctx.parsed.fns.iter().filter(|f| !f.in_test_mod) {
        let mut guards: Vec<BTreeSet<String>> = vec![BTreeSet::new()];
        walk(ctx, &f.body, &mut guards, out);
    }
}

fn live_guard(guards: &[BTreeSet<String>]) -> Option<&str> {
    guards
        .iter()
        .rev()
        .find_map(|s| s.iter().next().map(String::as_str))
}

/// Is `init` a guard acquisition: a chain ending in
/// `.lock()/.read()/.write()` followed only by `.unwrap()`/`.expect(..)`?
fn is_guard_acquisition(toks: &[Tok], range: (usize, usize)) -> bool {
    let end = range.1.min(toks.len());
    let lock_at = (range.0..end)
        .rev()
        .find(|&i| super::is_method_call(toks, i, LOCK_METHODS));
    let Some(lock_at) = lock_at else {
        return false;
    };
    // skip the lock call's argument parens
    let mut i = lock_at + 1;
    let mut depth = 0i64;
    while i < end {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // the rest must be only `.unwrap()` / `.expect(..)` adapters
    while i < end {
        if toks[i].text != "." {
            return false;
        }
        if !toks
            .get(i + 1)
            .is_some_and(|t| PANIC_METHODS.contains(&t.text.as_str()))
        {
            return false;
        }
        if toks.get(i + 2).map(|t| t.text.as_str()) != Some("(") {
            return false;
        }
        let mut depth = 0i64;
        i += 2;
        while i < end {
            match toks[i].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    true
}

/// `drop(name)` on a live guard releases it.
fn dropped_guard(toks: &[Tok], range: (usize, usize)) -> Option<String> {
    let end = range.1.min(toks.len());
    if end - range.0 >= 4
        && toks[range.0].text == "drop"
        && toks[range.0 + 1].text == "("
        && toks[range.0 + 2].ident
        && toks[range.0 + 3].text == ")"
    {
        return Some(toks[range.0 + 2].text.clone());
    }
    None
}

/// Condvar reacquisition: `g = <expr>` where `g` is a live guard.
fn is_reacquisition(toks: &[Tok], range: (usize, usize), guards: &[BTreeSet<String>]) -> bool {
    let end = range.1.min(toks.len());
    end - range.0 >= 3
        && toks[range.0].ident
        && guards.iter().any(|s| s.contains(&toks[range.0].text))
        && toks[range.0 + 1].text == "="
        && toks[range.0 + 2].text != "="
}

fn scan_head(
    ctx: &FileCtx<'_>,
    stmt: &Stmt,
    guards: &[BTreeSet<String>],
    second_lock_only: bool,
    out: &mut Vec<Candidate>,
) {
    let Some(holder) = live_guard(guards) else {
        return;
    };
    let end = stmt.head.1.min(ctx.toks.len());
    for i in stmt.head.0..end {
        let t = &ctx.toks[i];
        if super::is_method_call(ctx.toks, i, LOCK_METHODS) {
            out.push(Candidate {
                line: t.line,
                col: t.col,
                code: "OCT-LINT-008",
                message: format!(
                    "`.{}()` while guard `{holder}` is live: a second lock under a held \
                     guard risks lock-order deadlock and poison cascades across the \
                     window barrier; drop `{holder}` first",
                    t.text
                ),
            });
            return;
        }
        if second_lock_only {
            continue;
        }
        let panicky = (t.ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && ctx.toks.get(i + 1).is_some_and(|n| n.text == "!"))
            || super::is_method_call(ctx.toks, i, PANIC_METHODS)
            || super::is_call(ctx.toks, i, &["resume_unwind"]);
        if panicky {
            out.push(Candidate {
                line: t.line,
                col: t.col,
                code: "OCT-LINT-008",
                message: format!(
                    "potential panic (`{}`) while guard `{holder}` is live would poison \
                     its lock for every other thread (the PR-8 poisoned-mutex cascade); \
                     drop `{holder}` before any fallible/raising call",
                    t.text
                ),
            });
            return;
        }
    }
}

fn walk(
    ctx: &FileCtx<'_>,
    block: &Block,
    guards: &mut Vec<BTreeSet<String>>,
    out: &mut Vec<Candidate>,
) {
    guards.push(BTreeSet::new());
    for stmt in &block.stmts {
        let guard_let = match &stmt.kind {
            StmtKind::Let { bindings, init, .. } => match (bindings.as_slice(), init) {
                ([name], Some(range)) if is_guard_acquisition(ctx.toks, *range) => {
                    Some(name.clone())
                }
                _ => None,
            },
            _ => None,
        };

        if is_reacquisition(ctx.toks, stmt.head, guards) {
            // condvar wait: the guard moves through the wait and back
        } else if let Some(dropped) = dropped_guard(ctx.toks, stmt.head) {
            for scope in guards.iter_mut().rev() {
                if scope.remove(&dropped) {
                    break;
                }
            }
        } else {
            // a fresh acquisition is itself exempt from the panic check
            // (the .expect on .lock() is the sanctioned poison check),
            // but taking it while another guard is live is still a
            // second-lock violation
            scan_head(ctx, stmt, guards, guard_let.is_some(), out);
        }

        for b in &stmt.blocks {
            walk(ctx, b, guards, out);
        }

        if let Some(name) = guard_let {
            if let Some(top) = guards.last_mut() {
                top.insert(name);
            }
        }
    }
    guards.pop();
}
