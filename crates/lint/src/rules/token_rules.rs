//! The v1 token-pattern rules (002–005): wall-clock reads, ambient
//! randomness, thread-identity leakage, and shard-unsafe writes.
//!
//! `OCT-LINT-001` (the blanket `HashMap`/`HashSet` type ban) is
//! *retired*: the dataflow rule `OCT-LINT-006` supersedes it by flagging
//! the actual hazard — unordered iteration flowing into order-sensitive
//! sinks — instead of every type mention. Keyed-access-only maps no
//! longer need an allow.

use super::{
    has_prefix, seq, Candidate, FileCtx, AMBIENT_RNG_EXEMPT, THREAD_IDENTITY_EXEMPT,
    WALL_CLOCK_EXEMPT,
};

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Candidate>) {
    let rel_path = ctx.rel;
    let tokens = ctx.toks;
    let engine = super::engine_src(rel_path);

    for (i, t) in tokens.iter().enumerate() {
        if !t.ident {
            continue;
        }
        match t.text.as_str() {
            // OCT-LINT-002 — wall-clock reads
            "Instant"
                if seq(tokens, i, &["Instant", ":", ":", "now"])
                    && !has_prefix(rel_path, WALL_CLOCK_EXEMPT) =>
            {
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-002",
                    message: "`Instant::now` outside crates/bench: simulated time must come \
                              from the event queue (`ctx.now()` / `SimTime`)"
                        .to_string(),
                });
            }
            "SystemTime" | "UNIX_EPOCH" if !has_prefix(rel_path, WALL_CLOCK_EXEMPT) => {
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-002",
                    message: format!(
                        "`{}` outside crates/bench: wall-clock reads make replay \
                         depend on when the run happened",
                        t.text
                    ),
                });
            }
            // OCT-LINT-003 — ambient randomness
            "thread_rng" | "from_entropy" | "OsRng"
                if !has_prefix(rel_path, AMBIENT_RNG_EXEMPT) =>
            {
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-003",
                    message: format!(
                        "`{}` draws ambient entropy: every RNG must derive from the master \
                         seed via `derive_rng`/`split_seed`",
                        t.text
                    ),
                });
            }
            "rand"
                if seq(tokens, i, &["rand", ":", ":", "random"])
                    && !has_prefix(rel_path, AMBIENT_RNG_EXEMPT) =>
            {
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-003",
                    message: "`rand::random` draws from the ambient thread RNG: derive a \
                              seeded stream via `derive_rng`/`split_seed`"
                        .to_string(),
                });
            }
            // OCT-LINT-004 — thread-identity leakage
            "available_parallelism" | "ThreadId" if !THREAD_IDENTITY_EXEMPT.contains(&rel_path) => {
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-004",
                    message: format!(
                        "`{}` outside TrialRunner/RunArgs: results must not depend \
                         on how many threads the host offers",
                        t.text
                    ),
                });
            }
            "thread"
                if seq(tokens, i, &["thread", ":", ":", "current"])
                    && !THREAD_IDENTITY_EXEMPT.contains(&rel_path) =>
            {
                out.push(Candidate {
                    line: t.line,
                    col: t.col,
                    code: "OCT-LINT-004",
                    message: "`thread::current` leaks thread identity into engine state"
                        .to_string(),
                });
            }
            // OCT-LINT-005 — shard-unsafe shared mutation:
            // `<...adversary...>.write(` or `.update(` (the sharded
            // directory's all-replica merge is driver-only)
            "write" | "update"
                if engine
                    && !super::SHARD_WRITE_EXEMPT.contains(&rel_path)
                    && i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(") =>
            {
                // back-scan the expression for the adversary directory
                let from = i.saturating_sub(16);
                let stmt_start = tokens[from..i]
                    .iter()
                    .rposition(|t| matches!(t.text.as_str(), ";" | "{" | "}"))
                    .map_or(from, |p| from + p + 1);
                const ADVERSARY_IDENTS: &[&str] = &[
                    "adversary",
                    "SharedAdversary",
                    "ShardedAdversary",
                    "AdversaryHandle",
                ];
                if tokens[stmt_start..i]
                    .iter()
                    .any(|t| t.ident && ADVERSARY_IDENTS.contains(&t.text.as_str()))
                {
                    out.push(Candidate {
                        line: t.line,
                        col: t.col,
                        code: "OCT-LINT-005",
                        message: format!(
                            "`.{}()` on the sharded adversary directory outside a driver \
                             module: shard threads may only read their replica; mutate \
                             between windows from the driver",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}
