//! `OCT-LINT-006` — unordered-iteration dataflow.
//!
//! `HashMap`/`HashSet` iteration order is seeded per process, so any
//! value *derived from iterating* one of them that flows into an
//! order-sensitive sink (`push`/`insert`/`entry`/`extend`/`append`/
//! `fold`/`hash`/`emit`) breaks byte-identical replay. This rule tracks
//! that flow through local bindings within a function:
//!
//! - a binding is **tainted** when bound (by `let`, `for`, `if let`,
//!   `while let`) from an expression that iterates a hash container —
//!   a local declared as `HashMap`/`HashSet`, a struct field or
//!   parameter of hash type, or a literal `HashMap`/`HashSet` path —
//!   via `.iter()`/`.keys()`/`.values()`/`.drain()`/`.into_iter()` (or
//!   a bare `for x in &map`);
//! - a statement that calls an order-sensitive sink **and** references
//!   a tainted binding (or contains the unordered iteration inline) is
//!   a violation;
//! - a `.sort*()` call on a binding, or routing through
//!   `BTreeMap`/`BTreeSet`, sanitizes it.
//!
//! Keyed access (`get`/`contains_key`/`insert`/`remove` on the map
//! itself) never taints: that is exactly the class of use the retired
//! blanket ban `OCT-LINT-001` forced allows for.

use std::collections::BTreeMap;

use super::{engine_src, Candidate, FileCtx};
use crate::parser::{Block, FnDef, Stmt, StmtKind};

/// Iteration methods that expose hash ordering.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Order-sensitive sinks: appending, accumulating or hashing in
/// encounter order bakes the iteration order into engine state.
const SINKS: &[&str] = &[
    "push", "insert", "entry", "extend", "append", "fold", "hash", "emit",
];

/// Sanitizers: a sorted or BTree-routed stream has deterministic order.
const SORTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

#[derive(Clone, Copy, Default)]
struct Taint {
    /// The binding *is* a hash container (iterating it is unordered).
    container: bool,
    /// The binding's value came from unordered iteration.
    unordered: bool,
}

/// Lexical scope stack of binding taints.
struct Env {
    scopes: Vec<BTreeMap<String, Taint>>,
}

impl Env {
    fn lookup(&self, name: &str) -> Option<Taint> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn bind(&mut self, name: &str, taint: Taint) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string(), taint);
        }
    }

    /// Clear the `unordered` bit wherever `name` resolves (sort heals
    /// the binding in place).
    fn sanitize(&mut self, name: &str) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(t) = scope.get_mut(name) {
                t.unordered = false;
                return;
            }
        }
    }
}

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Candidate>) {
    if !engine_src(ctx.rel) {
        return;
    }
    for f in ctx.parsed.fns.iter().filter(|f| !f.in_test_mod) {
        let mut env = Env {
            scopes: vec![BTreeMap::new()],
        };
        for p in &f.hash_params {
            env.bind(
                p,
                Taint {
                    container: true,
                    unordered: false,
                },
            );
        }
        walk(ctx, f, &f.body, &mut env, out);
    }
}

/// Does the token range reference a hash container (tainted-container
/// binding, hash-typed field/param, or a literal `HashMap`/`HashSet`)?
fn mentions_hash_source(ctx: &FileCtx<'_>, env: &Env, range: (usize, usize)) -> bool {
    ctx.toks[range.0..range.1.min(ctx.toks.len())]
        .iter()
        .any(|t| {
            t.ident
                && (t.text == "HashMap"
                    || t.text == "HashSet"
                    || ctx.parsed.hash_fields.contains(&t.text)
                    || env.lookup(&t.text).is_some_and(|tt| tt.container))
        })
}

/// Is the token range already routed through a deterministic order
/// (sort call or BTree collection)?
fn is_sanitized(ctx: &FileCtx<'_>, range: (usize, usize)) -> bool {
    ctx.toks[range.0..range.1.min(ctx.toks.len())]
        .iter()
        .any(|t| {
            t.ident
                && (SORTS.contains(&t.text.as_str())
                    || t.text == "BTreeMap"
                    || t.text == "BTreeSet")
        })
}

/// Does the token range contain an iteration-method call?
fn has_iter_method(ctx: &FileCtx<'_>, range: (usize, usize)) -> bool {
    let end = range.1.min(ctx.toks.len());
    (range.0..end).any(|i| super::is_method_call(ctx.toks, i, ITER_METHODS))
}

/// Is the expression's value in unordered (hash-iteration) order?
fn expr_unordered(ctx: &FileCtx<'_>, env: &Env, range: (usize, usize)) -> bool {
    if is_sanitized(ctx, range) {
        return false;
    }
    // a reference to an already-unordered binding propagates
    let end = range.1.min(ctx.toks.len());
    let via_binding = ctx.toks[range.0..end]
        .iter()
        .any(|t| t.ident && env.lookup(&t.text).is_some_and(|tt| tt.unordered));
    if via_binding {
        return true;
    }
    mentions_hash_source(ctx, env, range) && has_iter_method(ctx, range)
}

/// For-loop iterables additionally taint when the iterable *is* a hash
/// container referenced bare (`for x in &map`), with no call at all.
fn iterable_unordered(ctx: &FileCtx<'_>, env: &Env, range: (usize, usize)) -> bool {
    if expr_unordered(ctx, env, range) {
        return true;
    }
    if is_sanitized(ctx, range) {
        return false;
    }
    let end = range.1.min(ctx.toks.len());
    let has_call = ctx.toks[range.0..end].iter().any(|t| t.text == "(");
    !has_call && mentions_hash_source(ctx, env, range)
}

/// Find the first order-sensitive sink call in a statement head.
fn find_sink(ctx: &FileCtx<'_>, range: (usize, usize)) -> Option<usize> {
    let end = range.1.min(ctx.toks.len());
    (range.0..end).find(|&i| super::is_call(ctx.toks, i, SINKS))
}

/// Does the statement head reference any unordered-tainted binding?
fn references_unordered(ctx: &FileCtx<'_>, env: &Env, range: (usize, usize)) -> bool {
    let end = range.1.min(ctx.toks.len());
    ctx.toks[range.0..end]
        .iter()
        .any(|t| t.ident && env.lookup(&t.text).is_some_and(|tt| tt.unordered))
}

fn walk(ctx: &FileCtx<'_>, f: &FnDef, block: &Block, env: &mut Env, out: &mut Vec<Candidate>) {
    for stmt in &block.stmts {
        check_stmt(ctx, f, stmt, env, out);
    }
}

fn check_stmt(ctx: &FileCtx<'_>, f: &FnDef, stmt: &Stmt, env: &mut Env, out: &mut Vec<Candidate>) {
    // 1. sink check on the statement head, before new bindings apply
    if let Some(sink) = find_sink(ctx, stmt.head) {
        let flows = references_unordered(ctx, env, stmt.head)
            || (mentions_hash_source(ctx, env, stmt.head)
                && has_iter_method(ctx, stmt.head)
                && !is_sanitized(ctx, stmt.head));
        if flows {
            let t = &ctx.toks[sink];
            out.push(Candidate {
                line: t.line,
                col: t.col,
                code: "OCT-LINT-006",
                message: format!(
                    "value from unordered HashMap/HashSet iteration flows into the \
                     order-sensitive sink `.{}()`: iteration order is seeded per \
                     process and breaks byte-identical replay; iterate a BTree \
                     collection or sort first",
                    t.text
                ),
            });
        }
    }

    // 2. sanitizer: `binding.sort*()` heals the binding
    {
        let end = stmt.head.1.min(ctx.toks.len());
        for i in stmt.head.0..end {
            if super::is_method_call(ctx.toks, i, SORTS) && i >= 2 && ctx.toks[i - 2].ident {
                let receiver = ctx.toks[i - 2].text.clone();
                env.sanitize(&receiver);
            }
        }
    }

    // 3. binding effects + sub-block scoping
    match &stmt.kind {
        StmtKind::Let { bindings, ty, init } => {
            let container = ty.map(|r| crate_mentions_hash(ctx, r)).unwrap_or(false)
                || init.map(|r| constructs_hash(ctx, r)).unwrap_or(false);
            let unordered = init.map(|r| expr_unordered(ctx, env, r)).unwrap_or(false);
            // sub-blocks (closure bodies etc.) see the pre-binding env
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                walk(ctx, f, b, env, out);
                env.scopes.pop();
            }
            for name in bindings {
                env.bind(
                    name,
                    Taint {
                        container,
                        unordered,
                    },
                );
            }
        }
        StmtKind::For { bindings, iter } => {
            let tainted = iterable_unordered(ctx, env, *iter);
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                for name in bindings {
                    env.bind(
                        name,
                        Taint {
                            container: false,
                            unordered: tainted,
                        },
                    );
                }
                walk(ctx, f, b, env, out);
                env.scopes.pop();
            }
        }
        StmtKind::CondLet { bindings, expr } => {
            let tainted = expr_unordered(ctx, env, *expr);
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                for name in bindings {
                    env.bind(
                        name,
                        Taint {
                            container: false,
                            unordered: tainted,
                        },
                    );
                }
                walk(ctx, f, b, env, out);
                env.scopes.pop();
            }
        }
        StmtKind::Expr => {
            for b in &stmt.blocks {
                env.scopes.push(BTreeMap::new());
                walk(ctx, f, b, env, out);
                env.scopes.pop();
            }
        }
    }
}

/// Type-annotation mention of a hash container.
fn crate_mentions_hash(ctx: &FileCtx<'_>, range: (usize, usize)) -> bool {
    ctx.toks[range.0..range.1.min(ctx.toks.len())]
        .iter()
        .any(|t| t.text == "HashMap" || t.text == "HashSet")
}

/// Initializer that *constructs* a hash container (`HashMap::new()`,
/// `HashSet::with_capacity(..)`, turbofish collects).
fn constructs_hash(ctx: &FileCtx<'_>, range: (usize, usize)) -> bool {
    crate_mentions_hash(ctx, range)
}
