//! Rule families. Every family consumes the shared lex+parse product
//! of a file ([`FileCtx`]) and emits [`Candidate`] violations; the
//! engine in `lib.rs` applies suppression filtering and rendering.

pub(crate) mod barrier;
pub(crate) mod dataflow;
pub(crate) mod float_merge;
pub(crate) mod guards;
pub(crate) mod token_rules;

use crate::lexer::Tok;
use crate::parser::ParsedFile;

/// Source prefixes where the engine-state rules (006/005) apply: the
/// deterministic engine crates whose state feeds replayed results.
pub(crate) const ENGINE_SRC: &[&str] = &[
    "crates/sim/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/id/src/",
    "crates/metrics/src/",
    "crates/spec/src/",
];

/// `OCT-LINT-002` exemptions: the bench harness times real wall-clock,
/// and `crates/transport` is the sanctioned home for real time — its
/// UDP host keys the timer wheel off `Instant` by design, *outside* the
/// deterministic engine boundary. (`octolint`'s own `--timing` helper
/// is *not* exempt — it carries a justified allow, dogfooding the
/// suppression audit.)
pub(crate) const WALL_CLOCK_EXEMPT: &[&str] = &["crates/bench/", "crates/transport/"];

/// `OCT-LINT-003` exemption: `crates/transport` is the sanctioned home
/// for deployment-facing entropy. Note the crate *still* derives every
/// RNG from the master seed (`derive_rng`/`split_seed`) — the exemption
/// records that ambient entropy would be *architecturally acceptable*
/// there (it sits outside the replayed engine), not that it is used.
/// Engine crates keep the rule unconditionally.
pub(crate) const AMBIENT_RNG_EXEMPT: &[&str] = &["crates/transport/"];

/// `OCT-LINT-004` exemptions: the three sanctioned fan-out sizing
/// sites (trial fan-out, CLI parsing, and the shard worker pool —
/// whose width is a pure speed knob, never an input to results).
pub(crate) const THREAD_IDENTITY_EXEMPT: &[&str] = &[
    "crates/core/src/trial.rs",
    "crates/bench/src/lib.rs",
    "crates/net/src/pool.rs",
];

/// `OCT-LINT-005` exemptions: the single-threaded driver modules that
/// legitimately take the adversary write lock between windows, and the
/// module defining the lock itself.
pub(crate) const SHARD_WRITE_EXEMPT: &[&str] =
    &["crates/core/src/simnet.rs", "crates/core/src/adversary.rs"];

/// `OCT-LINT-008` scope: the two modules where lock guards and the
/// barrier protocol live. The guard-discipline rule is deliberately
/// narrow — it encodes the PR-8 poisoned-mutex post-mortem, not a
/// general lock lint.
pub(crate) const GUARD_SCOPE: &[&str] = &["crates/net/src/pool.rs", "crates/net/src/world.rs"];

/// `OCT-LINT-009` protected callees: shard batch execution. A panic
/// escaping one of these without `catch_unwind` coverage skips the
/// barrier merge and deadlocks or poisons the window.
pub(crate) const BARRIER_PROTECTED: &[&str] = &["run_batch"];

pub(crate) fn has_prefix(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

pub(crate) fn engine_src(path: &str) -> bool {
    has_prefix(path, ENGINE_SRC)
}

/// The shared per-file analysis product handed to every rule family.
pub(crate) struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub(crate) rel: &'a str,
    /// Stripped token stream (comments/strings/attrs/uses removed).
    pub(crate) toks: &'a [Tok],
    /// Statement tree.
    pub(crate) parsed: &'a ParsedFile,
}

/// Candidate violation before suppression filtering.
pub(crate) struct Candidate {
    pub(crate) line: u32,
    pub(crate) col: u32,
    pub(crate) code: &'static str,
    pub(crate) message: String,
}

/// Does `tokens[i..]` spell out `pat` (each entry one token)?
pub(crate) fn seq(tokens: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.len() <= tokens.len().saturating_sub(i)
        && pat.iter().zip(&tokens[i..]).all(|(p, t)| t.text == *p)
}

/// Is token `i` a method call `.name(` for any `name` in `names`?
pub(crate) fn is_method_call(toks: &[Tok], i: usize, names: &[&str]) -> bool {
    toks[i].ident
        && names.contains(&toks[i].text.as_str())
        && i > 0
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
}

/// Is token `i` a call `name(` / `.name(` for any `name` in `names`?
pub(crate) fn is_call(toks: &[Tok], i: usize, names: &[&str]) -> bool {
    toks[i].ident
        && names.contains(&toks[i].text.as_str())
        && toks.get(i + 1).is_some_and(|t| t.text == "(")
        && !(i > 0 && toks[i - 1].text == "fn")
}
