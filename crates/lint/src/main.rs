//! `octolint` CLI — run the determinism-contract pass over the tree.
//!
//!     cargo run -p octopus-lint -- [--root <dir>] [--quiet] [--list-rules]
//!                                  [--format text|json] [--timing]
//!
//! Exit codes are script-friendly (the CI gate relies on them):
//! 0 clean, 1 violations found, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: octolint [--root <dir>] [--quiet] [--list-rules] [--format text|json] [--timing]
  --root <dir>    workspace root to scan (default: current directory)
  --quiet         print only the diagnostics, no banner or summary
  --list-rules    print the rule table and exit
  --format <fmt>  output format: text (default) or json (stable schema,
                  includes audited suppressions)
  --timing        print per-phase wall time of the analyzer itself";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut timing = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--timing" => timing = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("octolint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                other => {
                    eprintln!(
                        "octolint: --format needs `text` or `json`, got {:?}\n{USAGE}",
                        other.unwrap_or("<none>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in octopus_lint::RULES {
                    let tag = if rule.retired { " (retired)" } else { "" };
                    println!("{} [{}]{tag}\n    {}", rule.code, rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("octolint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match octopus_lint::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("octolint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if !quiet {
            println!(
                "octolint: {} violation(s), {} suppressed, {} file(s) scanned",
                report.diagnostics.len(),
                report.suppressed,
                report.files_scanned
            );
        }
    }
    if timing {
        for (phase, d) in &report.timings.phases {
            eprintln!(
                "octolint: timing {phase:<28} {:>9.3} ms",
                d.as_secs_f64() * 1e3
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
