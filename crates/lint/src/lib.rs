//! `octolint` — the determinism-contract static-analysis pass.
//!
//! The engine's headline property is byte-identical replay across
//! shards × {seq, par} × scheduler backends. The equivalence-matrix
//! tests enforce that *dynamically*, which means a nondeterminism
//! source can hide until a workload happens to exercise it. This crate
//! enforces the contract *statically*: it walks the workspace sources
//! and flags the constructs that historically break replay, as named
//! rules with stable diagnostic codes (the VEF stable-signature style):
//!
//! | code | rule | contract clause |
//! |---|---|---|
//! | `OCT-LINT-001` | `nondet-iteration` | **retired** — superseded by the precise dataflow rule `OCT-LINT-006`; the blanket `HashMap`/`HashSet` type ban forced allows for keyed-access-only maps |
//! | `OCT-LINT-002` | `wall-clock` | no `Instant::now`/`SystemTime`/`UNIX_EPOCH` outside `crates/bench` — simulated time comes from the event queue |
//! | `OCT-LINT-003` | `ambient-rng` | no `thread_rng`/`from_entropy`/`OsRng` anywhere — every stream derives from the master seed via `derive_rng`/`split_seed` |
//! | `OCT-LINT-004` | `thread-identity` | no `thread::current()`/`ThreadId`/`available_parallelism` outside `TrialRunner`/`RunArgs`/pool sizing — results must not depend on which or how many threads ran |
//! | `OCT-LINT-005` | `shard-unsafe-write` | no `.write()`/`.update()` on the sharded adversary directory outside driver modules — shard threads may only read their replica |
//! | `OCT-LINT-006` | `unordered-flow` | no binding produced by `HashMap`/`HashSet` iteration may flow into an order-sensitive sink (push/insert/entry/extend/append/fold/hash/emit) without an intervening sort — keyed access is fine |
//! | `OCT-LINT-007` | `float-merge` | no f32/f64 `+=`/`sum()`/`fold` inside merge paths (`impl Merge`, `absorb`, `*merge*` fns) — float addition is not associative, so merge order changes results |
//! | `OCT-LINT-008` | `guard-discipline` | in the barrier modules (`net/pool.rs`, `net/world.rs`): no second lock and no potential panic while a lock guard is live — the PR-8 poisoned-mutex cascade as a lint |
//! | `OCT-LINT-009` | `barrier-panic-path` | shard batch execution (`run_batch`) must be reachable only through `catch_unwind`-covered call paths, checked by an intra-crate call-graph walk |
//!
//! Plus the meta-rule `OCT-LINT-000` (`analyzer-integrity`): a
//! suppression that lacks a justification, names an unknown or retired
//! rule, or never fires is itself a violation — and so is a file the
//! analyzer cannot parse (a parse failure is a lint error, never a
//! silent skip).
//!
//! Suppressions are explicit and auditable, one per offending line:
//!
//! ```text
//! *self.sent.entry(node).or_default() += bytes; // octolint: allow(OCT-LINT-006) -- commutative u64 merge
//! ```
//!
//! The analyzer is deliberately dependency-free (no `syn`; the vendor
//! tree is offline). Since v2 it is no longer a token grep: one shared
//! lex+parse pass per file (`lexer`, `parser`) produces a
//! per-function statement tree with scope-tracked bindings, and the
//! rule families (`rules`) consume that shared product — taint-style
//! dataflow for 006/007, guard liveness for 008, and an intra-crate
//! call-graph fixpoint for 009.
//!
//! Diagnostics are path-sorted and line-sorted, so the tool's own
//! output is replay-stable. Exit codes are script-friendly: 0 clean,
//! 1 violations, 2 usage/IO error. `--format json` renders the same
//! diagnostics (including audited suppressions) as a stable
//! machine-readable schema; `--timing` prints per-rule wall time.

#![forbid(unsafe_code)]

mod lexer;
mod parser;
mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use lexer::{Lexed, Suppression};
use rules::{Candidate, FileCtx};

/// One enforced rule of the determinism contract.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable diagnostic code (`OCT-LINT-XXX`).
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line contract clause, shown by `--list-rules`.
    pub summary: &'static str,
    /// Retired rules stay in the table (codes are never reused) but no
    /// longer fire; suppressions naming them are audit violations.
    pub retired: bool,
}

/// The rule table (the meta-rule `OCT-LINT-000` first, then 001..009).
pub const RULES: &[Rule] = &[
    Rule {
        code: "OCT-LINT-000",
        name: "analyzer-integrity",
        summary: "suppressions must carry a justification, name a known live rule, and \
                  actually fire; files must parse (a parse failure is a violation, \
                  never a silent skip)",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-001",
        name: "nondet-iteration",
        summary: "RETIRED (superseded by OCT-LINT-006): the blanket HashMap/HashSet type \
                  ban flagged keyed-access-only maps; the dataflow rule flags the actual \
                  hazard — unordered iteration reaching order-sensitive sinks",
        retired: true,
    },
    Rule {
        code: "OCT-LINT-002",
        name: "wall-clock",
        summary: "no Instant::now/SystemTime/UNIX_EPOCH outside crates/bench: \
                  simulated time comes from the event queue",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-003",
        name: "ambient-rng",
        summary: "no thread_rng/from_entropy/OsRng: derive every stream from the \
                  master seed (derive_rng/split_seed)",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-004",
        name: "thread-identity",
        summary: "no thread::current()/ThreadId/available_parallelism outside \
                  TrialRunner/RunArgs/pool sizing: results must not depend on \
                  thread count or identity",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-005",
        name: "shard-unsafe-write",
        summary: "no .write()/.update() on the sharded adversary directory outside \
                  driver modules: shard threads may only read their replica",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-006",
        name: "unordered-flow",
        summary: "no HashMap/HashSet iteration flowing into order-sensitive sinks \
                  (push/insert/entry/extend/append/fold/hash/emit) without a sort: \
                  iteration order is seeded per process; keyed access is fine",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-007",
        name: "float-merge",
        summary: "no f32/f64 +=/sum()/fold in merge paths (impl Merge / absorb / *merge*): \
                  float addition is not associative, so merge order changes results",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-008",
        name: "guard-discipline",
        summary: "in net/pool.rs and net/world.rs: no second lock and no potential panic \
                  (panic!/unwrap/expect/resume_unwind) while a lock guard is live",
        retired: false,
    },
    Rule {
        code: "OCT-LINT-009",
        name: "barrier-panic-path",
        summary: "shard batch execution (run_batch) must be reachable only through \
                  catch_unwind-covered call paths (intra-crate call-graph walk)",
        retired: false,
    },
];

fn rule_by_code(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// One diagnostic, anchored to a file/line/column.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated on every platform.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the triggering token.
    pub col: u32,
    /// Stable rule code.
    pub code: &'static str,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path, self.line, self.col, self.code, self.rule, self.message
        )
    }
}

/// Wall-clock cost of each analysis phase, keyed by a stable phase
/// name. Collected unconditionally (the cost is nanoseconds); printed
/// by `--timing`.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    /// Phase name → accumulated duration across all files.
    pub phases: BTreeMap<&'static str, Duration>,
}

impl Timings {
    fn add(&mut self, phase: &'static str, d: Duration) {
        *self.phases.entry(phase).or_default() += d;
    }
}

/// Result of linting one file or a whole tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Violations, sorted by (path, line, col, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics silenced by a justified suppression — retained so
    /// `--format json` can expose the audited allow inventory.
    pub audited: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Diagnostics silenced by a justified suppression (== `audited.len()`).
    pub suppressed: usize,
    /// Per-phase wall time.
    pub timings: Timings,
}

impl Report {
    /// True when no violation survived.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the report as the stable machine-readable JSON schema:
    /// top-level `schema`/`files_scanned`/`violations`/`suppressed`
    /// counters plus a `diagnostics` array of
    /// `{path, line, col, code, rule, message, suppressed}` objects,
    /// sorted by (path, line, col, code) with audited (suppressed)
    /// entries merged in. Timings are deliberately excluded so the CI
    /// artifact diffs cleanly across runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut entries: Vec<(&Diagnostic, bool)> = self
            .diagnostics
            .iter()
            .map(|d| (d, false))
            .chain(self.audited.iter().map(|d| (d, true)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(&b.1)));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"violations\": {},\n", self.diagnostics.len()));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"diagnostics\": [");
        for (i, (d, suppressed)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"code\": \"{}\", \
                 \"rule\": \"{}\", \"message\": \"{}\", \"suppressed\": {}}}",
                esc(&d.path),
                d.line,
                d.col,
                d.code,
                d.rule,
                esc(&d.message),
                suppressed
            ));
        }
        if !entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// The one sanctioned wall-clock read in this crate: `--timing`
/// measures the analyzer's own rule cost, which never feeds engine
/// state. Dogfoods the suppression audit — remove the allow and
/// octolint flags itself.
#[allow(clippy::disallowed_methods)]
fn tick() -> std::time::Instant {
    std::time::Instant::now() // octolint: allow(OCT-LINT-002) -- measures octolint's own --timing rule cost; never engine state
}

// ---------------------------------------------------------------------------
// Single-pass engine
// ---------------------------------------------------------------------------

/// The shared per-file analysis product: lexed once, parsed once, then
/// handed to every rule family.
struct FileAnalysis {
    rel: String,
    lexed: Lexed,
    parsed: parser::ParsedFile,
}

fn analyze(rel: &str, source: &str, timings: &mut Timings) -> FileAnalysis {
    let t0 = tick();
    let lexed = lexer::lex(source);
    timings.add("lex", t0.elapsed());
    let t1 = tick();
    let parsed = parser::parse(&lexed.tokens);
    timings.add("parse", t1.elapsed());
    FileAnalysis {
        rel: rel.to_string(),
        lexed,
        parsed,
    }
}

/// Per-file rule families (002–008) plus parse-integrity candidates.
/// 009 is cross-file and runs per crate group.
fn file_candidates(fa: &FileAnalysis, timings: &mut Timings) -> Vec<Candidate> {
    let ctx = FileCtx {
        rel: &fa.rel,
        toks: &fa.lexed.tokens,
        parsed: &fa.parsed,
    };
    let mut out = Vec::new();
    for (line, col, msg) in &fa.parsed.errors {
        out.push(Candidate {
            line: *line,
            col: *col,
            code: "OCT-LINT-000",
            message: format!(
                "octolint could not parse this file ({msg}): a parse failure is a lint \
                 error, never a silent skip — simplify the construct or extend the parser"
            ),
        });
    }
    let t = tick();
    rules::token_rules::check(&ctx, &mut out);
    timings.add("rules/002-005 tokens", t.elapsed());
    let t = tick();
    rules::dataflow::check(&ctx, &mut out);
    timings.add("rules/006 unordered-flow", t.elapsed());
    let t = tick();
    rules::float_merge::check(&ctx, &mut out);
    timings.add("rules/007 float-merge", t.elapsed());
    let t = tick();
    rules::guards::check(&ctx, &mut out);
    timings.add("rules/008 guard-discipline", t.elapsed());
    out
}

/// Suppression filtering: match candidates to same-line allows, audit
/// the allows themselves, dedup per (line, code), sort.
fn finalize(
    rel: &str,
    suppressions: &[Suppression],
    mut candidates: Vec<Candidate>,
    timings: &mut Timings,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let t = tick();
    // one diagnostic per (line, rule): `map.keys()...fold(..)` on one
    // line is one hazard, not two
    candidates.sort_by_key(|c| (c.line, c.code, c.col));
    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    candidates.retain(|c| seen.insert((c.line, c.code)));

    let by_line: BTreeMap<u32, usize> = suppressions
        .iter()
        .enumerate()
        .map(|(idx, s)| (s.line, idx))
        .collect();
    let mut used = vec![false; suppressions.len()];
    let mut diagnostics = Vec::new();
    let mut audited = Vec::new();

    for c in candidates {
        let covering = by_line
            .get(&c.line)
            .copied()
            .filter(|&idx| suppressions[idx].codes.iter().any(|code| code == c.code));
        match covering {
            Some(idx) => {
                used[idx] = true;
                let rule = rule_by_code(c.code).expect("candidate codes come from RULES");
                if suppressions[idx].justified {
                    audited.push(Diagnostic {
                        path: rel.to_string(),
                        line: c.line,
                        col: c.col,
                        code: c.code,
                        rule: rule.name,
                        message: c.message,
                    });
                } else {
                    diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: c.line,
                        col: c.col,
                        code: "OCT-LINT-000",
                        rule: "analyzer-integrity",
                        message: format!(
                            "suppression of {} lacks a justification: write \
                             `octolint: allow({}) -- <why this site is safe>`",
                            c.code, c.code
                        ),
                    });
                }
            }
            None => {
                let rule = rule_by_code(c.code).expect("candidate codes come from RULES");
                diagnostics.push(Diagnostic {
                    path: rel.to_string(),
                    line: c.line,
                    col: c.col,
                    code: c.code,
                    rule: rule.name,
                    message: c.message,
                });
            }
        }
    }

    // audit the suppressions themselves
    for (idx, s) in suppressions.iter().enumerate() {
        let mut names_ok = true;
        for code in &s.codes {
            match rule_by_code(code) {
                None => {
                    names_ok = false;
                    diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: s.line,
                        col: s.col,
                        code: "OCT-LINT-000",
                        rule: "analyzer-integrity",
                        message: format!("suppression names unknown rule `{code}`"),
                    });
                }
                Some(rule) if rule.retired => {
                    names_ok = false;
                    diagnostics.push(Diagnostic {
                        path: rel.to_string(),
                        line: s.line,
                        col: s.col,
                        code: "OCT-LINT-000",
                        rule: "analyzer-integrity",
                        message: format!(
                            "suppression names retired rule `{code}`: {} — migrate or \
                             remove the allow",
                            rule.summary
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        if !used[idx] && names_ok {
            diagnostics.push(Diagnostic {
                path: rel.to_string(),
                line: s.line,
                col: s.col,
                code: "OCT-LINT-000",
                rule: "analyzer-integrity",
                message: format!(
                    "suppression of {} never fires on this line: remove it or move it \
                     to the offending line",
                    s.codes.join(", ")
                ),
            });
        }
    }

    diagnostics.sort();
    audited.sort();
    timings.add("suppression-audit", t.elapsed());
    (diagnostics, audited)
}

/// Lint one file's source under its workspace-relative path.
///
/// The file is treated as its own crate for the cross-file rule
/// `OCT-LINT-009` (intra-file call graph), which is exactly right for
/// fixtures and single-file checks.
///
/// Suppression semantics: a justified `// octolint: allow(CODE) -- why`
/// on the offending line silences that rule there; an unjustified,
/// unknown-rule, retired-rule, or never-firing suppression is reported
/// as `OCT-LINT-000`.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Report {
    let mut timings = Timings::default();
    let fa = analyze(rel_path, source, &mut timings);
    let mut candidates = file_candidates(&fa, &mut timings);
    let t = tick();
    let ctx = FileCtx {
        rel: &fa.rel,
        toks: &fa.lexed.tokens,
        parsed: &fa.parsed,
    };
    for (_, c) in rules::barrier::check_crate(std::slice::from_ref(&ctx)) {
        candidates.push(c);
    }
    timings.add("rules/009 barrier-panic-path", t.elapsed());
    let (diagnostics, audited) =
        finalize(rel_path, &fa.lexed.suppressions, candidates, &mut timings);
    Report {
        suppressed: audited.len(),
        diagnostics,
        audited,
        files_scanned: 1,
        timings,
    }
}

/// Debug view of the statement tree (the parser-torture contract):
/// `fn name [pub] [impl:Trait]` lines followed by indented
/// `let/for/cond-let/expr` statement lines, then any parse errors.
#[must_use]
pub fn parse_debug(source: &str) -> String {
    let lexed = lexer::lex(source);
    let parsed = parser::parse(&lexed.tokens);
    parser::debug_tree(&parsed)
}

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

/// Collect the workspace-relative `.rs` paths `octolint` scans, sorted:
/// `crates/*/{src,tests,benches,examples}`, plus the root package's
/// `src/`, `tests/`, `examples/` and `benches/`. `vendor/` (offline
/// shims of external crates) and any directory named `fixtures` (the
/// lint's own known-bad corpus) are excluded.
pub fn scan_paths(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots: Vec<PathBuf> = Vec::new();
    for sub in ["src", "tests", "examples", "benches"] {
        roots.push(root.join(sub));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                for sub in ["src", "tests", "examples", "benches"] {
                    roots.push(dir.join(sub));
                }
            }
        }
    }
    let mut files = Vec::new();
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    for f in &mut files {
        *f = f
            .strip_prefix(root)
            .map(Path::to_path_buf)
            .unwrap_or_else(|_| f.clone());
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Crate-group key for the cross-file rule: `crates/X/src/*` files
/// analyze together; everything else groups by its top-level dir.
fn crate_group(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.strip_prefix("src/").map(|_| format!("crates/{name}"))
}

/// Lint the whole workspace rooted at `root`.
///
/// Every file is lexed and parsed exactly once; the per-file rule
/// families consume the shared product, then `OCT-LINT-009` runs once
/// per crate group over the retained analyses.
///
/// # Errors
/// Propagates IO errors from walking or reading sources (the CLI maps
/// those to exit code 2).
pub fn lint_tree(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    let mut candidates: Vec<Vec<Candidate>> = Vec::new();
    for rel in scan_paths(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let fa = analyze(&rel_str, &source, &mut report.timings);
        let cands = file_candidates(&fa, &mut report.timings);
        analyses.push(fa);
        candidates.push(cands);
        report.files_scanned += 1;
    }

    // cross-file: OCT-LINT-009 per crate group
    let t = tick();
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, fa) in analyses.iter().enumerate() {
        if let Some(key) = crate_group(&fa.rel) {
            groups.entry(key).or_default().push(idx);
        }
    }
    for members in groups.values() {
        let ctxs: Vec<FileCtx<'_>> = members
            .iter()
            .map(|&i| FileCtx {
                rel: &analyses[i].rel,
                toks: &analyses[i].lexed.tokens,
                parsed: &analyses[i].parsed,
            })
            .collect();
        for (local_idx, c) in rules::barrier::check_crate(&ctxs) {
            candidates[members[local_idx]].push(c);
        }
    }
    report
        .timings
        .add("rules/009 barrier-panic-path", t.elapsed());

    for (fa, cands) in analyses.iter().zip(candidates) {
        let (diagnostics, audited) =
            finalize(&fa.rel, &fa.lexed.suppressions, cands, &mut report.timings);
        report.diagnostics.extend(diagnostics);
        report.suppressed += audited.len();
        report.audited.extend(audited);
    }
    report.diagnostics.sort();
    report.audited.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_strings_attrs_and_uses() {
        let src = r##"
            use std::collections::HashMap; // import alone is exempt
            // HashMap in a comment
            /* Instant::now in a /* nested */ block comment */
            #[doc = "SystemTime in an attribute string"]
            fn f() {
                let s = "thread_rng inside a string";
                let r = r#"OsRng inside a raw string"#;
                let c = 'x';
                let map: std::collections::BTreeMap<u8, u8> = Default::default();
                let _ = (s, r, c, map);
            }
        "##;
        let rep = lint_source("crates/sim/src/fake.rs", src);
        assert!(rep.is_clean(), "false positives: {:?}", rep.diagnostics);
    }

    #[test]
    fn lifetimes_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = '\\''; let _ = c; x }\n\
                   fn g(out: &mut Vec<u8>) {\n\
                       let m = std::collections::HashMap::<u8, u8>::new();\n\
                       for k in m.keys() { out.push(*k); }\n\
                   }\n";
        let rep = lint_source("crates/net/src/fake.rs", src);
        assert_eq!(rep.diagnostics.len(), 1, "{:#?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-006");
        assert_eq!(rep.diagnostics[0].line, 4);
    }

    #[test]
    fn engine_scope_is_path_based() {
        let src = "fn f(out: &mut Vec<u8>) {\n\
                       let m = std::collections::HashMap::<u8, u8>::new();\n\
                       for k in m.keys() { out.push(*k); }\n\
                   }\n";
        assert!(!lint_source("crates/sim/src/x.rs", src).is_clean());
        assert!(lint_source("crates/crypto/src/x.rs", src).is_clean());
        assert!(lint_source("crates/sim/tests/x.rs", src).is_clean());
    }

    #[test]
    fn keyed_access_no_longer_needs_an_allow() {
        // the exact shape the retired OCT-LINT-001 forced allows for
        let src = "fn f(m: &std::collections::HashMap<u32, u32>, k: u32) -> Option<u32> {\n\
                       m.get(&k).copied()\n\
                   }\n";
        let rep = lint_source("crates/net/src/x.rs", src);
        assert!(rep.is_clean(), "{:#?}", rep.diagnostics);
    }

    #[test]
    fn suppression_must_be_justified_and_fire() {
        let ok = "fn f(out: &mut Vec<u8>) {\n\
                      let m = std::collections::HashMap::<u8, u8>::new();\n\
                      for k in m.keys() { out.push(*k); } // octolint: allow(OCT-LINT-006) -- demo\n\
                  }\n";
        let rep = lint_source("crates/sim/src/x.rs", ok);
        assert!(rep.is_clean(), "{:#?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 1);
        assert_eq!(rep.audited.len(), 1);
        assert_eq!(rep.audited[0].code, "OCT-LINT-006");

        let bare = "fn f(out: &mut Vec<u8>) {\n\
                        let m = std::collections::HashMap::<u8, u8>::new();\n\
                        for k in m.keys() { out.push(*k); } // octolint: allow(OCT-LINT-006)\n\
                    }\n";
        let rep = lint_source("crates/sim/src/x.rs", bare);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-000");

        let unused = "fn f() {} // octolint: allow(OCT-LINT-006) -- nothing here";
        let rep = lint_source("crates/sim/src/x.rs", unused);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-000");
    }

    #[test]
    fn retired_rule_allows_are_flagged() {
        let src = "fn f() {} // octolint: allow(OCT-LINT-001) -- legacy keyed-access allow";
        let rep = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(rep.diagnostics.len(), 1, "{:#?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-000");
        assert!(
            rep.diagnostics[0].message.contains("retired"),
            "{}",
            rep.diagnostics[0].message
        );
    }

    #[test]
    fn parse_failure_is_a_violation_not_a_skip() {
        let src = "fn f() { let x = 1;\n"; // unbalanced brace
        let rep = lint_source("crates/sim/src/x.rs", src);
        assert!(
            rep.diagnostics.iter().any(|d| d.code == "OCT-LINT-000"),
            "{:#?}",
            rep.diagnostics
        );
    }

    #[test]
    fn json_schema_is_stable_and_escaped() {
        let src = "fn f(out: &mut Vec<u8>) {\n\
                       let m = std::collections::HashMap::<u8, u8>::new();\n\
                       for k in m.keys() { out.push(*k); }\n\
                   }\n";
        let rep = lint_source("crates/sim/src/json \"quote\".rs", src);
        let json = rep.to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"code\": \"OCT-LINT-006\""));
        assert!(json.contains("json \\\"quote\\\".rs"));
        assert!(json.contains("\"suppressed\": false"));
    }

    #[test]
    fn timings_cover_every_rule_family() {
        let rep = lint_source("crates/sim/src/x.rs", "fn f() {}\n");
        for phase in [
            "lex",
            "parse",
            "rules/002-005 tokens",
            "rules/006 unordered-flow",
            "rules/007 float-merge",
            "rules/008 guard-discipline",
            "rules/009 barrier-panic-path",
            "suppression-audit",
        ] {
            assert!(
                rep.timings.phases.contains_key(phase),
                "missing phase {phase}: {:?}",
                rep.timings.phases.keys().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        assert_eq!(
            codes,
            [
                "OCT-LINT-000",
                "OCT-LINT-001",
                "OCT-LINT-002",
                "OCT-LINT-003",
                "OCT-LINT-004",
                "OCT-LINT-005",
                "OCT-LINT-006",
                "OCT-LINT-007",
                "OCT-LINT-008",
                "OCT-LINT-009",
            ]
        );
        let retired: Vec<&str> = RULES.iter().filter(|r| r.retired).map(|r| r.code).collect();
        assert_eq!(retired, ["OCT-LINT-001"], "codes are never reused");
    }
}
