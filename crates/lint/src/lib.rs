//! `octolint` — the determinism-contract static-analysis pass.
//!
//! The engine's headline property is byte-identical replay across
//! shards × {seq, par} × scheduler backends. The equivalence-matrix
//! tests enforce that *dynamically*, which means a nondeterminism
//! source can hide until a workload happens to exercise it. This crate
//! enforces the contract *statically*: it walks the workspace sources
//! and flags the constructs that historically break replay, as named
//! rules with stable diagnostic codes (the VEF stable-signature style):
//!
//! | code | rule | contract clause |
//! |---|---|---|
//! | `OCT-LINT-001` | `nondet-iteration` | no `HashMap`/`HashSet` in engine crates (`sim`, `net`, `core`, `id`, `metrics`, `spec`) — iteration order is seeded per process; use `BTreeMap`/`BTreeSet` or justify a keyed-access-only exception |
//! | `OCT-LINT-002` | `wall-clock` | no `Instant::now`/`SystemTime`/`UNIX_EPOCH` outside `crates/bench` — simulated time comes from the event queue |
//! | `OCT-LINT-003` | `ambient-rng` | no `thread_rng`/`from_entropy`/`OsRng` anywhere — every stream derives from the master seed via `derive_rng`/`split_seed` |
//! | `OCT-LINT-004` | `thread-identity` | no `thread::current()`/`ThreadId`/`available_parallelism` outside `TrialRunner`/`RunArgs`/pool sizing — results must not depend on which or how many threads ran |
//! | `OCT-LINT-005` | `shard-unsafe-write` | no `.write()`/`.update()` on the sharded adversary directory outside driver modules — shard threads may only read their replica |
//!
//! Plus the meta-rule `OCT-LINT-000` (`suppression-audit`): a
//! suppression that lacks a justification, names an unknown rule, or
//! never fires is itself a violation, so the allow-list stays honest.
//!
//! Suppressions are explicit and auditable, one per offending line:
//!
//! ```text
//! index: HashMap<Addr, u32>, // octolint: allow(OCT-LINT-001) -- keyed access only, never iterated
//! ```
//!
//! The analyzer is deliberately dependency-free (no `syn`; the vendor
//! tree is offline): a hand-rolled lexer strips comments, string/char
//! literals and attributes, then token-pattern matching drives the
//! rules. Because it matches tokens, not types, `OCT-LINT-001` fires at
//! *type-use* sites (`HashMap::new()`, `HashMap<K, V>`) rather than
//! trying to type the receiver of a `for` loop — any `HashMap` present
//! in an engine crate is a hazard, which is a superset of the iteration
//! sites and exactly the posture we want. `use` declarations are
//! exempt: importing a name is harmless until it is used.
//!
//! Diagnostics are path-sorted and line-sorted, so the tool's own
//! output is replay-stable. Exit codes are script-friendly: 0 clean,
//! 1 violations, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One enforced rule of the determinism contract.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable diagnostic code (`OCT-LINT-XXX`).
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line contract clause, shown by `--list-rules`.
    pub summary: &'static str,
}

/// The rule table (the meta-rule `OCT-LINT-000` first, then 001..005).
pub const RULES: &[Rule] = &[
    Rule {
        code: "OCT-LINT-000",
        name: "suppression-audit",
        summary: "suppressions must carry a justification, name a known rule, and actually fire",
    },
    Rule {
        code: "OCT-LINT-001",
        name: "nondet-iteration",
        summary: "no HashMap/HashSet in engine crates (sim/net/core/id/metrics/spec): \
                  iteration order is per-process random; use BTreeMap/BTreeSet or justify",
    },
    Rule {
        code: "OCT-LINT-002",
        name: "wall-clock",
        summary: "no Instant::now/SystemTime/UNIX_EPOCH outside crates/bench: \
                  simulated time comes from the event queue",
    },
    Rule {
        code: "OCT-LINT-003",
        name: "ambient-rng",
        summary: "no thread_rng/from_entropy/OsRng: derive every stream from the \
                  master seed (derive_rng/split_seed)",
    },
    Rule {
        code: "OCT-LINT-004",
        name: "thread-identity",
        summary: "no thread::current()/ThreadId/available_parallelism outside \
                  TrialRunner/RunArgs/pool sizing: results must not depend on \
                  thread count or identity",
    },
    Rule {
        code: "OCT-LINT-005",
        name: "shard-unsafe-write",
        summary: "no .write()/.update() on the sharded adversary directory outside \
                  driver modules: shard threads may only read their replica",
    },
];

/// Source prefixes where `OCT-LINT-001`/`005` apply: the deterministic
/// engine crates whose state feeds replayed results.
const ENGINE_SRC: &[&str] = &[
    "crates/sim/src/",
    "crates/net/src/",
    "crates/core/src/",
    "crates/id/src/",
    "crates/metrics/src/",
    "crates/spec/src/",
];

/// `OCT-LINT-002` exemption: the bench harness times real wall-clock.
const WALL_CLOCK_EXEMPT: &[&str] = &["crates/bench/"];

/// `OCT-LINT-004` exemptions: the three sanctioned fan-out sizing
/// sites (trial fan-out, CLI parsing, and the shard worker pool —
/// whose width is a pure speed knob, never an input to results).
const THREAD_IDENTITY_EXEMPT: &[&str] = &[
    "crates/core/src/trial.rs",
    "crates/bench/src/lib.rs",
    "crates/net/src/pool.rs",
];

/// `OCT-LINT-005` exemptions: the single-threaded driver modules that
/// legitimately take the adversary write lock between windows, and the
/// module defining the lock itself.
const SHARD_WRITE_EXEMPT: &[&str] = &["crates/core/src/simnet.rs", "crates/core/src/adversary.rs"];

/// One diagnostic, anchored to a file/line/column.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated on every platform.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the triggering token.
    pub col: u32,
    /// Stable rule code.
    pub code: &'static str,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path, self.line, self.col, self.code, self.rule, self.message
        )
    }
}

/// Result of linting one file or a whole tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Violations, sorted by (path, line, col, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Diagnostics silenced by a justified suppression.
    pub suppressed: usize,
}

impl Report {
    /// True when no violation survived.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Tok {
    text: String,
    line: u32,
    col: u32,
    ident: bool,
}

#[derive(Clone, Debug)]
struct Suppression {
    codes: Vec<String>,
    justified: bool,
    line: u32,
    col: u32,
}

struct Lexed {
    tokens: Vec<Tok>,
    suppressions: Vec<Suppression>,
}

/// Strip comments/strings/chars, collect identifier and punctuation
/// tokens with positions, and harvest `octolint: allow(...)` directives
/// from line comments.
fn lex(source: &str) -> Lexed {
    let b: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();

    let n = b.len();
    macro_rules! bump {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // line comment (and suppression directive harvesting)
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if let Some(s) = parse_suppression(&text, line, col) {
                suppressions.push(s);
            }
            col += (i - start) as u32;
            continue;
        }
        // block comment, nested
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            bump!('/');
            bump!('*');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!('/');
                    bump!('*');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!('*');
                    bump!('/');
                    i += 2;
                } else {
                    bump!(b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // raw strings r"..." / r#"..."# (and br variants via the ident path)
        if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                // consume r##"  ...  "##
                while i <= j {
                    bump!(b[i]);
                    i += 1;
                }
                'raw: while i < n {
                    if b[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                if i < n {
                                    bump!(b[i]);
                                    i += 1;
                                }
                            }
                            break 'raw;
                        }
                    }
                    bump!(b[i]);
                    i += 1;
                }
                continue;
            }
            // plain identifier starting with r — fall through
        }
        // string literal (also reached after a b/br prefix ident)
        if c == '"' {
            bump!('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!(b[i]);
                    bump!(b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == '"';
                bump!(b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // char literal vs lifetime: 'x' / '\n' vs 'a in generics
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                bump!('\'');
                i += 1; // skip the quote; the label lexes as an ident
                continue;
            }
            bump!('\'');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!(b[i]);
                    bump!(b[i + 1]);
                    i += 2;
                    continue;
                }
                let done = b[i] == '\'';
                bump!(b[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // identifier / number
        if c.is_alphanumeric() || c == '_' {
            let (tl, tc) = (line, col);
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                bump!(b[i]);
                i += 1;
            }
            tokens.push(Tok {
                text: b[start..i].iter().collect(),
                line: tl,
                col: tc,
                ident: c.is_alphabetic() || c == '_',
            });
            continue;
        }
        // whitespace
        if c.is_whitespace() {
            bump!(c);
            i += 1;
            continue;
        }
        // single-char punctuation token
        tokens.push(Tok {
            text: c.to_string(),
            line,
            col,
            ident: false,
        });
        bump!(c);
        i += 1;
    }

    Lexed {
        tokens: strip_attrs_and_uses(tokens),
        suppressions,
    }
}

/// Parse `// octolint: allow(OCT-LINT-001[, ...]) -- justification`.
fn parse_suppression(comment: &str, line: u32, col: u32) -> Option<Suppression> {
    let rest = comment.trim_start_matches('/').trim_start();
    let rest = rest.strip_prefix("octolint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (codes_part, tail) = rest.split_once(')')?;
    let codes: Vec<String> = codes_part
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let justified = tail
        .trim_start()
        .strip_prefix("--")
        .is_some_and(|j| !j.trim().is_empty());
    Some(Suppression {
        codes,
        justified,
        line,
        col,
    })
}

/// Drop attribute contents (`#[...]` / `#![...]`) and `use` declaration
/// bodies from the token stream: neither constitutes a *use* of a
/// disallowed construct.
fn strip_attrs_and_uses(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    let mut in_use = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if in_use {
            if t.text == ";" {
                in_use = false;
            }
            i += 1;
            continue;
        }
        if t.text == "#" {
            let bracket = match tokens.get(i + 1) {
                Some(t1) if t1.text == "[" => Some(i + 1),
                Some(t1) if t1.text == "!" => match tokens.get(i + 2) {
                    Some(t2) if t2.text == "[" => Some(i + 2),
                    _ => None,
                },
                _ => None,
            };
            if let Some(open) = bracket {
                let mut depth = 0i32;
                let mut j = open;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        if t.ident && t.text == "use" {
            in_use = true;
            i += 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn has_prefix(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

fn rule_by_code(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// Does `tokens[i..]` spell out `pat` (each entry one token)?
fn seq(tokens: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.len() <= tokens.len() - i && pat.iter().zip(&tokens[i..]).all(|(p, t)| t.text == *p)
}

/// Candidate violation before suppression filtering.
struct Candidate {
    line: u32,
    col: u32,
    code: &'static str,
    message: String,
}

fn check_tokens(rel_path: &str, tokens: &[Tok]) -> Vec<Candidate> {
    let engine = has_prefix(rel_path, ENGINE_SRC);
    let mut out: Vec<Candidate> = Vec::new();
    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    let mut push = |line: u32, col: u32, code: &'static str, message: String| {
        // one diagnostic per (line, rule): `HashMap::new()` is one
        // hazard, not two
        if seen.insert((line, code)) {
            out.push(Candidate {
                line,
                col,
                code,
                message,
            });
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if !t.ident {
            continue;
        }
        match t.text.as_str() {
            // OCT-LINT-001 — nondeterministic iteration hazard
            "HashMap" | "HashSet" if engine => push(
                t.line,
                t.col,
                "OCT-LINT-001",
                format!(
                    "`{}` in an engine crate: iteration order is seeded per process and \
                     breaks byte-identical replay; use `BTree{}` or justify a \
                     keyed-access-only exception",
                    t.text,
                    if t.text == "HashMap" { "Map" } else { "Set" },
                ),
            ),
            // OCT-LINT-002 — wall-clock reads
            "Instant"
                if seq(tokens, i, &["Instant", ":", ":", "now"])
                    && !has_prefix(rel_path, WALL_CLOCK_EXEMPT) =>
            {
                push(
                    t.line,
                    t.col,
                    "OCT-LINT-002",
                    "`Instant::now` outside crates/bench: simulated time must come \
                     from the event queue (`ctx.now()` / `SimTime`)"
                        .to_string(),
                );
            }
            "SystemTime" | "UNIX_EPOCH" if !has_prefix(rel_path, WALL_CLOCK_EXEMPT) => {
                push(
                    t.line,
                    t.col,
                    "OCT-LINT-002",
                    format!(
                        "`{}` outside crates/bench: wall-clock reads make replay \
                         depend on when the run happened",
                        t.text
                    ),
                );
            }
            // OCT-LINT-003 — ambient randomness
            "thread_rng" | "from_entropy" | "OsRng" => push(
                t.line,
                t.col,
                "OCT-LINT-003",
                format!(
                    "`{}` draws ambient entropy: every RNG must derive from the master \
                     seed via `derive_rng`/`split_seed`",
                    t.text
                ),
            ),
            "rand" if seq(tokens, i, &["rand", ":", ":", "random"]) => push(
                t.line,
                t.col,
                "OCT-LINT-003",
                "`rand::random` draws from the ambient thread RNG: derive a seeded \
                 stream via `derive_rng`/`split_seed`"
                    .to_string(),
            ),
            // OCT-LINT-004 — thread-identity leakage
            "available_parallelism" | "ThreadId" if !THREAD_IDENTITY_EXEMPT.contains(&rel_path) => {
                push(
                    t.line,
                    t.col,
                    "OCT-LINT-004",
                    format!(
                        "`{}` outside TrialRunner/RunArgs: results must not depend \
                         on how many threads the host offers",
                        t.text
                    ),
                );
            }
            "thread"
                if seq(tokens, i, &["thread", ":", ":", "current"])
                    && !THREAD_IDENTITY_EXEMPT.contains(&rel_path) =>
            {
                push(
                    t.line,
                    t.col,
                    "OCT-LINT-004",
                    "`thread::current` leaks thread identity into engine state".to_string(),
                );
            }
            // OCT-LINT-005 — shard-unsafe shared mutation:
            // `<...adversary...>.write(` or `.update(` (the sharded
            // directory's all-replica merge is driver-only)
            "write" | "update"
                if engine
                    && !SHARD_WRITE_EXEMPT.contains(&rel_path)
                    && i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(") =>
            {
                // back-scan the expression for the adversary directory
                let from = i.saturating_sub(16);
                let stmt_start = tokens[from..i]
                    .iter()
                    .rposition(|t| matches!(t.text.as_str(), ";" | "{" | "}"))
                    .map_or(from, |p| from + p + 1);
                const ADVERSARY_IDENTS: &[&str] = &[
                    "adversary",
                    "SharedAdversary",
                    "ShardedAdversary",
                    "AdversaryHandle",
                ];
                if tokens[stmt_start..i]
                    .iter()
                    .any(|t| t.ident && ADVERSARY_IDENTS.contains(&t.text.as_str()))
                {
                    push(
                        t.line,
                        t.col,
                        "OCT-LINT-005",
                        format!(
                            "`.{}()` on the sharded adversary directory outside a driver \
                             module: shard threads may only read their replica; mutate \
                             between windows from the driver",
                            t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Suppression filtering
// ---------------------------------------------------------------------------

/// Lint one file's source under its workspace-relative path.
///
/// Suppression semantics: a justified `// octolint: allow(CODE) -- why`
/// on the offending line silences that rule there; an unjustified,
/// unknown-rule, or never-firing suppression is reported as
/// `OCT-LINT-000`.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Report {
    let Lexed {
        tokens,
        suppressions,
    } = lex(source);
    let candidates = check_tokens(rel_path, &tokens);

    // line -> suppression index, for matching candidates to allows
    let by_line: BTreeMap<u32, usize> = suppressions
        .iter()
        .enumerate()
        .map(|(idx, s)| (s.line, idx))
        .collect();
    let mut used = vec![false; suppressions.len()];
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;

    for c in candidates {
        let covering = by_line
            .get(&c.line)
            .copied()
            .filter(|&idx| suppressions[idx].codes.iter().any(|code| code == c.code));
        match covering {
            Some(idx) => {
                used[idx] = true;
                if suppressions[idx].justified {
                    suppressed += 1;
                } else {
                    diagnostics.push(Diagnostic {
                        path: rel_path.to_string(),
                        line: c.line,
                        col: c.col,
                        code: "OCT-LINT-000",
                        rule: "suppression-audit",
                        message: format!(
                            "suppression of {} lacks a justification: write \
                             `octolint: allow({}) -- <why this site is safe>`",
                            c.code, c.code
                        ),
                    });
                }
            }
            None => {
                let rule = rule_by_code(c.code).expect("candidate codes come from RULES");
                diagnostics.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: c.line,
                    col: c.col,
                    code: c.code,
                    rule: rule.name,
                    message: c.message,
                });
            }
        }
    }

    // audit the suppressions themselves
    for (idx, s) in suppressions.iter().enumerate() {
        for code in &s.codes {
            if rule_by_code(code).is_none() {
                diagnostics.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: s.line,
                    col: s.col,
                    code: "OCT-LINT-000",
                    rule: "suppression-audit",
                    message: format!("suppression names unknown rule `{code}`"),
                });
            }
        }
        if !used[idx] && s.codes.iter().all(|c| rule_by_code(c).is_some()) {
            diagnostics.push(Diagnostic {
                path: rel_path.to_string(),
                line: s.line,
                col: s.col,
                code: "OCT-LINT-000",
                rule: "suppression-audit",
                message: format!(
                    "suppression of {} never fires on this line: remove it or move it \
                     to the offending line",
                    s.codes.join(", ")
                ),
            });
        }
    }

    diagnostics.sort();
    Report {
        diagnostics,
        files_scanned: 1,
        suppressed,
    }
}

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

/// Collect the workspace-relative `.rs` paths `octolint` scans, sorted:
/// `crates/*/{src,tests,benches,examples}`, plus the root package's
/// `src/`, `tests/`, `examples/` and `benches/`. `vendor/` (offline
/// shims of external crates) and any directory named `fixtures` (the
/// lint's own known-bad corpus) are excluded.
pub fn scan_paths(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots: Vec<PathBuf> = Vec::new();
    for sub in ["src", "tests", "examples", "benches"] {
        roots.push(root.join(sub));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                for sub in ["src", "tests", "examples", "benches"] {
                    roots.push(dir.join(sub));
                }
            }
        }
    }
    let mut files = Vec::new();
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    for f in &mut files {
        *f = f
            .strip_prefix(root)
            .map(Path::to_path_buf)
            .unwrap_or_else(|_| f.clone());
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<std::io::Result<_>>()?;
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
///
/// # Errors
/// Propagates IO errors from walking or reading sources (the CLI maps
/// those to exit code 2).
pub fn lint_tree(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in scan_paths(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let file = lint_source(&rel_str, &source);
        report.diagnostics.extend(file.diagnostics);
        report.files_scanned += 1;
        report.suppressed += file.suppressed;
    }
    report.diagnostics.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_strings_attrs_and_uses() {
        let src = r##"
            use std::collections::HashMap; // import alone is exempt
            // HashMap in a comment
            /* Instant::now in a /* nested */ block comment */
            #[doc = "SystemTime in an attribute string"]
            fn f() {
                let s = "thread_rng inside a string";
                let r = r#"OsRng inside a raw string"#;
                let c = 'x';
                let map: std::collections::BTreeMap<u8, u8> = Default::default();
                let _ = (s, r, c, map);
            }
        "##;
        let rep = lint_source("crates/sim/src/fake.rs", src);
        assert!(rep.is_clean(), "false positives: {:?}", rep.diagnostics);
    }

    #[test]
    fn lifetimes_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = '\\''; let _ = c; x }\n\
                   fn g() { let m = std::collections::HashMap::<u8, u8>::new(); let _ = m; }\n";
        let rep = lint_source("crates/net/src/fake.rs", src);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-001");
        assert_eq!(rep.diagnostics[0].line, 2);
    }

    #[test]
    fn engine_scope_is_path_based() {
        let src = "fn f() { let m = HashMap::new(); let _ = m; }";
        assert!(!lint_source("crates/sim/src/x.rs", src).is_clean());
        assert!(lint_source("crates/crypto/src/x.rs", src).is_clean());
        assert!(lint_source("crates/sim/tests/x.rs", src).is_clean());
    }

    #[test]
    fn suppression_must_be_justified_and_fire() {
        let ok = "fn f() { let m = HashMap::new(); let _ = m; } \
                  // octolint: allow(OCT-LINT-001) -- demo";
        let rep = lint_source("crates/sim/src/x.rs", ok);
        assert!(rep.is_clean());
        assert_eq!(rep.suppressed, 1);

        let bare = "fn f() { let m = HashMap::new(); let _ = m; } \
                    // octolint: allow(OCT-LINT-001)";
        let rep = lint_source("crates/sim/src/x.rs", bare);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-000");

        let unused = "fn f() {} // octolint: allow(OCT-LINT-001) -- nothing here";
        let rep = lint_source("crates/sim/src/x.rs", unused);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].code, "OCT-LINT-000");
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        assert_eq!(
            codes,
            [
                "OCT-LINT-000",
                "OCT-LINT-001",
                "OCT-LINT-002",
                "OCT-LINT-003",
                "OCT-LINT-004",
                "OCT-LINT-005"
            ]
        );
    }
}
