// Known-bad fixture: OCT-LINT-003 ambient-rng.
// Linted under crates/core/src/bad_003.rs; the rule applies to every
// crate except crates/transport/, the deployment boundary outside the
// replayed engine (which nonetheless seeds all its RNGs in practice).

fn roll() -> u64 {
    let mut rng = rand::thread_rng(); //~ OCT-LINT-003
    rng.gen()
}

fn reseed() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy() //~ OCT-LINT-003
}

fn os_entropy() -> u64 {
    let mut r = OsRng; //~ OCT-LINT-003
    r.next_u64()
}

fn convenience() -> u8 {
    rand::random() //~ OCT-LINT-003
}
