// Known-bad fixture: OCT-LINT-003 ambient-rng.
// Linted under crates/core/src/bad_003.rs; the rule applies everywhere
// (there is no crate where ambient entropy is part of the contract).

fn roll() -> u64 {
    let mut rng = rand::thread_rng(); //~ OCT-LINT-003
    rng.gen()
}

fn reseed() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy() //~ OCT-LINT-003
}

fn os_entropy() -> u64 {
    let mut r = OsRng; //~ OCT-LINT-003
    r.next_u64()
}

fn convenience() -> u8 {
    rand::random() //~ OCT-LINT-003
}
