// Known-bad fixture: OCT-LINT-006 unordered-flow.
// Linted under the synthetic engine path crates/sim/src/bad_006.rs.
// Tilde markers name the exact diagnostic expected on their line.

fn collect_keys(m: &std::collections::HashMap<u64, u32>, out: &mut Vec<u64>) {
    for k in m.keys() {
        out.push(*k); //~ OCT-LINT-006
    }
}

fn spread(m: &std::collections::HashMap<u64, u32>, out: &mut Vec<u32>) {
    out.extend(m.values().copied()); //~ OCT-LINT-006
}

fn checksum(s: &std::collections::HashSet<u64>) -> u64 {
    s.iter().fold(0, |acc, v| acc ^ v) //~ OCT-LINT-006
}

fn bare_iteration(m: &std::collections::HashMap<u64, u32>, out: &mut Vec<u64>) {
    for (k, v) in m {
        out.push(k + u64::from(*v)); //~ OCT-LINT-006
    }
}

fn local_map_taints(xs: &[u64], out: &mut Vec<u64>) {
    let mut m = std::collections::HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0u64) += 1;
    }
    for k in m.keys() {
        out.push(*k); //~ OCT-LINT-006
    }
}

// --- negative space: these must stay clean -------------------------------

fn sorted_is_fine(m: &std::collections::HashMap<u64, u32>, out: &mut Vec<u64>) {
    let mut ks: Vec<u64> = m.keys().copied().collect();
    ks.sort_unstable();
    for k in ks {
        out.push(k);
    }
}

fn keyed_access_is_fine(m: &std::collections::HashMap<u64, u32>, k: u64, out: &mut Vec<u32>) {
    if let Some(v) = m.get(&k) {
        out.push(*v);
    }
}

fn btree_is_fine(m: &std::collections::BTreeMap<u64, u32>, out: &mut Vec<u64>) {
    for k in m.keys() {
        out.push(*k);
    }
}
