// False-positive-guard fixture: every violation below carries a
// justified suppression, so the file must lint clean with
// `suppressed == 2` (the VEF false-positive guard applied to the tool).

fn spread(m: &std::collections::HashMap<u64, u32>, out: &mut Vec<u32>) {
    out.extend(m.values().copied()); // octolint: allow(OCT-LINT-006) -- fixture: pretend this sink is order-insensitive
}

fn jitter() -> u64 {
    let mut rng = rand::thread_rng(); // octolint: allow(OCT-LINT-003) -- fixture: pretend-sanctioned entropy site
    rng.gen()
}
