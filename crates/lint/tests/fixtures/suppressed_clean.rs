// False-positive-guard fixture: every violation below carries a
// justified suppression, so the file must lint clean with
// `suppressed == 2` (the VEF false-positive guard applied to the tool).

struct Index {
    slots: std::collections::HashMap<u64, u32>, // octolint: allow(OCT-LINT-001) -- keyed access only, never iterated
}

fn jitter() -> u64 {
    let mut rng = rand::thread_rng(); // octolint: allow(OCT-LINT-003) -- fixture: pretend-sanctioned entropy site
    rng.gen()
}
