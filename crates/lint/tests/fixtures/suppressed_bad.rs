// Known-bad fixture: OCT-LINT-000 analyzer-integrity. Every allow here
// is defective in a distinct way and must be reported, so the
// suppression mechanism cannot rot into a silent opt-out.

struct A {
    m: std::collections::HashMap<u64, u32>, // octolint: allow(OCT-LINT-001) -- retired rule: must force migration //~ OCT-LINT-000
}

fn unused() -> u32 {
    42 // octolint: allow(OCT-LINT-002) -- nothing ever fired here //~ OCT-LINT-000
}

fn unknown_rule() -> u32 {
    7 // octolint: allow(OCT-LINT-999) -- no such rule //~ OCT-LINT-000
}

fn unjustified(m: &std::collections::HashMap<u64, u32>, out: &mut Vec<u32>) {
    out.extend(m.values().copied()); // octolint: allow(OCT-LINT-006) //~ OCT-LINT-000
}
