// Known-bad fixture: OCT-LINT-005 shard-unsafe-write.
// Linted under crates/core/src/bad_005.rs (and asserted exempt under
// crates/core/src/simnet.rs, the single-threaded driver module).

fn fabricate(node: &mut Node) {
    // a protocol path mutating the shared directory would race the
    // other shard threads reading it mid-window
    node.adversary.write().enroll(node.id); //~ OCT-LINT-005
}

fn evict(adversary: &SharedAdversary, id: u64) {
    adversary.write().remove(id); //~ OCT-LINT-005
}

fn reads_are_fine(node: &Node) -> usize {
    node.adversary.read().live_count()
}

fn unrelated_io(w: &mut impl std::io::Write, buf: &[u8]) {
    // `.write()` without the adversary directory in the expression is
    // ordinary IO, not a contract violation
    let _ = w.write(buf);
}

fn merge_everywhere(adversary: &ShardedAdversary, id: u64) {
    // the all-replica merge is the driver's move at the barrier, not a
    // shard thread's
    adversary.update(|a| a.enroll(id)); //~ OCT-LINT-005
}

fn unrelated_update(counter: &mut MovingAverage) {
    // `.update()` without the adversary directory in the expression is
    // an ordinary method call, not a contract violation
    counter.update(1.0);
}
