// Known-bad fixture: OCT-LINT-001 nondet-iteration.
// Linted under the synthetic engine path crates/sim/src/bad_001.rs.
// Tilde markers name the exact diagnostic expected on their line.

fn histogram(xs: &[u64]) -> usize {
    let mut m = std::collections::HashMap::new(); //~ OCT-LINT-001
    for &x in xs {
        *m.entry(x).or_insert(0u64) += 1;
    }
    let mut seen = std::collections::HashSet::new(); //~ OCT-LINT-001
    for (k, v) in &m {
        // nondeterministic visit order right here
        seen.insert(k + v);
    }
    seen.len()
}

struct Fine {
    ordered: std::collections::BTreeMap<u64, u64>, // the contract-approved spelling
}
