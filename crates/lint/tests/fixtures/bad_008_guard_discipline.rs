// Known-bad fixture: OCT-LINT-008 guard discipline, linted under the
// synthetic path crates/net/src/pool.rs (the rule is scoped to the
// barrier modules). `resume_under_guard` reproduces the PR-8
// poisoned-mutex cascade: resume_unwind while the panic-slot guard is
// live poisons the mutex for every other worker.

use std::sync::{Condvar, Mutex, RwLock};

fn resume_under_guard(slot: &Mutex<Option<Box<dyn std::any::Any + Send>>>) {
    let mut g = slot.lock().unwrap();
    if let Some(payload) = g.take() {
        std::panic::resume_unwind(payload); //~ OCT-LINT-008
    }
}

fn double_lock(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let g = a.lock().unwrap();
    let h = b.lock().unwrap(); //~ OCT-LINT-008
    *g + *h
}

fn unwrap_under_guard(state: &RwLock<Vec<u64>>, xs: &[u64]) -> u64 {
    let g = state.read().unwrap();
    let first = xs.first().unwrap(); //~ OCT-LINT-008
    *first + g.len() as u64
}

fn panic_under_guard(m: &Mutex<u64>) {
    let g = m.lock().unwrap();
    if *g > 7 {
        panic!("bad count"); //~ OCT-LINT-008
    }
}

// --- negative space: these must stay clean -------------------------------

fn condvar_wait_is_fine(pair: &(Mutex<bool>, Condvar)) {
    let lock = &pair.0;
    let cv = &pair.1;
    let mut done = lock.lock().unwrap();
    while !*done {
        done = cv.wait(done).unwrap();
    }
}

fn drop_then_unwrap_is_fine(m: &Mutex<u64>, xs: &[u64]) -> u64 {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    xs.first().unwrap().wrapping_add(v)
}

fn temporaries_are_fine(slot: &Mutex<Option<u64>>) -> Option<u64> {
    let taken = slot.lock().unwrap().take();
    taken
}
