// Parser-torture fixture: nested closures, macro_rules!, raw strings in
// match guards, generics in expression position, if-let/else-if chains,
// condvar-style reassignment, labelled loops. The statement tree this
// produces is pinned by the `parser_torture_tree_is_stable` test — if
// the parser regresses it degrades visibly there, never silently.

pub struct Weights {
    pub w: f64,
    pub names: std::collections::HashMap<u64, u32>,
}

macro_rules! noisy {
    ($x:expr, $($t:tt)*) => {
        ($x) < 3 && weird! { tokens ( here ) }
    };
}

impl Weights {
    fn tally<T: Into<u64>>(&self, xs: Vec<T>) -> u64 {
        let mut acc: u64 = 0;
        for x in xs {
            let add = |v: u64| -> u64 {
                if let Some(n) = self.names.get(&v) {
                    u64::from(*n)
                } else {
                    v
                }
            };
            acc += add(x.into());
        }
        match acc {
            0 => 0,
            n if n > r#"raw "quoted" { brace"#.len() as u64 => {
                let parsed = "generics in expr position";
                let cmp = acc < 9 && acc > 2;
                let _ = (parsed, cmp);
                n
            }
            n => n,
        }
    }
}

fn edge_cases(flag: bool, opt: Option<u64>) -> u64 {
    let mut total = 0u64;
    while flag && total < 3 {
        total += 1;
    }
    if flag {
        total += 2;
    } else if total == 0 {
        total += 3;
    } else {
        total += 4;
    }
    while let Some(v) = opt.filter(|&v| v > total) {
        total = v;
        break;
    }
    loop {
        total += 1;
        if total > 5 {
            break;
        }
    }
    unsafe {
        total += 0;
    }
    total
}
