// Known-bad fixture: OCT-LINT-009 barrier-path panic safety, linted as
// its own crate under the synthetic path crates/net/src/bad_009.rs.
// `run_batch` is the protected callee: every path into it must be
// covered by catch_unwind, directly or via covered callers.

fn run_batch(shard: usize) -> u64 {
    shard as u64
}

pub fn drive_uncovered(shards: usize) -> u64 {
    let mut acc = 0;
    for s in 0..shards {
        acc += run_batch(s); //~ OCT-LINT-009
    }
    acc
}

// --- negative space: these must stay clean -------------------------------

pub fn drive_inline_covered(shards: usize) -> u64 {
    let mut acc = 0;
    for s in 0..shards {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_batch(s)));
        acc += r.unwrap_or(0);
    }
    acc
}

// uncovered call, but private and only reachable through a covered
// call site in `covered_caller` — the graph walk must not flag it
fn covered_leaf(s: usize) -> u64 {
    run_batch(s)
}

pub fn covered_caller(shards: usize) -> u64 {
    let mut acc = 0;
    for s in 0..shards {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| covered_leaf(s)));
        acc += r.unwrap_or(0);
    }
    acc
}
