// Known-bad fixture: OCT-LINT-002 wall-clock.
// Linted under crates/net/src/bad_002.rs (and asserted exempt under
// crates/bench/ paths, where timing real wall-clock is the whole job,
// and crates/transport/ paths, where the UDP host runs on real time).

fn how_long() -> u128 {
    let t0 = std::time::Instant::now(); //~ OCT-LINT-002
    t0.elapsed().as_nanos()
}

fn since_epoch() -> u64 {
    let now = std::time::SystemTime::now(); //~ OCT-LINT-002
    now.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs() //~ OCT-LINT-002
}
