// Known-bad fixture: OCT-LINT-007 float accumulation in merge paths.
// Linted under the synthetic engine path crates/metrics/src/bad_007.rs.
// Tilde markers name the exact diagnostic expected on their line.

pub struct Stats {
    mean: f64,
    count: u64,
}

pub trait Merge {
    fn merge(&mut self, other: Self);
}

impl Merge for Stats {
    fn merge(&mut self, other: Self) {
        self.mean += other.mean; //~ OCT-LINT-007
        self.count += other.count;
    }
}

fn absorb(acc: &mut Vec<f64>, other: &[f64]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a += *b; //~ OCT-LINT-007
    }
}

fn merge_weights(ws: &[f32]) -> f32 {
    ws.iter().copied().fold(0.0, |acc, w| acc + w) //~ OCT-LINT-007
}

fn merge_mean(stats: &[Stats]) -> f64 {
    let total: f64 = stats.iter().map(|s| s.mean).sum(); //~ OCT-LINT-007
    total / stats.len() as f64
}

// --- negative space: these must stay clean -------------------------------

fn merge_counts(acc: &mut [u64], other: &[u64]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a += *b;
    }
}

fn plain_total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
