// Tricky-but-clean fixture: every disallowed name below appears only in
// a position the lexer must strip (comments, strings, raw strings,
// attributes, char literals, `use` declarations) or in a non-engine
// construct. Linted under an engine path; must produce zero diagnostics.

use std::collections::HashMap; // the import alone is exempt; uses fire

// HashMap and Instant::now in a line comment
/* SystemTime in a block comment, /* nested: thread_rng() */ still fine */

#[doc = "UNIX_EPOCH and OsRng inside an attribute string"]
#[cfg(feature = "HashSet")]
fn strings<'a>(x: &'a str) -> String {
    let s = "Instant::now() inside a string literal";
    let r = r#"available_parallelism in a raw string, "quoted" too"#;
    let c = '"'; // a char literal that looks like a string opener
    let l = '\''; // escaped quote char
    format!("{s}{r}{c}{l}{x}")
}

fn ordered() -> std::collections::BTreeMap<u64, u64> {
    std::collections::BTreeMap::new()
}
