// Known-bad fixture: OCT-LINT-004 thread-identity.
// Linted under crates/metrics/src/bad_004.rs (and asserted exempt under
// crates/core/src/trial.rs, the sanctioned TrialRunner sizing site).

fn who_am_i() -> std::thread::ThreadId { //~ OCT-LINT-004
    std::thread::current().id() //~ OCT-LINT-004
}

fn how_wide() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) //~ OCT-LINT-004
}
