//! Fixture-based contract tests for `octolint` itself, in the VEF
//! stable-signature style: each rule is demonstrated by a known-bad
//! fixture whose `//~ CODE` markers pin the exact diagnostic code and
//! line, a false-positive guard asserts the real tree (with its
//! justified suppressions) passes clean, and the CLI's script-friendly
//! exit codes (0 clean / 1 violations / 2 usage error) are exercised
//! end to end.

use std::path::{Path, PathBuf};

use octopus_lint::{lint_source, lint_tree, Report, RULES};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Expected diagnostics from `//~ CODE` markers: (1-based line, code).
fn markers(source: &str) -> Vec<(u32, String)> {
    source
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let (_, m) = l.split_once("//~")?;
            Some((i as u32 + 1, m.trim().to_string()))
        })
        .collect()
}

/// Lint `name` under the synthetic workspace path `as_path` and assert
/// the diagnostics match the fixture's markers exactly (code and line —
/// the stable signature), with every column anchored on the line.
fn assert_fixture(name: &str, as_path: &str) -> Report {
    let source = fixture(name);
    let report = lint_source(as_path, &source);
    let got: Vec<(u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.code.to_string()))
        .collect();
    assert_eq!(
        got,
        markers(&source),
        "{name} under {as_path}: diagnostics diverge from //~ markers\n{:#?}",
        report.diagnostics
    );
    for d in &report.diagnostics {
        assert!(d.col >= 1, "{name}: column must be 1-based: {d}");
        assert_eq!(d.path, as_path);
        let rule = RULES.iter().find(|r| r.code == d.code).expect("known code");
        assert_eq!(d.rule, rule.name, "rule name is part of the signature");
    }
    report
}

#[test]
fn rule_001_nondet_iteration_fires_with_stable_code() {
    assert_fixture("bad_001_nondet_iteration.rs", "crates/sim/src/bad_001.rs");
    // outside the engine crates the same source is legal
    let src = fixture("bad_001_nondet_iteration.rs");
    assert!(lint_source("crates/crypto/src/ok.rs", &src).is_clean());
}

/// `crates/spec` — the executable reference model the differential
/// suites replay engine traces through — carries the full engine-crate
/// posture: its verdicts must be as replay-stable as the engine it
/// judges, so it gets no exemption from any rule.
#[test]
fn reference_model_crate_is_engine_source() {
    // nondet iteration is a violation in its src tree…
    assert_fixture("bad_001_nondet_iteration.rs", "crates/spec/src/bad_001.rs");
    // …though, as for every crate, only in src — tests are exempt
    let src = fixture("bad_001_nondet_iteration.rs");
    assert!(lint_source("crates/spec/tests/x.rs", &src).is_clean());
    // and the wall-clock / ambient-rng rules apply as everywhere else
    let clock = fixture("bad_002_wall_clock.rs");
    assert!(!lint_source("crates/spec/src/clock.rs", &clock).is_clean());
    let rng = fixture("bad_003_ambient_rng.rs");
    assert!(!lint_source("crates/spec/src/rng.rs", &rng).is_clean());
}

#[test]
fn rule_002_wall_clock_fires_with_stable_code() {
    assert_fixture("bad_002_wall_clock.rs", "crates/net/src/bad_002.rs");
    // crates/bench times real wall-clock by design
    let src = fixture("bad_002_wall_clock.rs");
    assert!(lint_source("crates/bench/src/ok.rs", &src).is_clean());
}

#[test]
fn rule_003_ambient_rng_fires_with_stable_code() {
    assert_fixture("bad_003_ambient_rng.rs", "crates/core/src/bad_003.rs");
    // no exemption anywhere: ambient entropy is never part of the contract
    let src = fixture("bad_003_ambient_rng.rs");
    assert!(!lint_source("examples/demo.rs", &src).is_clean());
    assert!(!lint_source("crates/anonymity/src/x.rs", &src).is_clean());
}

#[test]
fn rule_004_thread_identity_fires_with_stable_code() {
    assert_fixture(
        "bad_004_thread_identity.rs",
        "crates/metrics/src/bad_004.rs",
    );
    // the sanctioned TrialRunner/RunArgs/pool sizing sites are exempt
    let src = fixture("bad_004_thread_identity.rs");
    assert!(lint_source("crates/core/src/trial.rs", &src).is_clean());
    assert!(lint_source("crates/bench/src/lib.rs", &src).is_clean());
    assert!(lint_source("crates/net/src/pool.rs", &src).is_clean());
}

#[test]
fn rule_005_shard_write_fires_with_stable_code() {
    assert_fixture("bad_005_shard_write.rs", "crates/core/src/bad_005.rs");
    // the single-threaded driver modules may take the write lock
    let src = fixture("bad_005_shard_write.rs");
    assert!(lint_source("crates/core/src/simnet.rs", &src).is_clean());
    assert!(lint_source("crates/core/src/adversary.rs", &src).is_clean());
}

#[test]
fn justified_suppressions_silence_and_are_counted() {
    let report = assert_fixture("suppressed_clean.rs", "crates/net/src/suppressed.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 2, "both allows must be exercised");
}

#[test]
fn defective_suppressions_are_themselves_violations() {
    let report = assert_fixture("suppressed_bad.rs", "crates/sim/src/suppressed_bad.rs");
    assert!(report.diagnostics.iter().all(|d| d.code == "OCT-LINT-000"));
}

#[test]
fn lexer_false_positive_guard() {
    let report = assert_fixture("tricky_clean.rs", "crates/sim/src/tricky.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 0);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The VEF false-positive guard on the real tree: the workspace, with
/// its justified suppressions, lints clean — so the CI gate only ever
/// fails on a *new* contract violation.
#[test]
fn real_tree_passes_clean() {
    let report = lint_tree(&workspace_root()).expect("scan workspace");
    assert!(
        report.is_clean(),
        "determinism-contract violations in the tree:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 60,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.suppressed >= 6,
        "the audited engine suppressions disappeared ({} left): \
         did someone bulk-delete allows without migrating?",
        report.suppressed
    );
}

/// Diagnostics are replay-stable: two scans of the same tree produce
/// byte-identical, path-sorted output.
#[test]
fn output_is_deterministic_and_sorted() {
    let a = lint_tree(&workspace_root()).expect("scan");
    let b = lint_tree(&workspace_root()).expect("scan");
    let render = |r: &Report| {
        r.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&a), render(&b));
    let mut sorted = a.diagnostics.clone();
    sorted.sort();
    assert_eq!(a.diagnostics, sorted);
}

/// End-to-end exit codes through the real binary: 0 clean, 1 violation,
/// 2 usage error — the contract the CI job and scripts rely on.
#[test]
fn cli_exit_codes_are_script_friendly() {
    let bin = env!("CARGO_BIN_EXE_octolint");
    let clean = std::process::Command::new(bin)
        .args(["--quiet", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run octolint");
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");
    assert!(
        clean.stdout.is_empty(),
        "--quiet on a clean tree prints nothing"
    );

    // a throwaway bad tree under target/ (gitignored, inside the repo)
    let bad_root = workspace_root().join("target/octolint-exit-code-fixture");
    let src_dir = bad_root.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); let _ = m; }\n",
    )
    .expect("write");
    let dirty = std::process::Command::new(bin)
        .args(["--quiet", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run octolint");
    assert_eq!(dirty.status.code(), Some(1), "violations must exit 1");
    let out = String::from_utf8_lossy(&dirty.stdout);
    assert!(out.contains("OCT-LINT-001"), "diagnostic printed: {out}");

    let usage = std::process::Command::new(bin)
        .arg("--no-such-flag")
        .output()
        .expect("run octolint");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}
