//! Fixture-based contract tests for `octolint` itself, in the VEF
//! stable-signature style: each rule is demonstrated by a known-bad
//! fixture whose `//~ CODE` markers pin the exact diagnostic code and
//! line, a false-positive guard asserts the real tree (with its
//! justified suppressions) passes clean, the parser-torture fixture
//! pins the statement tree the dataflow rules consume, and the CLI's
//! script-friendly exit codes (0 clean / 1 violations / 2 usage error)
//! are exercised end to end.

use std::path::{Path, PathBuf};

use octopus_lint::{lint_source, lint_tree, parse_debug, scan_paths, Report, RULES};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Expected diagnostics from `//~ CODE` markers: (1-based line, code).
fn markers(source: &str) -> Vec<(u32, String)> {
    source
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let (_, m) = l.split_once("//~")?;
            Some((i as u32 + 1, m.trim().to_string()))
        })
        .collect()
}

/// Lint `name` under the synthetic workspace path `as_path` and assert
/// the diagnostics match the fixture's markers exactly (code and line —
/// the stable signature), with every column anchored on the line.
fn assert_fixture(name: &str, as_path: &str) -> Report {
    let source = fixture(name);
    let report = lint_source(as_path, &source);
    let got: Vec<(u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.code.to_string()))
        .collect();
    assert_eq!(
        got,
        markers(&source),
        "{name} under {as_path}: diagnostics diverge from //~ markers\n{:#?}",
        report.diagnostics
    );
    for d in &report.diagnostics {
        assert!(d.col >= 1, "{name}: column must be 1-based: {d}");
        assert_eq!(d.path, as_path);
        let rule = RULES.iter().find(|r| r.code == d.code).expect("known code");
        assert_eq!(d.rule, rule.name, "rule name is part of the signature");
    }
    report
}

#[test]
fn rule_006_unordered_flow_fires_with_stable_code() {
    assert_fixture("bad_006_unordered_flow.rs", "crates/sim/src/bad_006.rs");
    // outside the engine crates the same source is legal
    let src = fixture("bad_006_unordered_flow.rs");
    assert!(lint_source("crates/crypto/src/ok.rs", &src).is_clean());
}

#[test]
fn rule_007_float_merge_fires_with_stable_code() {
    assert_fixture("bad_007_float_merge.rs", "crates/metrics/src/bad_007.rs");
    // outside the engine crates the same source is legal
    let src = fixture("bad_007_float_merge.rs");
    assert!(lint_source("crates/crypto/src/ok.rs", &src).is_clean());
}

#[test]
fn rule_008_guard_discipline_fires_with_stable_code() {
    // the rule is scoped to the two barrier modules by exact path:
    // the fixture reproduces the PR-8 poisoned-mutex cascade shape
    assert_fixture("bad_008_guard_discipline.rs", "crates/net/src/pool.rs");
    let src = fixture("bad_008_guard_discipline.rs");
    assert!(
        !lint_source("crates/net/src/world.rs", &src).is_clean(),
        "world.rs is in guard scope too"
    );
    assert!(
        lint_source("crates/net/src/wire.rs", &src).is_clean(),
        "other modules keep ordinary lock idioms"
    );
}

#[test]
fn rule_009_barrier_path_fires_with_stable_code() {
    assert_fixture("bad_009_barrier_path.rs", "crates/net/src/bad_009.rs");
}

/// `crates/spec` — the executable reference model the differential
/// suites replay engine traces through — carries the full engine-crate
/// posture: its verdicts must be as replay-stable as the engine it
/// judges, so it gets no exemption from any rule.
#[test]
fn reference_model_crate_is_engine_source() {
    // unordered-iteration dataflow is a violation in its src tree…
    assert_fixture("bad_006_unordered_flow.rs", "crates/spec/src/bad_006.rs");
    // …though, as for every crate, only in src — tests are exempt
    let src = fixture("bad_006_unordered_flow.rs");
    assert!(lint_source("crates/spec/tests/x.rs", &src).is_clean());
    // and the wall-clock / ambient-rng rules apply as everywhere else
    let clock = fixture("bad_002_wall_clock.rs");
    assert!(!lint_source("crates/spec/src/clock.rs", &clock).is_clean());
    let rng = fixture("bad_003_ambient_rng.rs");
    assert!(!lint_source("crates/spec/src/rng.rs", &rng).is_clean());
}

#[test]
fn rule_002_wall_clock_fires_with_stable_code() {
    assert_fixture("bad_002_wall_clock.rs", "crates/net/src/bad_002.rs");
    // crates/bench times real wall-clock by design, and the UDP
    // transport host keys its timer wheel off `Instant` by design
    let src = fixture("bad_002_wall_clock.rs");
    assert!(lint_source("crates/bench/src/ok.rs", &src).is_clean());
    assert!(lint_source("crates/transport/src/host.rs", &src).is_clean());
    // the exemption is the whole crate (its smoke test spawns real
    // processes on wall-clock deadlines), but stops at the crate root
    assert!(lint_source("crates/transport/tests/smoke.rs", &src).is_clean());
    assert!(!lint_source("crates/transport2/src/x.rs", &src).is_clean());
}

#[test]
fn rule_003_ambient_rng_fires_with_stable_code() {
    assert_fixture("bad_003_ambient_rng.rs", "crates/core/src/bad_003.rs");
    // the engine keeps the rule everywhere: ambient entropy is never
    // part of the replayed contract
    let src = fixture("bad_003_ambient_rng.rs");
    assert!(!lint_source("examples/demo.rs", &src).is_clean());
    assert!(!lint_source("crates/anonymity/src/x.rs", &src).is_clean());
    // the sole exemption is the deployment transport crate, which sits
    // outside the replay boundary (and in practice still seeds its RNGs
    // from the master seed — see `crates/transport/src/host.rs`)
    assert!(lint_source("crates/transport/src/host.rs", &src).is_clean());
    assert!(!lint_source("crates/transport2/src/x.rs", &src).is_clean());
}

#[test]
fn rule_004_thread_identity_fires_with_stable_code() {
    assert_fixture(
        "bad_004_thread_identity.rs",
        "crates/metrics/src/bad_004.rs",
    );
    // the sanctioned TrialRunner/RunArgs/pool sizing sites are exempt
    let src = fixture("bad_004_thread_identity.rs");
    assert!(lint_source("crates/core/src/trial.rs", &src).is_clean());
    assert!(lint_source("crates/bench/src/lib.rs", &src).is_clean());
    assert!(lint_source("crates/net/src/pool.rs", &src).is_clean());
}

#[test]
fn rule_005_shard_write_fires_with_stable_code() {
    assert_fixture("bad_005_shard_write.rs", "crates/core/src/bad_005.rs");
    // the single-threaded driver modules may take the write lock
    let src = fixture("bad_005_shard_write.rs");
    assert!(lint_source("crates/core/src/simnet.rs", &src).is_clean());
    assert!(lint_source("crates/core/src/adversary.rs", &src).is_clean());
}

#[test]
fn justified_suppressions_silence_and_are_counted() {
    let report = assert_fixture("suppressed_clean.rs", "crates/net/src/suppressed.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 2, "both allows must be exercised");
    // the audited inventory is retained for the JSON artifact
    assert_eq!(report.audited.len(), 2);
    assert!(report.audited.iter().any(|d| d.code == "OCT-LINT-006"));
    assert!(report.audited.iter().any(|d| d.code == "OCT-LINT-003"));
}

#[test]
fn defective_suppressions_are_themselves_violations() {
    let report = assert_fixture("suppressed_bad.rs", "crates/sim/src/suppressed_bad.rs");
    assert!(report.diagnostics.iter().all(|d| d.code == "OCT-LINT-000"));
    // the four defect classes: retired rule, never fires, unknown rule,
    // missing justification
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("retired")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("never fires")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("unknown rule")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("lacks a justification")));
}

#[test]
fn lexer_false_positive_guard() {
    let report = assert_fixture("tricky_clean.rs", "crates/sim/src/tricky.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressed, 0);
}

/// The statement tree the dataflow/concurrency rules consume, pinned on
/// the torture fixture (nested closures, `macro_rules!`, raw strings in
/// match guards, expression-position generics, else-if chains). Any
/// parser change that reshapes this must update the expectation
/// consciously.
#[test]
fn parser_torture_tree_is_stable() {
    let tree = parse_debug(&fixture("torture_parse.rs"));
    assert!(
        !tree.contains("error "),
        "torture fixture must parse without structural errors:\n{tree}"
    );
    let expected = "\
fn tally @19
  let [acc] :ty =init @20:9
  for [x] @21:9
    let [add] =init @22:13
      cond-let [n] @23:17
        expr @24:21
        expr @26:21
    expr @29:13
  expr @31:9
    expr @32:13
    expr @33:13
      let [parsed] =init @34:17
      let [cmp] =init @35:17
      let [] =init @36:17
      expr @37:17
    expr @39:13
fn edge_cases @44
  let [total] =init @45:5
  expr @46:5
    expr @47:9
  expr @49:5
    expr @50:9
    expr @52:9
    expr @54:9
  expr @51:15
  cond-let [v] @56:5
    expr @57:9
    expr @58:9
  expr @60:5
    expr @61:9
    expr @62:9
      expr @63:13
  expr @66:5
    expr @67:9
  expr @69:5
";
    assert_eq!(tree, expected, "statement tree diverged:\n{tree}");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Parser totality on the real tree: every scanned file must produce a
/// structurally error-free statement tree. A file octolint cannot parse
/// would surface as an OCT-LINT-000 violation in CI — this test points
/// at the parser directly so the failure names the file.
#[test]
fn real_tree_parses_structurally() {
    let root = workspace_root();
    let paths = scan_paths(&root).expect("walk workspace");
    assert!(paths.len() > 60, "walker broke: {} files", paths.len());
    for rel in paths {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read");
        let tree = parse_debug(&src);
        for line in tree.lines() {
            assert!(
                !line.starts_with("error "),
                "{} does not parse: {line}",
                rel.display()
            );
        }
    }
}

/// The VEF false-positive guard on the real tree: the workspace, with
/// its justified suppressions, lints clean — so the CI gate only ever
/// fails on a *new* contract violation.
#[test]
fn real_tree_passes_clean() {
    let report = lint_tree(&workspace_root()).expect("scan workspace");
    assert!(
        report.is_clean(),
        "determinism-contract violations in the tree:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 60,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.suppressed >= 5,
        "the audited engine suppressions disappeared ({} left): \
         did someone bulk-delete allows without migrating?",
        report.suppressed
    );
    // the v2 re-audit shrank the allow inventory: a creeping-back blanket
    // allow population would show up here
    assert!(
        report.suppressed <= 10,
        "allow inventory grew to {}: re-audit before raising this bound",
        report.suppressed
    );
}

/// Diagnostics are replay-stable: two scans of the same tree produce
/// byte-identical, path-sorted output — and the JSON rendering is
/// byte-identical too (timings are deliberately excluded from it).
#[test]
fn output_is_deterministic_and_sorted() {
    let a = lint_tree(&workspace_root()).expect("scan");
    let b = lint_tree(&workspace_root()).expect("scan");
    let render = |r: &Report| {
        r.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&a), render(&b));
    let mut sorted = a.diagnostics.clone();
    sorted.sort();
    assert_eq!(a.diagnostics, sorted);
    assert_eq!(a.to_json(), b.to_json(), "JSON artifact must diff cleanly");
}

/// The machine-readable schema the CI artifact uploads: stable keys,
/// audited suppressions included with `"suppressed": true`.
#[test]
fn json_format_exposes_audited_allows() {
    let report = lint_tree(&workspace_root()).expect("scan");
    let json = report.to_json();
    assert!(json.contains("\"schema\": 1"));
    assert!(json.contains("\"violations\": 0"));
    assert!(
        json.contains("\"suppressed\": true"),
        "audited allows present"
    );
    for key in [
        "\"path\": ",
        "\"line\": ",
        "\"col\": ",
        "\"code\": ",
        "\"rule\": ",
        "\"message\": ",
    ] {
        assert!(json.contains(key), "schema key {key} missing");
    }
}

/// End-to-end exit codes through the real binary: 0 clean, 1 violation,
/// 2 usage error — the contract the CI job and scripts rely on.
#[test]
fn cli_exit_codes_are_script_friendly() {
    let bin = env!("CARGO_BIN_EXE_octolint");
    let clean = std::process::Command::new(bin)
        .args(["--quiet", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run octolint");
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");
    assert!(
        clean.stdout.is_empty(),
        "--quiet on a clean tree prints nothing"
    );

    // a throwaway bad tree under target/ (gitignored, inside the repo)
    let bad_root = workspace_root().join("target/octolint-exit-code-fixture");
    let src_dir = bad_root.join("crates/sim/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f(m: &std::collections::HashMap<u8, u8>, out: &mut Vec<u8>) {\n\
             for k in m.keys() { out.push(*k); }\n\
         }\n",
    )
    .expect("write");
    let dirty = std::process::Command::new(bin)
        .args(["--quiet", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run octolint");
    assert_eq!(dirty.status.code(), Some(1), "violations must exit 1");
    let out = String::from_utf8_lossy(&dirty.stdout);
    assert!(out.contains("OCT-LINT-006"), "diagnostic printed: {out}");

    let json_run = std::process::Command::new(bin)
        .args(["--format", "json", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run octolint");
    assert_eq!(json_run.status.code(), Some(1), "json run keeps exit codes");
    let json = String::from_utf8_lossy(&json_run.stdout);
    assert!(
        json.contains("\"code\": \"OCT-LINT-006\""),
        "json body: {json}"
    );

    let usage = std::process::Command::new(bin)
        .arg("--no-such-flag")
        .output()
        .expect("run octolint");
    assert_eq!(usage.status.code(), Some(2), "usage errors must exit 2");
}
