//! Diagnostic harness (run with --nocapture) — not a correctness test.
//!
//!     cargo test -p octopus-core --test debug_sim -- --ignored --nocapture

use octopus_core::{AttackKind, SecuritySim, SimConfig};
use octopus_sim::Duration;

#[test]
#[ignore = "diagnostic dump, not a correctness test; run with -- --ignored --nocapture"]
fn diagnose_passive() {
    let cfg = SimConfig {
        n: 150,
        malicious_fraction: 0.2,
        attack: AttackKind::LookupBias,
        attack_rate: 0.5,
        consistent_collusion: 0.5,
        mean_lifetime: None,
        duration: Duration::from_secs(240),
        seed: 3,
        octopus: octopus_core::OctopusConfig::for_network(150),
        lookups_enabled: true,
        scheduler: Default::default(),
        shards: 1,
        parallel: false,
        pool_threads: 0,
    };
    let mut sim = SecuritySim::new(cfg);
    let report = sim.run_debug();
    println!("{report:#?}");
}
