//! Engine-level determinism regressions: the same seeded experiment
//! must produce byte-identical reports across scheduler backends,
//! across trial-runner thread counts, across world shard counts, and
//! across window execution modes (sequential vs parallel shard
//! threads). These guard the engine's core promise — backends,
//! parallelism and partitioning change speed, never results.
//!
//! CI additionally drives this suite across an `OCTOPUS_SHARDS` ×
//! `OCTOPUS_PAR` matrix (see `determinism_under_env_matrix`), so
//! sequential/parallel equivalence is enforced on every push for every
//! matrix point, not just the combinations hard-coded below.

use octopus_core::{
    trial_configs, AttackKind, OctopusConfig, SchedulerKind, SecuritySim, SimConfig, TrialRunner,
};
use octopus_sim::Duration;

fn small(seed: u64, scheduler: SchedulerKind) -> SimConfig {
    SimConfig {
        n: 60,
        malicious_fraction: 0.2,
        attack: AttackKind::LookupBias,
        attack_rate: 1.0,
        duration: Duration::from_secs(45),
        seed,
        octopus: OctopusConfig::for_network(60),
        scheduler,
        ..SimConfig::default()
    }
}

/// A fixed-seed `SecuritySim` produces byte-identical `SimReport`s on
/// the binary-heap and timing-wheel scheduler backends.
#[test]
fn security_sim_identical_across_scheduler_backends() {
    let heap = SecuritySim::new(small(11, SchedulerKind::BinaryHeap)).run();
    let wheel = SecuritySim::new(small(11, SchedulerKind::TimingWheel)).run();
    assert!(
        heap.completed_lookups > 0 || heap.walks_ok > 0,
        "run must exercise the protocol"
    );
    assert_eq!(heap, wheel, "scheduler backends diverged");
    // byte-identical, not merely structurally equal
    assert_eq!(format!("{heap:?}"), format!("{wheel:?}"));
}

/// T trials on 1 thread and the same T trials on 4 threads merge to
/// identical metrics.
#[test]
fn trial_runner_merge_is_thread_count_invariant() {
    let configs = trial_configs(&small(23, SchedulerKind::default()), 4);
    let serial = TrialRunner::new(1).run_merged(&configs).expect("4 trials");
    let parallel = TrialRunner::new(4).run_merged(&configs).expect("4 trials");
    assert_eq!(serial.trials, 4);
    assert_eq!(serial, parallel, "thread count changed merged metrics");
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// A fixed-seed `SecuritySim` produces identical `SimReport`s at 1, 2,
/// and 4 shards: origin-derived `(time, key)` event ordering makes the
/// partition — like the scheduler backend — a pure speed/layout knob
/// that can never change results.
#[test]
fn security_sim_identical_across_shard_counts() {
    let report_at = |shards: usize| {
        let cfg = SimConfig {
            shards,
            ..small(17, SchedulerKind::default())
        };
        SecuritySim::new(cfg).run()
    };
    let one = report_at(1);
    assert!(
        one.completed_lookups > 0 || one.walks_ok > 0,
        "run must exercise the protocol"
    );
    for shards in [2usize, 4] {
        let sharded = report_at(shards);
        assert_eq!(one, sharded, "{shards}-shard run diverged");
        assert_eq!(format!("{one:?}"), format!("{sharded:?}"));
    }
}

/// Sharding also composes with the scheduler backends: a 4-shard run on
/// the heap matches a 4-shard run on the wheel.
#[test]
fn sharded_runs_identical_across_scheduler_backends() {
    let run = |kind: SchedulerKind| {
        let cfg = SimConfig {
            shards: 4,
            ..small(19, kind)
        };
        SecuritySim::new(cfg).run()
    };
    assert_eq!(
        run(SchedulerKind::BinaryHeap),
        run(SchedulerKind::TimingWheel)
    );
}

/// The acceptance cube: a fixed-seed `SecuritySim` produces
/// byte-identical `SimReport`s for **every** combination of shard count
/// {1, 2, 4}, execution mode {sequential, parallel windows}, and
/// scheduler backend {binary heap, timing wheel}.
#[test]
fn security_sim_identical_across_modes_shards_and_backends() {
    let report_at = |shards: usize, parallel: bool, kind: SchedulerKind| {
        let cfg = SimConfig {
            shards,
            parallel,
            ..small(17, kind)
        };
        SecuritySim::new(cfg).run()
    };
    let baseline = report_at(1, false, SchedulerKind::TimingWheel);
    assert!(
        baseline.completed_lookups > 0 || baseline.walks_ok > 0,
        "run must exercise the protocol"
    );
    for shards in [1usize, 2, 4] {
        for parallel in [false, true] {
            for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
                let probe = report_at(shards, parallel, kind);
                assert_eq!(
                    baseline, probe,
                    "{shards}-shard parallel={parallel} {kind:?} run diverged"
                );
                assert_eq!(format!("{baseline:?}"), format!("{probe:?}"));
            }
        }
    }
}

/// The persistent worker pool is invisible in results: forcing a
/// 2-thread pool (which single-core CI would otherwise size down to
/// inline execution) reproduces the sequential baseline byte for byte
/// at every shard count and on both scheduler backends.
#[test]
fn pooled_windows_identical_to_sequential_baseline() {
    let baseline = SecuritySim::new(small(17, SchedulerKind::TimingWheel)).run();
    for shards in [2usize, 4] {
        for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
            let cfg = SimConfig {
                shards,
                parallel: true,
                pool_threads: 2,
                ..small(17, kind)
            };
            let probe = SecuritySim::new(cfg).run();
            assert_eq!(
                baseline, probe,
                "{shards}-shard pooled {kind:?} run diverged"
            );
            assert_eq!(format!("{baseline:?}"), format!("{probe:?}"));
        }
    }
}

/// `TrialRunner::run_mode_sweep` composes the shards × mode grid
/// through one batch, and every grid point matches.
#[test]
fn mode_sweep_grid_is_invariant() {
    let base = small(29, SchedulerKind::default());
    let grid = TrialRunner::new(4).run_mode_sweep(&base, &[1, 2], 2);
    assert_eq!(grid.len(), 4);
    assert_eq!(
        grid.iter().map(|&(s, p, _)| (s, p)).collect::<Vec<_>>(),
        vec![(1, false), (1, true), (2, false), (2, true)]
    );
    for (shards, parallel, report) in &grid {
        assert_eq!(report.trials, 2);
        assert_eq!(
            report, &grid[0].2,
            "{shards}-shard parallel={parallel} grid point diverged"
        );
    }
}

/// The CI matrix hook: run the configuration selected by
/// `OCTOPUS_SHARDS` and `OCTOPUS_PAR` (defaulting to the 1-shard
/// sequential engine) against the 1-shard sequential baseline. The CI
/// workflow fans this test across the full env matrix on every push.
#[test]
fn determinism_under_env_matrix() {
    let shards = std::env::var("OCTOPUS_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let parallel = std::env::var("OCTOPUS_PAR")
        .is_ok_and(|v| matches!(v.as_str(), "1" | "true" | "yes" | "on"));
    let baseline = SecuritySim::new(small(37, SchedulerKind::default())).run();
    let probe = SecuritySim::new(SimConfig {
        shards,
        parallel,
        ..small(37, SchedulerKind::default())
    })
    .run();
    assert_eq!(
        baseline, probe,
        "{shards}-shard parallel={parallel} env-matrix run diverged from the sequential baseline"
    );
}

/// Per-trial reports also come back in submission order regardless of
/// worker count, and a 1-trial merged run reproduces the plain run.
#[test]
fn trial_runner_preserves_order_and_base_seed() {
    let configs = trial_configs(&small(31, SchedulerKind::default()), 3);
    let one = TrialRunner::new(1).run(&configs);
    let many = TrialRunner::new(3).run(&configs);
    assert_eq!(one, many);
    let plain = SecuritySim::new(configs[0].clone()).run();
    assert_eq!(one[0], plain, "trial 0 must reproduce the base run");
}
