//! Engine-level determinism regressions: the same seeded experiment
//! must produce byte-identical reports across scheduler backends and
//! across trial-runner thread counts. These guard the refactored
//! engine's core promise — backends and parallelism change speed, never
//! results.

use octopus_core::{
    trial_configs, AttackKind, OctopusConfig, SchedulerKind, SecuritySim, SimConfig, TrialRunner,
};
use octopus_sim::Duration;

fn small(seed: u64, scheduler: SchedulerKind) -> SimConfig {
    SimConfig {
        n: 60,
        malicious_fraction: 0.2,
        attack: AttackKind::LookupBias,
        attack_rate: 1.0,
        duration: Duration::from_secs(45),
        seed,
        octopus: OctopusConfig::for_network(60),
        scheduler,
        ..SimConfig::default()
    }
}

/// A fixed-seed `SecuritySim` produces byte-identical `SimReport`s on
/// the binary-heap and timing-wheel scheduler backends.
#[test]
fn security_sim_identical_across_scheduler_backends() {
    let heap = SecuritySim::new(small(11, SchedulerKind::BinaryHeap)).run();
    let wheel = SecuritySim::new(small(11, SchedulerKind::TimingWheel)).run();
    assert!(
        heap.completed_lookups > 0 || heap.walks_ok > 0,
        "run must exercise the protocol"
    );
    assert_eq!(heap, wheel, "scheduler backends diverged");
    // byte-identical, not merely structurally equal
    assert_eq!(format!("{heap:?}"), format!("{wheel:?}"));
}

/// T trials on 1 thread and the same T trials on 4 threads merge to
/// identical metrics.
#[test]
fn trial_runner_merge_is_thread_count_invariant() {
    let configs = trial_configs(&small(23, SchedulerKind::default()), 4);
    let serial = TrialRunner::new(1).run_merged(&configs).expect("4 trials");
    let parallel = TrialRunner::new(4).run_merged(&configs).expect("4 trials");
    assert_eq!(serial.trials, 4);
    assert_eq!(serial, parallel, "thread count changed merged metrics");
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
}

/// Per-trial reports also come back in submission order regardless of
/// worker count, and a 1-trial merged run reproduces the plain run.
#[test]
fn trial_runner_preserves_order_and_base_seed() {
    let configs = trial_configs(&small(31, SchedulerKind::default()), 3);
    let one = TrialRunner::new(1).run(&configs);
    let many = TrialRunner::new(3).run(&configs);
    assert_eq!(one, many);
    let plain = SecuritySim::new(configs[0].clone()).run();
    assert_eq!(one[0], plain, "trial 0 must reproduce the base run");
}
