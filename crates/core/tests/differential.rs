//! Differential checking: the real `SecuritySim` engine and the
//! dependency-free reference model (`octopus-spec`) are driven from the
//! same seeded schedule, and must agree event for event — across the
//! full shards × {sequential, parallel} × scheduler-backend cube.
//!
//! The engine emits a semantic trace of every security decision it
//! makes (onion hop processing, receipt acceptance, signed-table
//! validation, revocation handling, CA report intake); the model
//! independently recomputes each decision from the decision's inputs
//! and flags any disagreement as a divergence. A passing run therefore
//! certifies both that the engine's decisions match the protocol
//! semantics *and* that the trace itself is identical at every cube
//! point (tracing rides the deterministic control channel).

mod common;

use common::{assert_model_agrees, cube, probe, run_traced, TracedRun};
use octopus_core::TraceEvent;

/// Seeds per suite slice; three slices give ≥ 50 seeded schedules
/// through the full cube while keeping wall-clock parallel. Under
/// `tsan-safe` (the ThreadSanitizer CI job, ~10-20x slower) the corpus
/// shrinks to four seeds per slice — still crossing every cube point —
/// and the breadth assertions in `check_slice` are skipped.
const SEEDS_PER_SLICE: u64 = if cfg!(feature = "tsan-safe") { 4 } else { 18 };

/// Run one seed at the sequential baseline and at one rotating cube
/// variant; assert byte-identical reports and traces across the two
/// points, and full model agreement.
fn check_seed(seed: u64) -> TracedRun {
    let points = cube();
    let baseline = run_traced(probe(seed, points[0]));
    assert!(
        !baseline.trace.is_empty(),
        "seed {seed}: probe produced no trace"
    );
    // rotate through the 11 non-baseline cube points so ~5 seeds cover
    // every point of the cube
    let variant_point = points[1 + (seed as usize) % (points.len() - 1)];
    let variant = run_traced(probe(seed, variant_point));
    assert_eq!(
        baseline.report, variant.report,
        "seed {seed}: report diverged at cube point {variant_point:?}"
    );
    assert_eq!(
        baseline.trace, variant.trace,
        "seed {seed}: trace diverged at cube point {variant_point:?}"
    );
    assert_model_agrees(&baseline, &format!("seed {seed} baseline"));
    assert_model_agrees(&variant, &format!("seed {seed} variant {variant_point:?}"));
    baseline
}

/// Every seed slice additionally accumulates per-variant event counts
/// and asserts the corpus actually exercised the protocol surface the
/// model covers.
fn check_slice(first_seed: u64) {
    let mut onions = 0usize;
    let mut receipts = 0usize;
    let mut tables = 0usize;
    let mut lookups = 0usize;
    let mut anon = 0usize;
    for seed in first_seed..first_seed + SEEDS_PER_SLICE {
        let run = check_seed(seed);
        for (_, ev) in &run.trace {
            match ev {
                TraceEvent::OnionProcessed { .. } => onions += 1,
                TraceEvent::ReceiptChecked { .. } => receipts += 1,
                TraceEvent::TableChecked { .. } => tables += 1,
                TraceEvent::LookupQuery { .. } => lookups += 1,
                TraceEvent::AnonSent { .. } => anon += 1,
                _ => {}
            }
        }
    }
    if cfg!(feature = "tsan-safe") {
        // the shrunken sanitizer corpus still has to do *something*
        assert!(onions + receipts + tables + lookups + anon > 0);
        return;
    }
    assert!(onions > 100, "corpus exercised too few onion hops");
    assert!(receipts > 100, "corpus exercised too few receipt checks");
    assert!(tables > 20, "corpus exercised too few table validations");
    assert!(lookups > 20, "corpus exercised too few lookup queries");
    assert!(anon > 20, "corpus exercised too few anonymous sends");
}

#[test]
fn differential_agreement_slice_a() {
    check_slice(100);
}

#[test]
fn differential_agreement_slice_b() {
    check_slice(200);
}

#[test]
fn differential_agreement_slice_c() {
    check_slice(300);
}
