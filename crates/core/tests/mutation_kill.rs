//! Mutation kill: with `--features spec-mutations` the engine carries
//! six deliberately injected bugs, selectable one at a time at runtime.
//! This suite proves the differential/fuzz oracle has zero false
//! negatives over that set — a clean engine passes the exact same
//! schedule, and *every* injected bug produces a divergence or an
//! invariant breach.
//!
//! The mutation selector is process-global, so this file holds exactly
//! one `#[test]` and iterates the mutations serially.
#![cfg(feature = "spec-mutations")]

mod common;

use common::{assert_model_agrees, probe, run_fuzzed, TracedRun};
use octopus_core::mutation::{self, Mutation};
use octopus_core::{SchedulerKind, SecuritySim};
use octopus_sim::{Duration, SimTime};
use octopus_spec::check_invariants;

const SEED: u64 = 7;

fn fuzzed_probe() -> octopus_core::SimConfig {
    probe(SEED, (1, false, SchedulerKind::TimingWheel))
}

/// Divergences plus invariant breaches for a traced run.
fn flags_of(run: &TracedRun) -> Vec<String> {
    let rep = common::replay(run);
    let mut flags = rep.divergences.clone();
    flags.extend(check_invariants(&rep.state));
    flags
}

/// Replay the standard fuzzed schedule and report whether the oracle
/// flagged anything (divergence or invariant breach).
fn oracle_flags() -> (TracedRun, Vec<String>) {
    let (run, _) = run_fuzzed(fuzzed_probe());
    let flags = flags_of(&run);
    (run, flags)
}

#[test]
fn every_injected_engine_bug_is_caught() {
    // Benign baseline: the clean engine survives the full Byzantine
    // schedule without a single flag — so any flag below is caused by
    // the activated mutation, not by the harness.
    mutation::set_mutation(None);
    let (benign, benign_flags) = oracle_flags();
    assert!(
        benign_flags.is_empty(),
        "benign engine flagged: {benign_flags:?}"
    );
    assert_model_agrees(&benign, "benign engine");

    // Every mutation must be killed — zero false negatives.
    let mut kills = Vec::new();
    for &m in mutation::ALL {
        mutation::set_mutation(Some(m));
        let (_, flags) = oracle_flags();
        assert!(
            !flags.is_empty(),
            "mutation {m:?} survived the oracle (false negative)"
        );
        kills.push((m, flags.len()));
    }
    assert_eq!(kills.len(), mutation::ALL.len());

    // The injection rounds are not load-bearing for the forwarding
    // bugs: purely organic traffic catches those even on a short run.
    for m in [Mutation::ForwardWithoutReceipt, Mutation::MisrouteOnion] {
        mutation::set_mutation(Some(m));
        let mut sim = SecuritySim::new(fuzzed_probe());
        let mut acc = sim.begin();
        sim.advance_until(&mut acc, SimTime::ZERO + Duration::from_secs(6));
        let report = sim.finish(acc);
        let run = common::finish_traced(sim, report);
        assert!(
            !flags_of(&run).is_empty(),
            "mutation {m:?} survived organic traffic"
        );
    }

    // And the benign schedule stays clean after the sweep — the global
    // selector was restored, nothing leaked across runs.
    mutation::set_mutation(None);
    let (_, after) = oracle_flags();
    assert!(after.is_empty(), "selector leaked across runs: {after:?}");
}
