//! Shared harness for the reference-model oracle suites: the probe
//! configuration (a small, fast network with accelerated protocol
//! periods and tracing on), the shards × mode × backend cube, and the
//! seeded Byzantine injection rounds used by the fuzz oracle and the
//! mutation-kill suite.
//!
//! Each integration test binary links this module separately and uses a
//! subset of it, so unused-item lints are silenced wholesale.
#![allow(dead_code)]

use std::collections::BTreeSet;

use octopus_chord::SignedRoutingTable;
use octopus_core::messages::{receipt_bytes, ExitAction, Hop, ReceiptToken, Report};
use octopus_core::simnet::CA_ADDR;
use octopus_core::spec_adapter::replay_trace;
use octopus_core::{
    AttackKind, Msg, OctopusConfig, OnionPacket, SchedulerKind, SecuritySim, SimConfig, SimReport,
    TraceEvent,
};
use octopus_id::NodeId;
use octopus_sim::{Duration, SimTime};
use octopus_spec::{check_invariants, Replay};

/// One point of the acceptance cube: shard count, parallel windows,
/// scheduler backend.
pub type CubePoint = (usize, bool, SchedulerKind);

/// The full shards × {seq, par} × backend cube (12 points). Index 0 is
/// the 1-shard sequential timing-wheel baseline.
pub fn cube() -> Vec<CubePoint> {
    let mut points = Vec::new();
    for shards in [1usize, 2, 4] {
        for parallel in [false, true] {
            for kind in [SchedulerKind::TimingWheel, SchedulerKind::BinaryHeap] {
                points.push((shards, parallel, kind));
            }
        }
    }
    points
}

/// The probe network: 40 nodes, 12 simulated seconds, protocol periods
/// accelerated so a debug-build run still exercises walks, lookups,
/// onion relaying, receipts, surveillance and CA intake — with the
/// trace oracle recording.
pub fn probe(seed: u64, (shards, parallel, scheduler): CubePoint) -> SimConfig {
    let mut octopus = OctopusConfig::for_network(40);
    octopus.surveillance_every = Duration::from_secs(5);
    octopus.walk_every = Duration::from_secs(3);
    octopus.lookup_every = Duration::from_secs(4);
    octopus.trace = true;
    SimConfig {
        n: 40,
        malicious_fraction: 0.2,
        attack: AttackKind::LookupBias,
        attack_rate: 1.0,
        duration: Duration::from_secs(12),
        seed,
        shards,
        parallel,
        scheduler,
        octopus,
        ..SimConfig::default()
    }
}

/// Everything one traced run yields: the report, the recorded trace,
/// and the engine's final ground truth for cross-checking the model.
pub struct TracedRun {
    /// The simulation report (byte-comparable across cube points).
    pub report: SimReport,
    /// The recorded semantic trace, in deterministic control order.
    pub trace: Vec<(SimTime, TraceEvent)>,
    /// Live node ids at the end of the run (engine ground truth).
    pub live: BTreeSet<u64>,
    /// Revoked node ids at the end of the run (engine ground truth).
    pub revoked: BTreeSet<u64>,
}

/// Run a probe to completion and collect the trace and ground truth.
pub fn run_traced(cfg: SimConfig) -> TracedRun {
    let mut sim = SecuritySim::new(cfg);
    let report = sim.run();
    finish_traced(sim, report)
}

/// Collect trace and ground truth from a finished sim.
pub fn finish_traced(mut sim: SecuritySim, report: SimReport) -> TracedRun {
    let trace = sim.take_trace();
    let live = sim.live_ids().iter().map(|n| n.0).collect();
    let revoked = sim.revoked_ids().iter().map(|n| n.0).collect();
    TracedRun {
        report,
        trace,
        live,
        revoked,
    }
}

/// Replay a recorded trace through the reference model.
pub fn replay(run: &TracedRun) -> Replay {
    replay_trace(run.trace.iter().map(|(_, e)| e))
}

/// Assert a traced run agrees with the model completely: no
/// divergences, no invariant breaches, and final live/revoked ground
/// truth matching the model's state.
pub fn assert_model_agrees(run: &TracedRun, what: &str) -> Replay {
    let rep = replay(run);
    assert!(
        rep.divergences.is_empty(),
        "{what}: model diverged from engine: {:?}",
        rep.divergences
    );
    let broken = check_invariants(&rep.state);
    assert!(broken.is_empty(), "{what}: invariants breached: {broken:?}");
    assert_eq!(rep.state.live, run.live, "{what}: live sets disagree");
    assert_eq!(
        rep.state.revoked, run.revoked,
        "{what}: revoked sets disagree"
    );
    rep
}

// ---------------------------------------------------------------------
// Byzantine injection rounds (fuzz oracle + mutation kill).
// ---------------------------------------------------------------------

/// Flow-id namespace for injected onions, far above the engine's
/// counter-derived organic flow ids.
pub const INJECT_FLOW_BASE: u64 = 0xF1ED_0000_0000_0000;

/// What a sequence of injection rounds put on the wire, so assertions
/// know which rejection evidence must appear in the trace.
#[derive(Debug, Default)]
pub struct InjectStats {
    /// Receipts signed by the wrong node for a live awaited flow.
    pub wrong_signer_receipts: usize,
    /// Receipts with the awaited identity but a garbage signature
    /// (accepted by engine AND model: the node-side check is
    /// identity-only; signatures are verified by the CA).
    pub garbage_sig_receipts: usize,
    /// Lookup replies carrying a table signed under an expired cert.
    pub stale_tables: usize,
    /// Lookup replies carrying another node's validly signed table.
    pub wrong_owner_tables: usize,
    /// Dropper reports whose attached initiator receipt is forged.
    pub forged_receipt_reports: usize,
    /// Reports presenting a certificate for the wrong identity.
    pub bad_cert_reports: usize,
    /// Reports presenting an expired certificate.
    pub stale_cert_reports: usize,
    /// Truncated onions (empty remaining route) fired at honest nodes.
    pub truncated_onions: usize,
    /// Onions with a fabricated remaining route.
    pub routed_onions: usize,
    /// Byte-for-byte replays of a previously injected onion.
    pub replayed_onions: usize,
    /// Spoofed/replayed revocation broadcasts.
    pub spoofed_revocations: usize,
}

/// State carried across injection rounds (the replay corpus).
#[derive(Debug, Default)]
pub struct Injector {
    /// Totals of everything injected so far.
    pub stats: InjectStats,
    /// Last injected routed onion, replayed verbatim next round.
    last_onion: Option<(NodeId, NodeId, OnionPacket)>,
    /// Monotonic counter for injected flow ids.
    next_flow: u64,
}

impl Injector {
    fn flow(&mut self) -> u64 {
        self.next_flow += 1;
        INJECT_FLOW_BASE + self.next_flow
    }

    /// One seeded round of Byzantine mutations, injected while the sim
    /// is paused at `now_secs`. Every choice is a deterministic
    /// function of current sim state, so identical schedules replay
    /// identically at every cube point.
    pub fn round(&mut self, sim: &mut SecuritySim, now_secs: u64) {
        let malicious: Vec<NodeId> = sim.initial_malicious_ids().iter().copied().collect();
        let live = sim.live_ids();
        let honest: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|n| !malicious.contains(n))
            .collect();
        let (Some(&attacker), true) = (malicious.first(), honest.len() >= 2) else {
            return;
        };
        let victim = honest[now_secs as usize % honest.len()];
        let second = honest[(now_secs as usize + 1) % honest.len()];
        let attacker_kp = sim.keypair_of(attacker).expect("keys exist");
        let attacker_cert = sim.cert_of(attacker).expect("cert exists");

        // (1) Forged receipts against any flow caught in flight: one
        // with the wrong signer (must be rejected), one with the right
        // identity but a garbage signature (accepted — the node-side
        // check is identity-only by design; the model mirrors that).
        for &h in &honest {
            let flows = sim
                .with_peer(h, |p| p.awaiting_receipt_flows())
                .unwrap_or_default();
            let Some(&(flow, next)) = flows.first() else {
                continue;
            };
            if next != attacker {
                let sig = attacker_kp.sign(&receipt_bytes(flow));
                let token = ReceiptToken {
                    flow,
                    signer: attacker,
                    sig,
                };
                sim.inject(attacker, h, Msg::Receipt { token });
                self.stats.wrong_signer_receipts += 1;
            }
            let token = ReceiptToken {
                flow,
                signer: next,
                sig: octopus_crypto::Signature(0),
            };
            sim.inject(next, h, Msg::Receipt { token });
            self.stats.garbage_sig_receipts += 1;
        }

        // (2) Stale-certificate and stolen tables on pending lookups:
        // the awaited owner's real table, but signed under an expired
        // certificate — and another node's validly signed table.
        for &h in &honest {
            let pending = sim
                .with_peer(h, |p| p.pending_lookup_queries())
                .unwrap_or_default();
            let Some(&(flow, owner)) = pending.first() else {
                continue;
            };
            if let (Some(table), Some(kp), Some(stale)) = (
                sim.with_peer(owner, |p| p.routing_table()),
                sim.keypair_of(owner),
                sim.issue_cert_expiring(owner, 1),
            ) {
                let signed = SignedRoutingTable::sign(table, now_secs, &kp, stale);
                sim.inject(
                    attacker,
                    h,
                    Msg::OnionReply {
                        flow,
                        payload: Box::new(Msg::Table {
                            req: flow,
                            table: Box::new(signed),
                        }),
                    },
                );
                self.stats.stale_tables += 1;
            }
            if let Some(&(flow2, owner2)) = pending.get(1) {
                if owner2 != attacker {
                    if let Some(table) = sim.with_peer(attacker, |p| p.routing_table()) {
                        let signed =
                            SignedRoutingTable::sign(table, now_secs, &attacker_kp, attacker_cert);
                        sim.inject(
                            attacker,
                            h,
                            Msg::OnionReply {
                                flow: flow2,
                                payload: Box::new(Msg::Table {
                                    req: flow2,
                                    table: Box::new(signed),
                                }),
                            },
                        );
                        self.stats.wrong_owner_tables += 1;
                    }
                }
            }
        }

        // (3) A Dropper report with a valid reporter cert but a forged
        // initiator receipt: intake passes, the CA's receipt
        // verification must reject the garbage signature.
        let forged = ReceiptToken {
            flow: self.flow(),
            signer: victim,
            sig: octopus_crypto::Signature(0),
        };
        sim.inject(
            attacker,
            CA_ADDR,
            Msg::Report(Box::new(Report::Dropper {
                reporter: attacker,
                reporter_cert: attacker_cert,
                flow: forged.flow,
                relays: vec![victim],
                target: second,
                initiator_receipt: Some(forged),
            })),
        );
        self.stats.forged_receipt_reports += 1;

        // (4) Reports with broken reporter certificates: one presenting
        // another node's cert, one presenting a genuinely expired cert
        // issued by the real authority. Intake must refuse both.
        if let Some(stolen) = sim.cert_of(victim) {
            sim.inject(
                attacker,
                CA_ADDR,
                Msg::Report(Box::new(Report::Dropper {
                    reporter: attacker,
                    reporter_cert: stolen,
                    flow: self.flow(),
                    relays: vec![victim],
                    target: second,
                    initiator_receipt: None,
                })),
            );
            self.stats.bad_cert_reports += 1;
        }
        if now_secs > 2 {
            if let Some(expired) = sim.issue_cert_expiring(attacker, 1) {
                sim.inject(
                    attacker,
                    CA_ADDR,
                    Msg::Report(Box::new(Report::Dropper {
                        reporter: attacker,
                        reporter_cert: expired,
                        flow: self.flow(),
                        relays: vec![victim],
                        target: second,
                        initiator_receipt: None,
                    })),
                );
                self.stats.stale_cert_reports += 1;
            }
        }

        // (5) Onion mutations: a truncated onion (no layers left — the
        // victim becomes an exit for a flow it never agreed to carry),
        // a fabricated routed onion, and a byte-for-byte replay of the
        // previous round's routed onion (a replayed hop).
        let truncated = OnionPacket {
            flow: self.flow(),
            route: Vec::new(),
            action: ExitAction::QueryTable { target: second },
        };
        sim.inject(attacker, victim, Msg::Onion(truncated));
        self.stats.truncated_onions += 1;

        let routed = OnionPacket {
            flow: self.flow(),
            route: vec![Hop {
                node: second,
                delay: false,
            }],
            action: ExitAction::QueryTable { target: victim },
        };
        sim.inject(attacker, victim, Msg::Onion(routed.clone()));
        self.stats.routed_onions += 1;
        if let Some((from, to, packet)) = self.last_onion.take() {
            if live.contains(&to) {
                sim.inject(from, to, Msg::Onion(packet));
                self.stats.replayed_onions += 1;
            }
        }
        self.last_onion = Some((attacker, victim, routed));

        // (6) A spoofed revocation broadcast naming a malicious node the
        // CA has not (necessarily) convicted: a replay/forgery of the
        // CA's own broadcast channel. Honest nodes track it either way;
        // the oracle checks the purge actually happened.
        sim.inject(
            CA_ADDR,
            victim,
            Msg::Revocation {
                revoked: vec![attacker],
            },
        );
        self.stats.spoofed_revocations += 1;
    }
}

/// Drive a probe with one Byzantine injection round per simulated
/// second, returning the traced run and the injection totals.
pub fn run_fuzzed(cfg: SimConfig) -> (TracedRun, InjectStats) {
    let end_secs = cfg.duration.as_secs_f64() as u64;
    let mut sim = SecuritySim::new(cfg);
    let mut acc = sim.begin();
    let mut inj = Injector::default();
    for s in 1..end_secs {
        sim.advance_until(&mut acc, SimTime::ZERO + Duration::from_secs(s));
        inj.round(&mut sim, s);
    }
    let report = sim.finish(acc);
    (finish_traced(sim, report), inj.stats)
}

/// Count trace events matching a predicate.
pub fn count(run: &TracedRun, pred: impl Fn(&TraceEvent) -> bool) -> usize {
    run.trace.iter().filter(|(_, e)| pred(e)).count()
}
