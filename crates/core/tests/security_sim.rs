//! End-to-end tests of the event-based security simulator — miniature
//! versions of the paper's §5 experiments (small N, short horizon, so
//! they run quickly in debug builds; the bench harness runs the full
//! N = 1000 / 1000 s configurations).

use octopus_core::{AttackKind, SecuritySim, SimConfig};
use octopus_sim::Duration;

fn base(attack: AttackKind, seed: u64) -> SimConfig {
    SimConfig {
        n: 150,
        malicious_fraction: 0.2,
        attack,
        attack_rate: 1.0,
        consistent_collusion: 0.5,
        mean_lifetime: None,
        duration: Duration::from_secs(240),
        seed,
        octopus: octopus_core::OctopusConfig::for_network(150),
        lookups_enabled: true,
        scheduler: Default::default(),
        shards: 1,
        parallel: false,
        pool_threads: 0,
    }
}

#[test]
fn passive_network_stays_intact() {
    let mut sim = SecuritySim::new(base(AttackKind::Passive, 1));
    let report = sim.run();
    assert_eq!(report.revocations, 0, "no attacks → no revocations");
    assert_eq!(report.false_positives, 0);
    assert!(report.completed_lookups > 100, "lookups must run");
    let biased = report.biased_lookups as f64 / report.completed_lookups.max(1) as f64;
    assert!(
        biased < 0.05,
        "honest network must resolve lookups correctly (biased = {biased})"
    );
    assert!(report.walks_ok > 50, "random walks must complete");
    // malicious fraction never changes without attacks
    assert!(
        (report.final_malicious_fraction() - 0.2).abs() < 0.01,
        "passive adversary is never evicted"
    );
}

#[test]
fn lookup_bias_attackers_identified() {
    let mut sim = SecuritySim::new(base(AttackKind::LookupBias, 2));
    let report = sim.run();
    assert_eq!(report.false_positives, 0, "no honest node may be revoked");
    // the paper drains all attackers in ~20-30 min; this 4-minute
    // mini-run must show the curve well underway (the full-scale bench
    // binaries reproduce the complete drain)
    assert!(
        report.final_malicious_fraction() <= 0.12,
        "most attackers must be identified (remaining = {})",
        report.final_malicious_fraction()
    );
    assert!(
        report.biased_lookups > 0,
        "attack must bias some lookups before eviction"
    );
    // the curve must be monotonically non-increasing after its peak
    let fracs: Vec<f64> = report.malicious_fraction.iter().map(|&(_, f)| f).collect();
    assert!(fracs.first().copied().unwrap_or(0.0) >= fracs.last().copied().unwrap_or(1.0));
}

#[test]
fn bias_attack_at_half_rate_still_caught() {
    let mut cfg = base(AttackKind::LookupBias, 3);
    cfg.attack_rate = 0.5;
    let mut sim = SecuritySim::new(cfg);
    let report = sim.run();
    assert_eq!(report.false_positives, 0);
    assert!(
        report.final_malicious_fraction() <= 0.15,
        "half-rate attackers are caught more slowly but still caught ({})",
        report.final_malicious_fraction()
    );
}

#[test]
fn finger_manipulation_attackers_identified() {
    let mut sim = SecuritySim::new(base(AttackKind::FingerManipulation, 4));
    let report = sim.run();
    assert_eq!(report.false_positives, 0, "FP must be zero");
    assert!(
        report.final_malicious_fraction() < 0.15,
        "manipulators must be identified (remaining = {})",
        report.final_malicious_fraction()
    );
}

#[test]
fn finger_pollution_attackers_identified() {
    let mut sim = SecuritySim::new(base(AttackKind::FingerPollution, 5));
    let report = sim.run();
    assert_eq!(report.false_positives, 0);
    assert!(
        report.final_malicious_fraction() < 0.15,
        "polluters must be identified (remaining = {})",
        report.final_malicious_fraction()
    );
}

#[test]
fn selective_dos_droppers_identified() {
    let mut sim = SecuritySim::new(base(AttackKind::SelectiveDos, 6));
    let report = sim.run();
    assert_eq!(report.false_positives, 0);
    assert!(
        report.final_malicious_fraction() < 0.15,
        "droppers must be identified (remaining = {})",
        report.final_malicious_fraction()
    );
}

#[test]
fn churn_does_not_cause_false_positives() {
    let mut cfg = base(AttackKind::LookupBias, 7);
    cfg.mean_lifetime = Some(Duration::from_secs(600)); // 10-minute λ
    let mut sim = SecuritySim::new(cfg);
    let report = sim.run();
    assert_eq!(
        report.false_positives, 0,
        "churn must never get honest nodes revoked (Table 2's FP = 0)"
    );
    assert!(report.final_malicious_fraction() <= 0.15);
}

#[test]
fn deterministic_given_seed() {
    let r1 = SecuritySim::new(base(AttackKind::LookupBias, 9)).run();
    let r2 = SecuritySim::new(base(AttackKind::LookupBias, 9)).run();
    assert_eq!(r1.revocations, r2.revocations);
    assert_eq!(r1.completed_lookups, r2.completed_lookups);
    assert_eq!(r1.biased_lookups, r2.biased_lookups);
    assert_eq!(r1.malicious_fraction, r2.malicious_fraction);
}

// ---- long-duration cases ----
//
// The cases below replay the paper's full horizons and take minutes in
// debug builds, so they are `#[ignore]`d to keep `cargo test -q` fast
// and deterministic. Run them explicitly with:
//
//     cargo test --release -p octopus-core --test security_sim -- --ignored

/// The complete §5.2 drain: over the paper's full horizon the curve
/// must reach its floor — clearly below the 4-minute mini-run bound
/// (0.12) — and *hold* it. (At N = 150 this reproduction plateaus at a
/// handful of never-exercised attackers rather than the paper's ~0; the
/// bound documents that floor.)
#[test]
#[ignore = "full 1000 s horizon; run with -- --ignored (see module comment)"]
fn full_horizon_bias_attack_drains_to_floor() {
    let mut cfg = base(AttackKind::LookupBias, 11);
    cfg.duration = Duration::from_secs(1000);
    let mut sim = SecuritySim::new(cfg);
    let report = sim.run();
    assert_eq!(report.false_positives, 0);
    assert!(
        report.final_malicious_fraction() <= 0.08,
        "after the full horizon the drain must be at its floor ({})",
        report.final_malicious_fraction()
    );
    // once down, the curve never rebounds (revocation is permanent)
    let fracs: Vec<f64> = report.malicious_fraction.iter().map(|&(_, f)| f).collect();
    let min = fracs.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        (fracs.last().copied().unwrap_or(1.0) - min).abs() < 1e-9,
        "the final fraction must equal the curve minimum"
    );
}

/// Long-horizon churn soak: Table 2's FP = 0 must hold over the paper's
/// full duration, not just the 4-minute mini-run.
#[test]
#[ignore = "full 1000 s horizon; run with -- --ignored (see module comment)"]
fn full_horizon_churn_stays_false_positive_free() {
    let mut cfg = base(AttackKind::LookupBias, 12);
    cfg.duration = Duration::from_secs(1000);
    cfg.mean_lifetime = Some(Duration::from_secs(600));
    let mut sim = SecuritySim::new(cfg);
    let report = sim.run();
    assert_eq!(report.false_positives, 0);
}
