//! The Byzantine fuzz oracle: seeded adversarial `Msg` mutations —
//! truncated onion layers, forged receipts, stale and stolen
//! certificates, replayed hops, spoofed revocations — are injected into
//! a live run, and the engine must reject exactly what the reference
//! model rejects. Zero divergences means every accept/reject decision
//! the engine made under attack matches the model's independent
//! recomputation; the per-kind assertions below additionally pin the
//! *direction* of the interesting decisions so a silently-degenerate
//! harness (nothing delivered, nothing checked) cannot pass.

mod common;

use common::{assert_model_agrees, count, probe, run_fuzzed, INJECT_FLOW_BASE};
use octopus_core::{SchedulerKind, TraceEvent};
use octopus_spec::ReportKind;

/// Fuzzed seeds: enough schedules that every injection kind lands on
/// live state (in-flight receipts and pending lookups are caught
/// opportunistically) while staying debug-build fast.
const SEEDS: std::ops::Range<u64> = 40..48;

#[test]
fn byzantine_mutations_rejected_in_agreement_with_model() {
    let mut wrong_signer = 0usize;
    let mut rejected_receipts = 0usize;
    let mut stale_tables = 0usize;
    let mut bad_tables = 0usize;
    let mut bad_cert_intakes = 0usize;
    let mut forged_ca_receipts = 0usize;
    let mut injected_onions = 0usize;
    let mut tracked_revocations = 0usize;
    for seed in SEEDS {
        let (run, stats) = run_fuzzed(probe(seed, (1, false, SchedulerKind::TimingWheel)));
        assert_model_agrees(&run, &format!("fuzzed seed {seed}"));

        // Deterministically injected kinds must have fired every round.
        assert!(stats.forged_receipt_reports >= 8, "seed {seed}: {stats:?}");
        assert!(stats.bad_cert_reports >= 8, "seed {seed}: {stats:?}");
        assert!(stats.stale_cert_reports >= 8, "seed {seed}: {stats:?}");
        assert!(stats.truncated_onions >= 8, "seed {seed}: {stats:?}");
        assert!(stats.replayed_onions >= 7, "seed {seed}: {stats:?}");
        assert!(stats.spoofed_revocations >= 8, "seed {seed}: {stats:?}");

        wrong_signer += stats.wrong_signer_receipts;
        stale_tables += stats.stale_tables;
        rejected_receipts += count(&run, |e| {
            matches!(
                e,
                TraceEvent::ReceiptChecked {
                    accepted: false,
                    ..
                }
            )
        });
        // A failed-signature table can only come from the harness:
        // organic tables are always validly signed (even malicious
        // nodes hold real certificates). Both broken-table kinds must
        // be rejected.
        bad_tables += count(&run, |e| {
            matches!(
                e,
                TraceEvent::TableChecked { sig_ok: false, accepted, .. } if !accepted
            )
        });
        assert_eq!(
            count(&run, |e| matches!(
                e,
                TraceEvent::TableChecked {
                    sig_ok: false,
                    accepted: true,
                    ..
                }
            )),
            0,
            "seed {seed}: engine accepted a table the model rejects"
        );
        // Broken-certificate reports must be refused at intake…
        bad_cert_intakes += count(&run, |e| {
            matches!(
                e,
                TraceEvent::ReportIntake {
                    kind: ReportKind::Dropper,
                    cert_ok: false,
                    accepted: false,
                    ..
                }
            )
        });
        assert_eq!(
            count(&run, |e| matches!(
                e,
                TraceEvent::ReportIntake {
                    cert_ok: false,
                    accepted: true,
                    ..
                }
            )),
            0,
            "seed {seed}: CA accepted a report with a broken certificate"
        );
        // …while the forged-receipt report passes intake (its cert is
        // genuine) and dies at the CA's signature check.
        forged_ca_receipts += count(&run, |e| {
            matches!(
                e,
                TraceEvent::CaReceiptCheck {
                    sig_ok: false,
                    accepted: false,
                    ..
                }
            )
        });
        assert_eq!(
            count(&run, |e| matches!(
                e,
                TraceEvent::CaReceiptCheck {
                    sig_ok: false,
                    accepted: true,
                    ..
                }
            )),
            0,
            "seed {seed}: CA accepted a forged receipt"
        );
        // Injected onions (truncated + routed + replayed) are processed
        // by honest nodes under the oracle's eye: every one appears in
        // the trace under the harness flow namespace.
        injected_onions += count(&run, |e| {
            matches!(
                e,
                TraceEvent::OnionProcessed { flow, .. } if *flow >= INJECT_FLOW_BASE
            )
        });
        tracked_revocations += count(&run, |e| {
            matches!(e, TraceEvent::RevocationSeen { tracked: true, .. })
        });
        assert_eq!(
            count(&run, |e| matches!(
                e,
                TraceEvent::RevocationSeen { tracked: false, .. }
            )),
            0,
            "seed {seed}: a node failed to track a revocation broadcast"
        );
    }
    // Opportunistic kinds (they need state caught in flight) must land
    // somewhere across the corpus, and their rejections must show up.
    assert!(wrong_signer > 0, "no wrong-signer receipts were injected");
    assert!(rejected_receipts > 0, "no receipt was ever rejected");
    assert!(stale_tables > 0, "no stale-cert tables were injected");
    assert!(bad_tables > 0, "no bad table rejection was observed");
    assert!(bad_cert_intakes > 0, "no bad-cert report was refused");
    assert!(forged_ca_receipts > 0, "no forged CA receipt was refused");
    assert!(injected_onions > 0, "no injected onion was processed");
    assert!(tracked_revocations > 0, "no revocation broadcast was seen");
}

/// The injections compose with the execution cube: the same fuzzed
/// schedule on a 2-shard parallel binary-heap engine reproduces the
/// 1-shard sequential run byte for byte — report and trace.
#[test]
fn fuzzed_runs_deterministic_across_modes() {
    for seed in [44u64, 45] {
        let (seq, seq_stats) = run_fuzzed(probe(seed, (1, false, SchedulerKind::TimingWheel)));
        let (par, par_stats) = run_fuzzed(probe(seed, (2, true, SchedulerKind::BinaryHeap)));
        assert_eq!(
            format!("{seq_stats:?}"),
            format!("{par_stats:?}"),
            "seed {seed}: injection schedules diverged across modes"
        );
        assert_eq!(
            seq.report, par.report,
            "seed {seed}: fuzzed report diverged"
        );
        assert_eq!(seq.trace, par.trace, "seed {seed}: fuzzed trace diverged");
    }
}
