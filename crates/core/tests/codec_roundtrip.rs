//! Wire-codec hardening: every [`Msg`] kind roundtrips through the
//! framed codec, and a corpus of malformed frames (truncations, bit
//! flips, forged lengths, hostile nesting, pure noise) is rejected with
//! an error — never a panic.

use octopus_chord::{RoutingTable, SignedRoutingTable};
use octopus_core::codec::MAX_ONION_DEPTH;
use octopus_core::messages::{ExitAction, Hop, Msg, OnionPacket, ReceiptToken, Report};
use octopus_crypto::{Certificate, CertificateAuthority, KeyPair, PublicKey, Signature};
use octopus_id::NodeId;
use octopus_net::{decode_frame, encode_frame, DecodeError, FrameError, FrameHeader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn header() -> FrameHeader {
    FrameHeader {
        from: NodeId(0x1111_2222_3333_4444),
        to: NodeId(0x5555_6666_7777_8888),
    }
}

struct Fixture {
    ca: CertificateAuthority,
    kp: KeyPair,
    cert: Certificate,
}

fn fixture(id: NodeId) -> Fixture {
    let mut rng = StdRng::seed_from_u64(id.0 ^ 0xc0dec);
    let mut ca = CertificateAuthority::new(&mut rng);
    let kp = KeyPair::generate(&mut rng);
    let cert = ca.issue(id, 7, kp.public(), u64::MAX);
    Fixture { ca, kp, cert }
}

fn signed_table(rng: &mut StdRng) -> SignedRoutingTable {
    let owner = NodeId(rng.gen());
    let f = fixture(owner);
    let table = RoutingTable {
        owner,
        fingers: (0..rng.gen_range(0..5))
            .map(|_| NodeId(rng.gen()))
            .collect(),
        successors: (0..rng.gen_range(0..5))
            .map(|_| NodeId(rng.gen()))
            .collect(),
        predecessors: (0..rng.gen_range(0..3))
            .map(|_| NodeId(rng.gen()))
            .collect(),
    };
    SignedRoutingTable::sign(table, rng.gen_range(0..1_000_000), &f.kp, f.cert)
}

fn receipt(rng: &mut StdRng) -> ReceiptToken {
    ReceiptToken {
        flow: rng.gen(),
        signer: NodeId(rng.gen()),
        sig: Signature(rng.gen()),
    }
}

fn cert(rng: &mut StdRng) -> Certificate {
    Certificate {
        node_id: NodeId(rng.gen()),
        address: rng.gen(),
        public_key: PublicKey {
            n: rng.gen(),
            e: rng.gen(),
        },
        expires_at: rng.gen(),
        ca_signature: Signature(rng.gen()),
    }
}

/// One seeded instance of every `Msg` variant (and every nested enum
/// arm), so the corpus below covers the whole tag space.
fn all_variants(seed: u64) -> Vec<Msg> {
    let rng = &mut StdRng::seed_from_u64(seed);
    vec![
        Msg::GetSuccList { req: rng.gen() },
        Msg::SuccList {
            req: rng.gen(),
            list: Box::new(signed_table(rng)),
        },
        Msg::GetPredList { req: rng.gen() },
        Msg::PredList {
            req: rng.gen(),
            list: Box::new(signed_table(rng)),
        },
        Msg::GetTable { req: rng.gen() },
        Msg::Table {
            req: rng.gen(),
            table: Box::new(signed_table(rng)),
        },
        Msg::Onion(OnionPacket {
            flow: rng.gen(),
            route: vec![
                Hop {
                    node: NodeId(rng.gen()),
                    delay: false,
                },
                Hop {
                    node: NodeId(rng.gen()),
                    delay: true,
                },
            ],
            action: ExitAction::QueryTable {
                target: NodeId(rng.gen()),
            },
        }),
        Msg::Onion(OnionPacket {
            flow: rng.gen(),
            route: vec![],
            action: ExitAction::Delegate {
                seed: rng.gen(),
                length: 3,
                fingers: vec![NodeId(rng.gen()), NodeId(rng.gen())],
            },
        }),
        Msg::OnionReply {
            flow: rng.gen(),
            payload: Box::new(Msg::Table {
                req: rng.gen(),
                table: Box::new(signed_table(rng)),
            }),
        },
        Msg::OnionReply {
            flow: rng.gen(),
            payload: Box::new(Msg::WalkResult {
                flow: rng.gen(),
                tables: vec![signed_table(rng)],
            }),
        },
        Msg::Receipt {
            token: receipt(rng),
        },
        Msg::WalkResult {
            flow: rng.gen(),
            tables: vec![signed_table(rng), signed_table(rng)],
        },
        Msg::Report(Box::new(Report::ListOmission {
            reporter: NodeId(rng.gen()),
            reporter_cert: cert(rng),
            omitted: NodeId(rng.gen()),
            accused_list: Box::new(signed_table(rng)),
        })),
        Msg::Report(Box::new(Report::FingerManipulation {
            reporter: NodeId(rng.gen()),
            reporter_cert: cert(rng),
            table: Box::new(signed_table(rng)),
            finger_index: rng.gen_range(0..8),
            finger_pred_list: Box::new(signed_table(rng)),
            pred_succ_list: Box::new(signed_table(rng)),
        })),
        Msg::Report(Box::new(Report::Dropper {
            reporter: NodeId(rng.gen()),
            reporter_cert: cert(rng),
            flow: rng.gen(),
            relays: vec![NodeId(rng.gen()), NodeId(rng.gen()), NodeId(rng.gen())],
            target: NodeId(rng.gen()),
            initiator_receipt: Some(receipt(rng)),
        })),
        Msg::Report(Box::new(Report::Dropper {
            reporter: NodeId(rng.gen()),
            reporter_cert: cert(rng),
            flow: rng.gen(),
            relays: vec![],
            target: NodeId(rng.gen()),
            initiator_receipt: None,
        })),
        Msg::CaProofRequest { case: rng.gen() },
        Msg::CaProofReply {
            case: rng.gen(),
            own_list: Box::new(signed_table(rng)),
            proofs: vec![signed_table(rng)],
        },
        Msg::CaReceiptRequest {
            case: rng.gen(),
            flow: rng.gen(),
        },
        Msg::CaReceiptReply {
            case: rng.gen(),
            flow: rng.gen(),
            receipt: Some(receipt(rng)),
        },
        Msg::CaReceiptReply {
            case: rng.gen(),
            flow: rng.gen(),
            receipt: None,
        },
        Msg::CaProvRequest {
            case: rng.gen(),
            slot: rng.gen_range(0..16),
        },
        Msg::CaProvReply {
            case: rng.gen(),
            prov: Some(Box::new(signed_table(rng))),
        },
        Msg::CaProvReply {
            case: rng.gen(),
            prov: None,
        },
        Msg::Revocation {
            revoked: vec![NodeId(rng.gen()), NodeId(rng.gen())],
        },
        Msg::Revocation { revoked: vec![] },
    ]
}

#[test]
fn every_variant_roundtrips() {
    for seed in 0..8u64 {
        for msg in all_variants(seed) {
            let bytes = encode_frame(header(), &msg);
            let (h, back): (FrameHeader, Msg) = decode_frame(&bytes).expect("valid frame decodes");
            assert_eq!(h, header());
            assert_eq!(back, msg, "seed {seed}");
        }
    }
}

#[test]
fn signatures_survive_the_wire() {
    // the decode path reconstructs tables in canonical form, so a table
    // that crossed the wire still verifies against the CA key
    let mut rng = StdRng::seed_from_u64(42);
    let owner = NodeId(rng.gen());
    let f = fixture(owner);
    let table = RoutingTable {
        owner,
        fingers: vec![NodeId(rng.gen())],
        successors: vec![NodeId(rng.gen()), NodeId(rng.gen())],
        predecessors: vec![NodeId(rng.gen())],
    };
    let signed = SignedRoutingTable::sign(table, 99, &f.kp, f.cert);
    let msg = Msg::Table {
        req: 1,
        table: Box::new(signed),
    };
    let bytes = encode_frame(header(), &msg);
    let (_, back): (_, Msg) = decode_frame(&bytes).expect("decodes");
    let Msg::Table { table, .. } = back else {
        panic!("wrong variant");
    };
    table
        .verify(f.ca.public_key(), 99)
        .expect("signature valid after roundtrip");
}

#[test]
fn every_truncation_rejected() {
    for msg in all_variants(1) {
        let bytes = encode_frame(header(), &msg);
        for cut in 0..bytes.len() {
            assert!(
                decode_frame::<Msg>(&bytes[..cut]).is_err(),
                "truncation at {cut} of {} accepted",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_byte_flip_rejected() {
    // magic, version, length, checksum, header and payload corruption
    // all land in some FrameError — the checksum covers everything past
    // the length field, and the prelude fields are validated directly
    for msg in all_variants(2) {
        let bytes = encode_frame(header(), &msg);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_frame::<Msg>(&bad).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }
}

#[test]
fn trailing_bytes_rejected() {
    for msg in all_variants(3) {
        let mut bytes = encode_frame(header(), &msg);
        // extend the payload *and* fix up length + checksum so only the
        // payload-level trailing-byte check can catch it
        bytes.push(0xee);
        let claimed = bytes.len() as u32; // garbage, fails length check
        bytes[6..10].copy_from_slice(&claimed.to_be_bytes());
        assert!(decode_frame::<Msg>(&bytes).is_err());
    }
}

#[test]
fn hostile_onion_nesting_rejected() {
    // nest far past the guard; decode must refuse, not recurse to death
    let mut msg = Msg::GetTable { req: 1 };
    for _ in 0..(MAX_ONION_DEPTH + 8) {
        msg = Msg::OnionReply {
            flow: 7,
            payload: Box::new(msg),
        };
    }
    let bytes = encode_frame(header(), &msg);
    match decode_frame::<Msg>(&bytes) {
        Err(FrameError::BadPayload(DecodeError::TooDeep)) => {}
        other => panic!("expected TooDeep, got {other:?}"),
    }
}

#[test]
fn legitimate_onion_nesting_accepted() {
    let mut msg = Msg::GetTable { req: 1 };
    for _ in 0..MAX_ONION_DEPTH {
        msg = Msg::OnionReply {
            flow: 7,
            payload: Box::new(msg),
        };
    }
    let bytes = encode_frame(header(), &msg);
    let (_, back): (_, Msg) = decode_frame(&bytes).expect("within-bound nesting decodes");
    assert_eq!(back, msg);
}

#[test]
fn random_noise_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for _ in 0..2000 {
        let len = rng.gen_range(0..200);
        let noise: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // must return, not panic; odds of a valid checksum are ~2^-32
        let _ = decode_frame::<Msg>(&noise);
    }
}

#[test]
fn forged_sequence_lengths_rejected() {
    // a WalkResult claiming u32::MAX tables must die in seq_len before
    // any allocation happens
    let mut rng = StdRng::seed_from_u64(9);
    let msg = Msg::WalkResult {
        flow: 5,
        tables: vec![signed_table(&mut rng)],
    };
    let mut bytes = encode_frame(header(), &msg);
    // payload layout: tag(1) + flow(8) + count(4) + ...
    // frame prelude is 14 bytes, addresses 16 → payload starts at 30
    let count_at = 30 + 1 + 8;
    bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    // recompute the checksum so only the payload validation can reject
    let from = &bytes[14..22];
    let to = &bytes[22..30];
    let payload = &bytes[30..];
    let sum = fnv1a_32(&[from, to, payload]);
    let mut fixed = bytes.clone();
    fixed[10..14].copy_from_slice(&sum.to_be_bytes());
    match decode_frame::<Msg>(&fixed) {
        Err(FrameError::BadPayload(_)) => {}
        other => panic!("expected BadPayload, got {other:?}"),
    }
}

/// Mirror of the frame checksum, so corpus entries can forge
/// internally-consistent frames that only payload validation rejects.
fn fnv1a_32(chunks: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}
