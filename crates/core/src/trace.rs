//! Semantic trace events for the reference-model oracle.
//!
//! When [`crate::OctopusConfig::trace`] is on, honest nodes and the CA
//! emit one [`TraceEvent`] per protocol decision through the
//! deterministic control channel (`Control::Trace`), and the simulation
//! driver appends its own membership events (joins, kills, applied
//! revocations) in control order. The resulting `Vec<(SimTime,
//! TraceEvent)>` is the engine's claim of what it did; the
//! `octopus-spec` model independently recomputes every decision from
//! the recorded inputs and flags disagreement
//! ([`crate::spec_adapter::replay_trace`]).
//!
//! Emission rules that keep the trace a pure observation:
//!
//! * Node-side events come only from **honest** nodes — malicious
//!   behaviour is the adversary's business, not a contract violation.
//!   (`drops_flow` consumes no RNG for honest nodes, so the gate cannot
//!   shift seeded streams.)
//! * Emitting never consumes the node's RNG and never sends wire
//!   messages, so `trace: true` leaves reports byte-identical.
//! * Validity bits (`sig_ok`, `cert_ok`, …) are recomputed at the
//!   emission site with direct verify calls, independent of the code
//!   path that made the decision — which is what lets the oracle catch
//!   a broken decision path (see `crate::mutation`).

use octopus_id::NodeId;
use octopus_spec::ReportKind;

/// One semantic record of a protocol decision: the inputs the engine
/// saw plus the engine's claim of the outcome. The spec-crate twin of
/// this type is `octopus_spec::ModelEvent`; the adapter in
/// [`crate::spec_adapter`] converts between them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node entered the ground-truth membership (genesis or churn).
    NodeJoined {
        /// The joining node.
        node: NodeId,
    },
    /// A live node was killed by churn.
    NodeKilled {
        /// The dying node.
        node: NodeId,
    },
    /// The driver applied a CA revocation verdict: the node left the
    /// ground truth and its certificate is dead.
    RevocationApplied {
        /// The revoked node.
        node: NodeId,
    },
    /// An honest initiator launched an anonymous action and awaits a
    /// receipt from the first relay.
    AnonSent {
        /// The initiator.
        node: NodeId,
        /// The onion flow identifier.
        flow: u64,
        /// The first relay on the route.
        first: NodeId,
    },
    /// An honest relay processed one onion hop.
    OnionProcessed {
        /// The relay.
        node: NodeId,
        /// The previous hop.
        from: NodeId,
        /// The onion flow identifier.
        flow: u64,
        /// Next hop named by the packet's remaining route, if any.
        route_next: Option<NodeId>,
        /// Claim: a receipt went back to `from`.
        receipt_sent: bool,
        /// Claim: the peeled packet went to this node.
        forwarded_to: Option<NodeId>,
        /// Claim: this relay was the exit for the flow.
        exited: bool,
    },
    /// An honest node judged an incoming receipt token.
    ReceiptChecked {
        /// The node holding the expectation.
        node: NodeId,
        /// The message sender.
        from: NodeId,
        /// The flow the token covers.
        flow: u64,
        /// The claimed signer.
        signer: NodeId,
        /// Claim: accepted, wait cleared.
        accepted: bool,
    },
    /// An honest node's receipt deadline fired on a live expectation.
    ReceiptExpired {
        /// The node abandoning the wait.
        node: NodeId,
        /// The flow whose receipt never came.
        flow: u64,
    },
    /// An honest node (re-)queried a secure-lookup hop.
    LookupQuery {
        /// The initiator.
        node: NodeId,
        /// The initiator-local lookup id.
        lookup: u64,
        /// The table owner now awaited.
        target: NodeId,
    },
    /// An honest node judged an incoming signed routing table.
    TableChecked {
        /// The initiator.
        node: NodeId,
        /// The initiator-local lookup id.
        lookup: u64,
        /// The owner named by the table.
        owner: NodeId,
        /// The owner the engine awaits.
        awaiting: NodeId,
        /// Recomputed independently: certificate + signature verify.
        sig_ok: bool,
        /// Claim: table accepted, lookup advanced.
        accepted: bool,
    },
    /// An honest node received a revocation notice.
    RevocationSeen {
        /// The receiving node.
        node: NodeId,
        /// The revoked nodes listed in the notice.
        revoked: Vec<NodeId>,
        /// Claim: every listed node is now tracked as revoked locally.
        tracked: bool,
    },
    /// The CA ran the validity gate on a misbehaviour report.
    ReportIntake {
        /// Report variant.
        kind: ReportKind,
        /// The reporting node.
        reporter: NodeId,
        /// Recomputed: reporter certificate names the reporter and
        /// verifies.
        cert_ok: bool,
        /// Recomputed: the authority lists the reporter as revoked.
        reporter_revoked: bool,
        /// Recomputed: the report's signed evidence verifies.
        evidence_ok: bool,
        /// Claim: the gate passed and a case opened.
        accepted: bool,
    },
    /// The CA verified a receipt token as dropper-case evidence.
    CaReceiptCheck {
        /// The claimed signer.
        signer: NodeId,
        /// The relay that should have signed.
        expected_signer: NodeId,
        /// Recomputed: the token covers the case's flow.
        flow_ok: bool,
        /// Recomputed: the signature verifies under the signer's key.
        sig_ok: bool,
        /// Claim: accepted as valid evidence.
        accepted: bool,
    },
}
