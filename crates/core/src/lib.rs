//! The Octopus protocol — anonymous *and* secure DHT lookup.
//!
//! This crate implements the paper's primary contribution on top of the
//! substrates (`octopus-id`, `octopus-crypto`, `octopus-sim`,
//! `octopus-net`, `octopus-chord`):
//!
//! * **Anonymous paths** (§4.1, Fig. 1): lookup queries are relayed
//!   through pairs of anonymization relays selected by a verified
//!   two-phase random walk (Appendix I, [`walk`]), with onion layering.
//! * **Split queries and dummies** (§4.2): each query of a lookup takes
//!   its own anonymous path, and dummy queries blur the adversary's
//!   range-estimation observations ([`lookup`]).
//! * **Attacker identification** (§4.3–4.5): secret neighbor
//!   surveillance, successor-list proof queues, secret finger
//!   surveillance, and checked finger updates ([`node`], [`ca`]).
//! * **The CA** (§4.6): report investigation by proof-chain walking and
//!   certificate revocation ([`ca`]).
//! * **Selective-DoS defense** (Appendix II): receipts, witness probes
//!   and dropper identification ([`node`], [`ca`]).
//! * **The event-based security simulator** (§5): [`simnet::SecuritySim`]
//!   reproduces the paper's evaluation — malicious-fraction-over-time
//!   curves (Figs. 3, 4, 9), identification accuracy (Table 2) and CA
//!   workload (Fig. 7b) — on a sharded `octopus-net` world
//!   ([`SimConfig::shards`](simnet::SimConfig::shards)), with
//!   [`trial::TrialRunner`] fanning seeded trials across threads.
//!   Scheduler backend, thread count and shard count are pure speed
//!   knobs: fixed-seed reports are byte-identical at any setting.
//!
//! The adversary ([`adversary`]) is a first-class implementation:
//! colluding malicious nodes mount lookup bias, fingertable manipulation,
//! fingertable pollution and selective-DoS attacks at a configurable
//! attack rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod ca;
pub mod codec;
pub mod config;
pub mod lookup;
pub mod messages;
pub mod mutation;
pub mod node;
pub mod simnet;
pub mod spec_adapter;
pub mod surveillance;
pub mod trace;
pub mod trial;
pub mod walk;

pub use adversary::{AdversaryHandle, AdversaryState, AttackKind, ShardedAdversary};
pub use ca::CaNode;
pub use config::OctopusConfig;
pub use messages::{Msg, OnionPacket, Timer};
pub use node::OctopusNode;
pub use octopus_sim::SchedulerKind;
pub use simnet::{Actor, Control, RunAccum, SecuritySim, SimConfig, SimReport};
pub use trace::TraceEvent;
pub use trial::{trial_configs, TrialRunner};
