//! Secret surveillance and checked finger updates (§4.3–4.5).
//!
//! Three mechanisms share one machinery:
//!
//! * **Secret neighbor surveillance** (§4.3): X anonymously queries a
//!   random predecessor P and checks that X itself appears in P's
//!   returned successor list. P cannot distinguish the test from a real
//!   lookup query, so manipulating *any* query risks detection.
//! * **Secret finger surveillance** (§4.4): X picks a buffered signed
//!   fingertable of some Y, asks the suspect finger F′ for its
//!   predecessor list, then — after a short random delay — anonymously
//!   fetches a random predecessor P′₁'s successor list and looks for a
//!   node closer to the ideal finger id than F′.
//! * **Checked finger updates** (§4.5): the same two-step check is run on
//!   the result of every finger-update lookup before it is adopted.

use octopus_chord::{NextHop, SignedRoutingTable};
use octopus_id::{Key, NodeId};
use octopus_sim::Duration;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::messages::{Msg, Report, Timer};
use crate::node::{AnonPurpose, DirectPurpose, FingerLookup, NodeCtx, OctopusNode};
use crate::simnet::Control;

/// Where a finger check originated — determines the report filed on
/// violation and whether a candidate gets adopted on a pass.
#[derive(Clone, Debug)]
pub(crate) enum CheckOrigin {
    /// §4.4: checking finger `index` of a buffered signed table.
    Surveillance {
        /// Y's signed routing table under scrutiny.
        y_table: Box<SignedRoutingTable>,
        /// The finger index checked.
        index: u32,
    },
    /// §4.5: validating the result of a finger-update lookup before
    /// adopting it into slot `slot`.
    FingerUpdate {
        /// The signed table of the last lookup hop (the evidence that
        /// asserted F′ owns the target).
        evidence: Box<SignedRoutingTable>,
        /// Our finger slot the candidate would fill.
        slot: u32,
    },
}

/// An in-flight two-stage finger check.
#[derive(Clone, Debug)]
pub(crate) struct FingerCheck {
    /// The suspect finger F′.
    pub fprime: NodeId,
    /// The ideal finger id the slot should cover.
    pub ideal: Key,
    /// F′'s signed predecessor list (set after stage 1).
    pub fpred_list: Option<Box<SignedRoutingTable>>,
    /// The randomly selected predecessor P′₁ (set at stage 2).
    pub p1: Option<NodeId>,
    /// What triggered the check.
    pub origin: CheckOrigin,
}

impl OctopusNode {
    /// One surveillance round (every 60 s): one neighbor test plus one
    /// finger test.
    pub(crate) fn run_surveillance(&mut self, ctx: &mut NodeCtx<'_>) {
        self.neighbor_check(ctx);
        self.finger_surveillance_check(ctx);
    }

    /// §4.3: anonymously test a random predecessor.
    fn neighbor_check(&mut self, ctx: &mut NodeCtx<'_>) {
        let preds: Vec<NodeId> = self
            .predecessors
            .iter()
            .copied()
            .filter(|p| !self.revoked.contains(p) && *p != self.id)
            .collect();
        let Some(&target) = preds.as_slice().choose(ctx.rng()) else {
            return;
        };
        let Some((a, b)) = self.sample_relay_pair(ctx.rng()) else {
            return;
        };
        if a == target || b == target {
            return; // don't route the test through its own subject
        }
        self.send_anonymous_query(ctx, &[a, b], target, AnonPurpose::NeighborCheck { target });
    }

    /// §4.4: pick a buffered table and start a finger check on one of
    /// its fingers.
    fn finger_surveillance_check(&mut self, ctx: &mut NodeCtx<'_>) {
        let candidates: Vec<SignedRoutingTable> = self
            .table_buffer
            .iter()
            .filter(|t| t.owner() != self.id && !t.table.fingers.is_empty())
            .cloned()
            .collect();
        let Some(table) = candidates.as_slice().choose(ctx.rng()).cloned() else {
            return;
        };
        let index = ctx.rng().gen_range(0..table.table.fingers.len()) as u32;
        let fprime = table.table.fingers[index as usize];
        if fprime == table.owner() || fprime == self.id || self.revoked.contains(&fprime) {
            return;
        }
        let ideal = self.chord().finger_target(table.owner(), index);
        self.begin_finger_check(
            ctx,
            fprime,
            ideal,
            CheckOrigin::Surveillance {
                y_table: Box::new(table),
                index,
            },
        );
    }

    /// Start stage 1 of a finger check: ask F′ for its predecessor list.
    pub(crate) fn begin_finger_check(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        fprime: NodeId,
        ideal: Key,
        origin: CheckOrigin,
    ) {
        let check = self.fresh_req();
        self.checks.insert(
            check,
            FingerCheck {
                fprime,
                ideal,
                fpred_list: None,
                p1: None,
                origin,
            },
        );
        self.send_direct(
            ctx,
            fprime,
            |req| Msg::GetPredList { req },
            DirectPurpose::FingerPredList { check },
        );
    }

    /// Stage 1 reply: F′'s predecessor list arrived.
    pub(crate) fn on_finger_pred_list(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        check: u64,
        list: SignedRoutingTable,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        let Some(fc) = self.checks.get_mut(&check) else {
            return;
        };
        if list.owner() != fc.fprime || list.verify(self.ca_key, now).is_err() {
            self.checks.remove(&check);
            return;
        }
        fc.fpred_list = Some(Box::new(list));
        // "after a short random period of time" (§4.4) — decorrelates the
        // pred-list request from the consistency query
        let delay = Duration::from_millis(ctx.rng().gen_range(500..3000));
        ctx.set_timer(delay, Timer::FingerCheckStage2 { check });
    }

    /// Stage 2: anonymously query a random predecessor P′₁ of F′.
    pub(crate) fn finger_check_stage2(&mut self, ctx: &mut NodeCtx<'_>, check: u64) {
        let Some(fc) = self.checks.get(&check) else {
            return;
        };
        let Some(list) = fc.fpred_list.as_ref() else {
            self.checks.remove(&check);
            return;
        };
        let fprime = fc.fprime;
        let preds: Vec<NodeId> = list
            .table
            .predecessors
            .iter()
            .copied()
            .filter(|p| *p != self.id && *p != fprime && !self.revoked.contains(p))
            .collect();
        let Some(&p1) = preds.as_slice().choose(ctx.rng()) else {
            self.checks.remove(&check);
            return;
        };
        let Some((a, b)) = self.sample_relay_pair(ctx.rng()) else {
            self.checks.remove(&check);
            return;
        };
        if a == p1 || b == p1 {
            self.checks.remove(&check);
            return;
        }
        if let Some(fc) = self.checks.get_mut(&check) {
            fc.p1 = Some(p1);
        }
        self.send_anonymous_query(ctx, &[a, b], p1, AnonPurpose::FingerStage2 { check });
    }

    /// Stage 2 reply: P′₁'s routing table arrived; decide.
    pub(crate) fn conclude_finger_check(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        check: u64,
        p1_table: SignedRoutingTable,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        let Some(fc) = self.checks.remove(&check) else {
            return;
        };
        let Some(p1) = fc.p1 else { return };
        if p1_table.owner() != p1 || p1_table.verify(self.ca_key, now).is_err() {
            return;
        }
        // the violation: some successor of P′₁ is closer to the ideal
        // finger id than F′ — the "true finger" Y's table skipped (§4.4)
        let closer = p1_table.table.successors.iter().copied().find(|&z| {
            z != fc.fprime && fc.ideal.distance_to_node(z) < fc.ideal.distance_to_node(fc.fprime)
        });
        let violation = closer.is_some();
        ctx.emit(Control::FingerTest {
            tester: self.id,
            finger: fc.fprime,
            ideal: fc.ideal,
            violation,
            from_update: matches!(fc.origin, CheckOrigin::FingerUpdate { .. }),
        });
        match fc.origin {
            CheckOrigin::Surveillance { y_table, index } => {
                if let (true, Some(fpl)) = (violation, fc.fpred_list) {
                    let report = Report::FingerManipulation {
                        reporter: self.id,
                        reporter_cert: self.cert,
                        table: y_table,
                        finger_index: index,
                        finger_pred_list: fpl,
                        pred_succ_list: Box::new(p1_table),
                    };
                    self.file_report(ctx, report);
                }
            }
            CheckOrigin::FingerUpdate { evidence, slot } => {
                if let Some(z) = closer {
                    // the last lookup hop's signed table asserted F′
                    // covers the target while omitting the closer z —
                    // report the omission (§4.5)
                    let report = Report::ListOmission {
                        reporter: self.id,
                        reporter_cert: self.cert,
                        omitted: z,
                        accused_list: evidence,
                    };
                    self.file_report(ctx, report);
                    // re-run the lookup next period rather than adopt
                } else {
                    self.adopt_finger(slot, fc.fprime);
                    // keep the check transcript: P′₁'s signed list is the
                    // adoption provenance shown to the CA if the finger
                    // is ever challenged
                    self.finger_prov.insert(slot, p1_table);
                }
            }
        }
    }

    fn adopt_finger(&mut self, slot: u32, finger: NodeId) {
        let slot = slot as usize;
        if self.fingers.len() <= slot {
            self.fingers.resize(slot + 1, self.id);
        }
        self.fingers[slot] = finger;
    }

    // ------------------------------------------------------------------
    // Finger updates (§4.5): iterative lookups toward ideal finger ids,
    // candidates validated before adoption.
    // ------------------------------------------------------------------

    /// Refresh every finger (one lookup per slot, every 30 s).
    pub(crate) fn start_finger_update(&mut self, ctx: &mut NodeCtx<'_>) {
        for i in 0..self.cfg.chord.fingers {
            self.start_one_finger_lookup(ctx, i);
        }
    }

    fn start_one_finger_lookup(&mut self, ctx: &mut NodeCtx<'_>, index: u32) {
        let target = self.chord().finger_target(self.id, index);
        match self.routing_table().next_hop(target) {
            NextHop::Found(owner) => {
                // our own successor list already covers the target; the
                // entry came from stabilization, whose signed proofs
                // double as adoption provenance. Without a proof in hand
                // yet (fresh join), defer the adoption — an unjustifiable
                // finger is a liability under challenge.
                if let Some(proof) = self.proof_queue.back().cloned() {
                    self.adopt_finger(index, owner);
                    self.finger_prov.insert(index, proof);
                }
            }
            NextHop::Forward(next) => {
                if next == self.id || self.revoked.contains(&next) {
                    return;
                }
                let fl = self.fresh_req();
                self.finger_lookups.insert(
                    fl,
                    FingerLookup {
                        index,
                        target,
                        hops: 0,
                    },
                );
                self.send_direct(
                    ctx,
                    next,
                    |req| Msg::GetTable { req },
                    DirectPurpose::FingerLookupStep { fl },
                );
            }
        }
    }

    /// A finger-update lookup step returned a table.
    pub(crate) fn on_finger_lookup_table(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        fl: u64,
        table: SignedRoutingTable,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        let Some(state) = self.finger_lookups.get_mut(&fl) else {
            return;
        };
        if table.verify(self.ca_key, now).is_err() {
            self.finger_lookups.remove(&fl);
            return;
        }
        state.hops += 1;
        let (index, target, hops) = (state.index, state.target, state.hops);
        match table.table.next_hop(target) {
            NextHop::Found(candidate) => {
                self.finger_lookups.remove(&fl);
                let current = self.fingers.get(index as usize).copied();
                if candidate == self.id {
                    return;
                }
                if current == Some(candidate) {
                    return; // unchanged — already validated previously
                }
                // §4.5: validate the candidate before adoption
                self.begin_finger_check(
                    ctx,
                    candidate,
                    target,
                    CheckOrigin::FingerUpdate {
                        evidence: Box::new(table.clone()),
                        slot: index,
                    },
                );
            }
            NextHop::Forward(next) => {
                if hops >= 24 || next == self.id || self.revoked.contains(&next) {
                    self.finger_lookups.remove(&fl);
                    return;
                }
                self.send_direct(
                    ctx,
                    next,
                    |req| Msg::GetTable { req },
                    DirectPurpose::FingerLookupStep { fl },
                );
            }
        }
        self.buffer_table(table);
    }

    // ------------------------------------------------------------------
    // Neighbor-check conclusion (§4.3).
    // ------------------------------------------------------------------

    /// An anonymous neighbor-surveillance reply arrived.
    pub(crate) fn conclude_neighbor_check(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        target: NodeId,
        table: SignedRoutingTable,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        if table.owner() != target || table.verify(self.ca_key, now).is_err() {
            return;
        }
        let succ = &table.table.successors;
        let contains_me = succ.contains(&self.id);
        // only a list that *spans past us* and still omits us is a
        // violation; a short or stale list is not evidence
        let spans_me = succ
            .last()
            .is_some_and(|&last| self.id.is_between(target, last));
        let violation = !contains_me && spans_me;
        ctx.emit(Control::NeighborTest {
            tester: self.id,
            target,
            violation,
        });
        if violation {
            let report = Report::ListOmission {
                reporter: self.id,
                reporter_cert: self.cert,
                omitted: self.id,
                accused_list: Box::new(table),
            };
            self.file_report(ctx, report);
        }
    }
}
