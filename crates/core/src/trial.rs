//! Parallel multi-trial simulation driver.
//!
//! The paper's figures average independent seeded runs; a parameter
//! sweep multiplies that by every grid point. Each [`SecuritySim`] is
//! single-threaded and deterministic, so trials are embarrassingly
//! parallel: [`TrialRunner`] fans a batch of [`SimConfig`]s across
//! scoped OS threads and collects the [`SimReport`]s in *submission
//! order*, so results — including [`TrialRunner::run_merged`] folds —
//! are bit-identical no matter how many threads run them or how the OS
//! schedules completion.

use octopus_metrics::Accumulator;
use octopus_sim::split_seed;

use crate::simnet::{SecuritySim, SimConfig, SimReport};

/// Fans independent simulation trials across worker threads.
///
/// ```
/// use octopus_core::{SimConfig, TrialRunner};
/// use octopus_sim::Duration;
///
/// let base = SimConfig {
///     n: 30,
///     duration: Duration::from_secs(10),
///     octopus: octopus_core::OctopusConfig::for_network(30),
///     ..SimConfig::default()
/// };
/// // two seeded trials, fanned across two threads, merged in
/// // submission order — identical to a 1-thread run
/// let merged = TrialRunner::new(2).run_trials(&base, 2).expect("2 trials");
/// assert_eq!(merged.trials, 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TrialRunner {
    threads: usize,
}

impl Default for TrialRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl TrialRunner {
    /// A runner using `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        TrialRunner {
            threads: threads.max(1),
        }
    }

    /// Thread count from `OCTOPUS_THREADS`, defaulting to the machine's
    /// available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("OCTOPUS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                // Sanctioned thread-count site (OCT-LINT-004): sizing the
                // trial fan-out; merge order stays submission-order.
                #[allow(clippy::disallowed_methods)]
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Self::new(threads)
    }

    /// Worker thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every config (each a full build-and-run of a [`SecuritySim`])
    /// and return the reports in the same order as `configs`.
    ///
    /// Trials are dealt round-robin to `min(threads, configs.len())`
    /// scoped threads; with one thread this degenerates to a plain
    /// sequential loop.
    #[must_use]
    pub fn run(&self, configs: &[SimConfig]) -> Vec<SimReport> {
        let workers = self.threads.min(configs.len()).max(1);
        if workers == 1 {
            return configs
                .iter()
                .map(|cfg| SecuritySim::new(cfg.clone()).run())
                .collect();
        }
        let mut slots: Vec<Option<SimReport>> = Vec::new();
        slots.resize_with(configs.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let assigned: Vec<(usize, SimConfig)> = configs
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, c)| (i, c.clone()))
                        .collect();
                    scope.spawn(move || {
                        assigned
                            .into_iter()
                            .map(|(i, cfg)| (i, SecuritySim::new(cfg).run()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, report) in handle.join().expect("trial worker panicked") {
                    slots[i] = Some(report);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every trial produced a report"))
            .collect()
    }

    /// Run every config and fold the reports — in config order — into
    /// one merged [`SimReport`]. `None` when `configs` is empty.
    #[must_use]
    pub fn run_merged(&self, configs: &[SimConfig]) -> Option<SimReport> {
        self.run(configs)
            .into_iter()
            .collect::<Accumulator<SimReport>>()
            .into_inner()
    }

    /// Run `trials` copies of `base` whose per-trial master seeds are
    /// derived from `base.seed`, merged into one report.
    #[must_use]
    pub fn run_trials(&self, base: &SimConfig, trials: usize) -> Option<SimReport> {
        self.run_merged(&trial_configs(base, trials))
    }

    /// Run the full shards × trials grid — every shard count in
    /// `shard_counts` crossed with `trials` seeded repetitions of
    /// `base` — through *one* thread-pool batch, and return one merged
    /// report per shard count, in order. Shard counts and trials share
    /// the workers, so even a single-trial sweep saturates the machine.
    /// `base.parallel` (sequential vs parallel windows) applies to
    /// every grid point; cross it too with
    /// [`TrialRunner::run_mode_sweep`].
    ///
    /// Because sharding never changes results, every returned report is
    /// identical; the grid exists to *measure* shard configurations
    /// (the `sharded_world` bench) and to regression-test that very
    /// invariance.
    #[must_use]
    pub fn run_shard_sweep(
        &self,
        base: &SimConfig,
        shard_counts: &[usize],
        trials: usize,
    ) -> Vec<SimReport> {
        let trials = trials.max(1);
        let configs: Vec<SimConfig> = shard_counts
            .iter()
            .flat_map(|&s| {
                let mut b = base.clone();
                b.shards = s;
                trial_configs(&b, trials)
            })
            .collect();
        let mut reports = self.run(&configs).into_iter();
        shard_counts
            .iter()
            .map(|_| {
                reports
                    .by_ref()
                    .take(trials)
                    .collect::<Accumulator<SimReport>>()
                    .into_inner()
                    .expect("at least one trial per shard count")
            })
            .collect()
    }

    /// Run the shards × execution-mode × trials grid: every shard count
    /// in `shard_counts` crossed with both window execution modes
    /// (sequential, then parallel) and `trials` seeded repetitions of
    /// `base`, all through one thread-pool batch. Returns
    /// `(shards, parallel, merged report)` per grid point, in
    /// shards-major order.
    ///
    /// Like the plain shard sweep, every report is identical by the
    /// determinism contract — the grid exists for benchmarking and for
    /// the `engine_determinism` regressions that enforce exactly that.
    #[must_use]
    pub fn run_mode_sweep(
        &self,
        base: &SimConfig,
        shard_counts: &[usize],
        trials: usize,
    ) -> Vec<(usize, bool, SimReport)> {
        let trials = trials.max(1);
        let grid: Vec<(usize, bool)> = shard_counts
            .iter()
            .flat_map(|&s| [(s, false), (s, true)])
            .collect();
        let configs: Vec<SimConfig> = grid
            .iter()
            .flat_map(|&(shards, parallel)| {
                let mut b = base.clone();
                b.shards = shards;
                b.parallel = parallel;
                trial_configs(&b, trials)
            })
            .collect();
        let mut reports = self.run(&configs).into_iter();
        grid.into_iter()
            .map(|(shards, parallel)| {
                let merged = reports
                    .by_ref()
                    .take(trials)
                    .collect::<Accumulator<SimReport>>()
                    .into_inner()
                    .expect("at least one trial per grid point");
                (shards, parallel, merged)
            })
            .collect()
    }
}

/// The per-trial configs for `trials` repetitions of `base`: trial 0
/// keeps `base.seed` (so a 1-trial run reproduces a plain
/// `SecuritySim::new(base).run()` exactly), later trials derive
/// statistically independent master seeds from it.
#[must_use]
pub fn trial_configs(base: &SimConfig, trials: usize) -> Vec<SimConfig> {
    (0..trials)
        .map(|t| {
            let mut cfg = base.clone();
            if t > 0 {
                cfg.seed = split_seed(base.seed, 0x7121_A15E ^ t as u64);
            }
            cfg
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_configs_vary_only_the_seed() {
        let base = SimConfig::default();
        let cfgs = trial_configs(&base, 3);
        assert_eq!(cfgs.len(), 3);
        assert_eq!(cfgs[0].seed, base.seed, "trial 0 reproduces the base run");
        assert_ne!(cfgs[1].seed, cfgs[2].seed);
        for c in &cfgs {
            assert_eq!(c.n, base.n);
            assert_eq!(c.duration, base.duration);
        }
    }

    #[test]
    fn runner_clamps_threads() {
        assert_eq!(TrialRunner::new(0).threads(), 1);
        assert_eq!(TrialRunner::new(4).threads(), 4);
    }

    #[test]
    fn empty_batch_merges_to_none() {
        assert_eq!(TrialRunner::new(2).run_merged(&[]), None);
    }

    #[test]
    fn shard_sweep_composes_the_grid() {
        // shape only (the determinism of the reports themselves is
        // pinned by the engine_determinism integration tests)
        let base = SimConfig {
            n: 30,
            duration: octopus_sim::Duration::from_secs(10),
            octopus: crate::OctopusConfig::for_network(30),
            ..SimConfig::default()
        };
        let reports = TrialRunner::new(2).run_shard_sweep(&base, &[1, 2], 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].trials, 2);
        assert_eq!(reports[0], reports[1], "shard count changed results");
    }
}
