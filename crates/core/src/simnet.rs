//! The event-based security simulator (paper §5).
//!
//! Reproduces the paper's evaluation methodology: N = 1000 nodes with
//! 20 % malicious, King-like WAN latencies, exponential churn,
//! stabilization every 2 s, finger updates every 30 s, surveillance
//! every 60 s, random walks every 15 s, one application lookup per node
//! per minute — and measures how fast the attacker-identification
//! mechanisms drain the network of malicious nodes, how accurate they
//! are (Table 2's false positive/negative/alarm rates), how many lookups
//! get biased before the attackers die (Fig. 3(b)), and the CA's message
//! workload (Fig. 7(b)).

use std::collections::{BTreeMap, BTreeSet};

use octopus_chord::ChordConfig;
use octopus_crypto::{CertificateAuthority, KeyPair};
use octopus_id::{IdSpace, Key, NodeId, ShardedIdSpace};
use octopus_metrics::{merge_point_series, Merge};
use octopus_net::{Addr, KingLikeLatency, NodeBehavior, Runtime, World};
use octopus_sim::{derive_rng, ChurnProcess, Duration, SchedulerKind, SimTime};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::adversary::{AdversaryState, AttackKind, ShardedAdversary};
use crate::ca::CaNode;
use crate::config::OctopusConfig;
use crate::messages::{Msg, Timer};
use crate::node::OctopusNode;
use crate::trace::TraceEvent;

/// The CA's reserved overlay address (outside the ring population).
pub const CA_ADDR: NodeId = NodeId(u64::MAX);

/// Which mechanism a report/verdict belongs to (drives Table 2's rows
/// and Fig. 7(b)'s series).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReportCat {
    /// Secret neighbor surveillance (§4.3).
    NeighborSurveillance,
    /// Secret finger surveillance (§4.4).
    FingerSurveillance,
    /// Checked finger updates (§4.5).
    FingerUpdate,
    /// Selective-DoS defense (Appendix II).
    SelectiveDos,
}

/// Outcome of a CA case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// A node was identified and its certificate revoked.
    Revoked(NodeId),
    /// The case closed without identifying anyone (false alarm).
    Dismissed,
}

/// Control events: protocol milestones surfaced to the driver, plus the
/// driver's own scheduled events (churn, measurement).
#[derive(Clone, Debug)]
pub enum Control {
    /// An application lookup finished.
    LookupDone {
        /// The initiator.
        initiator: NodeId,
        /// The key looked up.
        key: Key,
        /// The owner found (`None` = failed).
        result: Option<NodeId>,
        /// Remote queries used.
        hops: usize,
        /// Wall-clock (simulated) duration.
        elapsed: Duration,
    },
    /// A relay-selection walk finished.
    WalkDone {
        /// The walk's initiator.
        initiator: NodeId,
        /// Whether verification passed and a pair was harvested.
        ok: bool,
    },
    /// A secret neighbor surveillance test concluded (§4.3).
    NeighborTest {
        /// The monitoring node.
        tester: NodeId,
        /// The predecessor tested.
        target: NodeId,
        /// Whether the tester observed a violation.
        violation: bool,
    },
    /// A finger check concluded (§4.4/§4.5).
    FingerTest {
        /// The monitoring node.
        tester: NodeId,
        /// The finger that was checked.
        finger: NodeId,
        /// The ideal finger id it should cover.
        ideal: Key,
        /// Whether a closer node was revealed.
        violation: bool,
        /// True when the check validated a finger-update candidate.
        from_update: bool,
    },
    /// The CA received a protocol message (Fig. 7(b) workload).
    CaReceived,
    /// The CA closed a case.
    Verdict {
        /// The outcome.
        verdict: Verdict,
        /// The mechanism that produced the case.
        category: ReportCat,
    },
    /// Driver: kill a node (churn).
    ChurnKill(NodeId),
    /// Driver: (re)join a node after its offline gap.
    ChurnJoin(NodeId),
    /// Driver: take a measurement sample.
    Measure,
    /// A semantic protocol decision for the reference-model oracle
    /// (only emitted when [`OctopusConfig::trace`] is on; boxed to keep
    /// the common variants small).
    Trace(Box<TraceEvent>),
}

/// The actor hosted at each world address: a peer or the CA.
pub enum Actor {
    /// An Octopus peer.
    Peer(Box<OctopusNode>),
    /// The certificate authority.
    Ca(Box<CaNode>),
}

impl NodeBehavior for Actor {
    type Msg = Msg;
    type Timer = Timer;
    type Control = Control;

    fn on_start(&mut self, ctx: &mut dyn Runtime<Msg, Timer, Control>) {
        match self {
            Actor::Peer(n) => n.on_start(ctx),
            Actor::Ca(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Runtime<Msg, Timer, Control>, from: Addr, msg: Msg) {
        match self {
            Actor::Peer(n) => n.on_message(ctx, from, msg),
            Actor::Ca(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<Msg, Timer, Control>, timer: Timer) {
        match self {
            Actor::Peer(n) => n.on_timer(ctx, timer),
            Actor::Ca(c) => c.on_timer(ctx, timer),
        }
    }
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Network size (1000 in §5.1).
    pub n: usize,
    /// Fraction of malicious nodes (0.2 in §5.1).
    pub malicious_fraction: f64,
    /// The active attack.
    pub attack: AttackKind,
    /// Attack rate (1.0 or 0.5 in Figs. 3/4/9).
    pub attack_rate: f64,
    /// Consistent-collusion probability (0.5 in Table 2's caption).
    pub consistent_collusion: f64,
    /// Mean node lifetime; `None` disables churn.
    pub mean_lifetime: Option<Duration>,
    /// Simulated run length (1000 s in Fig. 3).
    pub duration: Duration,
    /// Master seed.
    pub seed: u64,
    /// Protocol parameters.
    pub octopus: OctopusConfig,
    /// Whether peers run application lookups (Fig. 3(b) accounting).
    pub lookups_enabled: bool,
    /// Event-queue backend. All backends produce identical reports (the
    /// scheduler determinism contract); they differ only in speed.
    pub scheduler: SchedulerKind,
    /// Number of contiguous ID-range shards the world is partitioned
    /// into (clamped to at least 1). Sharding splits storage — one node
    /// slab and one event queue per shard, joined by a cross-shard
    /// message bus — but never results: a fixed seed produces an
    /// identical [`SimReport`] at every shard count (pinned by the
    /// `engine_determinism` regression tests).
    pub shards: usize,
    /// Whether the world fans each shard's in-window event batch across
    /// the persistent worker pool between lookahead barriers
    /// (`OCTOPUS_PAR`). Like `shards` and `scheduler`, a pure speed
    /// knob: sequential and parallel windows produce byte-identical
    /// reports (also pinned by `engine_determinism`).
    pub parallel: bool,
    /// Worker-pool width for parallel windows (`OCTOPUS_POOL_THREADS`;
    /// `0` = auto: the machine's available parallelism, capped at the
    /// shard count). Another pure speed knob — reports are
    /// byte-identical at every width.
    pub pool_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 1000,
            malicious_fraction: 0.2,
            attack: AttackKind::LookupBias,
            attack_rate: 1.0,
            consistent_collusion: 0.5,
            mean_lifetime: None,
            duration: Duration::from_secs(1000),
            seed: 42,
            octopus: OctopusConfig::default(),
            lookups_enabled: true,
            scheduler: SchedulerKind::default(),
            shards: 1,
            parallel: false,
            pool_threads: 0,
        }
    }
}

/// Aggregated results of one run — or, after
/// [`Merge`]-ing, of several independent trials (time series then hold
/// per-trial *sums*; divide by [`SimReport::trials`] via
/// [`SimReport::mean_series`] for per-trial curves).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Number of trials folded into this report (1 for a single run).
    pub trials: u64,
    /// `(t, fraction of the network that is unrevoked-malicious)`.
    pub malicious_fraction: Vec<(f64, f64)>,
    /// `(t, cumulative lookups completed)`.
    pub lookups_total: Vec<(f64, f64)>,
    /// `(t, cumulative biased lookups)`.
    pub lookups_biased: Vec<(f64, f64)>,
    /// `(t, CA messages received in this 10 s bin)`.
    pub ca_messages: Vec<(f64, f64)>,
    /// Honest nodes revoked (false positives).
    pub false_positives: u64,
    /// Total revocations.
    pub revocations: u64,
    /// Surveillance tests whose subject was provably bad.
    pub tests_of_bad: u64,
    /// …of which the test failed to observe the violation.
    pub tests_missed: u64,
    /// Neighbor-surveillance tests of bad subjects (subset of the above).
    pub neighbor_tests_of_bad: u64,
    /// …missed.
    pub neighbor_tests_missed: u64,
    /// Finger tests of bad subjects.
    pub finger_tests_of_bad: u64,
    /// …missed.
    pub finger_tests_missed: u64,
    /// Per-category (dismissed, convicted) case counts.
    pub verdicts_by_cat: Vec<(ReportCat, u64, u64)>,
    /// Cases closed with no identification.
    pub dismissed: u64,
    /// Cases closed with a revocation.
    pub convicted: u64,
    /// Lookups that returned a wrong owner.
    pub biased_lookups: u64,
    /// Lookups that completed (right or wrong).
    pub completed_lookups: u64,
    /// Lookups that failed outright.
    pub failed_lookups: u64,
    /// Walks that completed and were verified.
    pub walks_ok: u64,
    /// Walks aborted (timeout, bad signature, failed bound check).
    pub walks_failed: u64,
    /// Per-lookup end-to-end latency in milliseconds (Table 3 / Fig. 7a).
    pub lookup_latencies_ms: Vec<f64>,
    /// Mean per-node bandwidth in kbps over the run (Table 3).
    pub bandwidth_kbps: f64,
}

impl SimReport {
    /// False positive rate: honest revocations / all revocations.
    #[must_use]
    pub fn false_positive_rate(&self) -> f64 {
        if self.revocations == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.revocations as f64
        }
    }

    /// False negative rate: bad subjects tested without detection.
    #[must_use]
    pub fn false_negative_rate(&self) -> f64 {
        if self.tests_of_bad == 0 {
            0.0
        } else {
            self.tests_missed as f64 / self.tests_of_bad as f64
        }
    }

    /// False alarm rate: CA cases closed without identification.
    #[must_use]
    pub fn false_alarm_rate(&self) -> f64 {
        let total = self.dismissed + self.convicted;
        if total == 0 {
            0.0
        } else {
            self.dismissed as f64 / total as f64
        }
    }

    /// False-alarm rate for one mechanism's cases only (Table 2 reports
    /// per-mechanism rows).
    #[must_use]
    pub fn false_alarm_rate_for(&self, cat: ReportCat) -> f64 {
        match self.verdicts_by_cat.iter().find(|(c, _, _)| *c == cat) {
            Some(&(_, dismissed, convicted)) if dismissed + convicted > 0 => {
                dismissed as f64 / (dismissed + convicted) as f64
            }
            _ => 0.0,
        }
    }

    /// Neighbor-surveillance false-negative rate (Table 2's bias row).
    #[must_use]
    pub fn neighbor_fn_rate(&self) -> f64 {
        if self.neighbor_tests_of_bad == 0 {
            0.0
        } else {
            self.neighbor_tests_missed as f64 / self.neighbor_tests_of_bad as f64
        }
    }

    /// Finger-check false-negative rate (Table 2's manipulation and
    /// pollution rows).
    #[must_use]
    pub fn finger_fn_rate(&self) -> f64 {
        if self.finger_tests_of_bad == 0 {
            0.0
        } else {
            self.finger_tests_missed as f64 / self.finger_tests_of_bad as f64
        }
    }

    /// Fraction of malicious nodes still in the network at the end
    /// (averaged over trials for a merged report).
    #[must_use]
    pub fn final_malicious_fraction(&self) -> f64 {
        let t = self.trials.max(1) as f64;
        self.malicious_fraction.last().map_or(0.0, |&(_, f)| f / t)
    }

    /// Scale a summed time series down to a per-trial mean. For a
    /// single-run report (`trials == 1`) this is the identity.
    #[must_use]
    pub fn mean_series(&self, series: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let t = self.trials.max(1) as f64;
        series.iter().map(|&(x, v)| (x, v / t)).collect()
    }
}

impl Merge for SimReport {
    /// Fold another trial's report into this one: counters and series
    /// sum, latency samples pool, bandwidth averages weighted by trial
    /// count. Associative and trial-order-deterministic, as the
    /// [`Merge`] contract requires.
    fn merge(&mut self, other: Self) {
        let self_trials = self.trials.max(1);
        let other_trials = other.trials.max(1);
        merge_point_series(&mut self.malicious_fraction, &other.malicious_fraction);
        merge_point_series(&mut self.lookups_total, &other.lookups_total);
        merge_point_series(&mut self.lookups_biased, &other.lookups_biased);
        merge_point_series(&mut self.ca_messages, &other.ca_messages);
        self.false_positives += other.false_positives;
        self.revocations += other.revocations;
        self.tests_of_bad += other.tests_of_bad;
        self.tests_missed += other.tests_missed;
        self.neighbor_tests_of_bad += other.neighbor_tests_of_bad;
        self.neighbor_tests_missed += other.neighbor_tests_missed;
        self.finger_tests_of_bad += other.finger_tests_of_bad;
        self.finger_tests_missed += other.finger_tests_missed;
        for (cat, dismissed, convicted) in other.verdicts_by_cat {
            match self.verdicts_by_cat.iter_mut().find(|(c, _, _)| *c == cat) {
                Some(slot) => {
                    slot.1 += dismissed;
                    slot.2 += convicted;
                }
                None => self.verdicts_by_cat.push((cat, dismissed, convicted)),
            }
        }
        self.dismissed += other.dismissed;
        self.convicted += other.convicted;
        self.biased_lookups += other.biased_lookups;
        self.completed_lookups += other.completed_lookups;
        self.failed_lookups += other.failed_lookups;
        self.walks_ok += other.walks_ok;
        self.walks_failed += other.walks_failed;
        self.lookup_latencies_ms.extend(other.lookup_latencies_ms);
        self.bandwidth_kbps = (self.bandwidth_kbps * self_trials as f64
            + other.bandwidth_kbps * other_trials as f64)
            / (self_trials + other_trials) as f64;
        self.trials = self_trials + other_trials;
    }
}

/// In-flight state of an incremental run: the partially-folded report
/// plus the CA-workload bins. Opaque — obtain from
/// [`SecuritySim::begin`], feed to [`SecuritySim::advance_until`] and
/// [`SecuritySim::finish`].
pub struct RunAccum {
    report: SimReport,
    ca_bins: Vec<f64>,
    bin: f64,
    end: SimTime,
}

/// The security simulator.
pub struct SecuritySim {
    cfg: SimConfig,
    world: World<Actor, KingLikeLatency>,
    /// Ground-truth membership, range-partitioned for cheap churn
    /// updates at large `n` (queries see the merged sorted universe).
    space: ShardedIdSpace,
    adversary: ShardedAdversary,
    /// The full original malicious set (revocations don't erase guilt).
    initial_malicious: BTreeSet<NodeId>,
    unrevoked_malicious: BTreeSet<NodeId>,
    revoked: BTreeSet<NodeId>,
    keys: BTreeMap<NodeId, (KeyPair, octopus_crypto::Certificate)>,
    churn: ChurnProcess,
    rng: rand::rngs::StdRng,
    debug: bool,
    /// Recorded semantic trace, present iff [`OctopusConfig::trace`] is
    /// on: node/CA events arrive via [`Control::Trace`] in global
    /// control order; driver events (joins, kills, applied revocations)
    /// are appended directly at their control's position.
    trace: Option<Vec<(SimTime, TraceEvent)>>,
}

impl SecuritySim {
    /// Build the network.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let mut rng = derive_rng(cfg.seed, b"driver", 0);
        let ca_authority = CertificateAuthority::new(&mut rng);
        let ca_key = ca_authority.public_key();

        // --- population ---
        let mut space = IdSpace::random(cfg.n, &mut rng);
        while space.contains(CA_ADDR) {
            space = IdSpace::random(cfg.n, &mut rng);
        }
        let mut ids: Vec<NodeId> = space.ids().to_vec();
        ids.shuffle(&mut rng);
        let n_mal = (cfg.n as f64 * cfg.malicious_fraction).round() as usize;
        let malicious: BTreeSet<NodeId> = ids.iter().take(n_mal).copied().collect();

        let mut adversary_state =
            AdversaryState::new(cfg.attack, cfg.attack_rate, cfg.consistent_collusion);
        for &m in &malicious {
            adversary_state.enroll(m);
        }

        // --- certificates & CA ---
        let mut ca_node = CaNode::new(CA_ADDR, ca_authority, cfg.octopus);
        let mut keys = BTreeMap::new();
        for &id in space.ids() {
            let kp = KeyPair::generate(&mut rng);
            let cert = ca_node.issue_cert(id, kp.public());
            ca_node.register(id, kp.public());
            ca_node.note_join(id, 0);
            keys.insert(id, (kp, cert));
        }
        ca_node.broadcast_to = space.ids().to_vec();

        // --- world ---
        let latency = KingLikeLatency::new(octopus_sim::split_seed(cfg.seed, 7));
        let mut world: World<Actor, KingLikeLatency> =
            World::with_shards(latency, cfg.seed, cfg.scheduler, cfg.shards);
        world.set_parallel(cfg.parallel);
        world.set_worker_threads(cfg.pool_threads);
        world.insert_node(CA_ADDR, Actor::Ca(Box::new(ca_node)));

        let chord = cfg.octopus.chord;
        for &m in &malicious {
            let (kp, cert) = keys.get(&m).expect("key exists");
            adversary_state.share_keys(m, kp.clone(), *cert);
        }
        // replicate the fully-seeded directory, one replica per shard
        let adversary = adversary_state.sharded(world.shard_count());
        let shard_map = world.shard_map();
        let space = ShardedIdSpace::from(space);
        for id in space.iter() {
            let (kp, cert) = keys.get(&id).expect("key exists");
            let adv = malicious
                .contains(&id)
                .then(|| adversary.handle(shard_map.shard_of(id)));
            let mut node =
                OctopusNode::new(id, cfg.octopus, kp.clone(), *cert, CA_ADDR, ca_key, adv);
            seed_from_truth(&mut node, &space, chord, &mut rng);
            seed_provenance(&mut node, &space, chord, &keys, 0);
            world.insert_node(id, Actor::Peer(Box::new(node)));
        }

        let churn = match cfg.mean_lifetime {
            Some(l) => ChurnProcess::new(l, Duration::from_secs(30)),
            None => ChurnProcess::disabled(),
        };

        let trace_on = cfg.octopus.trace;
        let mut sim = SecuritySim {
            unrevoked_malicious: malicious.clone(),
            initial_malicious: malicious,
            revoked: BTreeSet::new(),
            cfg,
            world,
            space,
            adversary,
            keys,
            churn,
            rng,
            debug: false,
            trace: trace_on.then(Vec::new),
        };
        if sim.trace.is_some() {
            // genesis population: the model learns the initial membership
            // the same way it learns churn joins
            for id in sim.space.to_vec() {
                sim.push_trace(SimTime::ZERO, TraceEvent::NodeJoined { node: id });
            }
        }
        sim.schedule_initial_events();
        sim
    }

    /// Append a driver-side trace event (no-op when tracing is off).
    fn push_trace(&mut self, t: SimTime, ev: TraceEvent) {
        if let Some(buf) = &mut self.trace {
            buf.push((t, ev));
        }
    }

    /// Take the recorded semantic trace (empty when tracing is off or
    /// already taken). Call after [`SecuritySim::finish`].
    pub fn take_trace(&mut self) -> Vec<(SimTime, TraceEvent)> {
        self.trace.take().unwrap_or_default()
    }

    fn schedule_initial_events(&mut self) {
        // churn
        if self.churn.is_enabled() {
            let ids: Vec<NodeId> = self.space.to_vec();
            for id in ids {
                let life = self.churn.sample_lifetime(&mut self.rng);
                if SimTime::ZERO + life <= SimTime::ZERO + self.cfg.duration {
                    self.world
                        .schedule_control(SimTime::ZERO + life, Control::ChurnKill(id));
                }
            }
        }
        // measurement every 5 s
        let mut t = SimTime::ZERO;
        while t <= SimTime::ZERO + self.cfg.duration {
            self.world.schedule_control(t, Control::Measure);
            t += Duration::from_secs(5);
        }
    }

    /// Current ground-truth owner of a key (live nodes only).
    #[must_use]
    pub fn truth_owner(&self, key: Key) -> NodeId {
        self.space.owner_of(key).owner
    }

    /// The sharded adversary directory.
    #[must_use]
    pub fn adversary(&self) -> &ShardedAdversary {
        &self.adversary
    }

    /// Run with verbose verdict logging to stdout (diagnostics).
    pub fn run_debug(&mut self) -> SimReport {
        self.debug = true;
        self.run()
    }

    /// Run to completion and produce the report.
    ///
    /// Execution is windowed: the world runs one conservative lookahead
    /// window at a time ([`World::run_window`] — each shard's in-window
    /// batch on its own thread when [`SimConfig::parallel`] is set),
    /// and the driver folds the window's control events, in global
    /// `(time, key)` order, between barriers. Scheduler backend, shard
    /// count and execution mode are all pure speed knobs: a fixed seed
    /// yields a byte-identical report under every combination.
    pub fn run(&mut self) -> SimReport {
        let mut acc = self.begin();
        let end = acc.end;
        self.advance_until(&mut acc, end);
        self.finish(acc)
    }

    /// Start an incremental run: returns the accumulator that
    /// [`SecuritySim::advance_until`] folds window results into and
    /// [`SecuritySim::finish`] turns into the final [`SimReport`].
    ///
    /// The incremental API exists for harnesses that need to interleave
    /// the run with outside action — e.g. the fuzz oracle injecting
    /// Byzantine messages at known simulated times. Chunking is a pure
    /// speed knob like every other execution knob: any sequence of
    /// deadlines yields the byte-identical report `run()` produces.
    #[must_use]
    pub fn begin(&mut self) -> RunAccum {
        let bin = 10.0; // seconds per CA-workload bin
        RunAccum {
            report: SimReport {
                trials: 1,
                ..SimReport::default()
            },
            ca_bins: vec![0.0; (self.cfg.duration.as_secs_f64() / bin) as usize + 1],
            bin,
            end: SimTime::ZERO + self.cfg.duration,
        }
    }

    /// Advance the simulation up to `deadline` (clamped to the run's
    /// end), folding every control event produced on the way into the
    /// accumulator in global `(time, key)` order.
    pub fn advance_until(&mut self, acc: &mut RunAccum, deadline: SimTime) {
        let deadline = deadline.min(acc.end);
        while let Some(controls) = self.world.run_window(deadline) {
            for (t, c) in controls {
                self.handle_control(c, t, &mut acc.report, &mut acc.ca_bins, acc.bin);
            }
        }
    }

    /// Drain any remaining events and produce the final report.
    pub fn finish(&mut self, mut acc: RunAccum) -> SimReport {
        let end = acc.end;
        self.advance_until(&mut acc, end);
        let RunAccum {
            mut report,
            ca_bins,
            bin,
            ..
        } = acc;
        report.ca_messages = ca_bins
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * bin, v))
            .collect();
        report.bandwidth_kbps = self
            .world
            .ledger()
            .mean_node_kbps(self.cfg.n, self.cfg.duration.as_secs_f64());
        report
    }

    #[allow(clippy::too_many_lines)]
    fn handle_control(
        &mut self,
        c: Control,
        now: SimTime,
        report: &mut SimReport,
        ca_bins: &mut [f64],
        bin: f64,
    ) {
        let t = now.as_secs_f64();
        match c {
            Control::Measure => {
                let frac = self.unrevoked_malicious.len() as f64 / self.cfg.n as f64;
                report.malicious_fraction.push((t, frac));
                report
                    .lookups_total
                    .push((t, report.completed_lookups as f64));
                report
                    .lookups_biased
                    .push((t, report.biased_lookups as f64));
                self.heal_starved_nodes();
            }
            Control::CaReceived => {
                let idx = ((t / bin) as usize).min(ca_bins.len() - 1);
                ca_bins[idx] += 1.0;
            }
            Control::LookupDone {
                key,
                result,
                elapsed,
                ..
            } => {
                if !self.cfg.lookups_enabled {
                    return;
                }
                match result {
                    Some(owner) => {
                        report.completed_lookups += 1;
                        report.lookup_latencies_ms.push(elapsed.as_millis_f64());
                        let truth = self.space.owner_of(key).owner;
                        if owner != truth {
                            report.biased_lookups += 1;
                        }
                    }
                    None => report.failed_lookups += 1,
                }
            }
            Control::WalkDone { ok, .. } => {
                if ok {
                    report.walks_ok += 1;
                } else {
                    report.walks_failed += 1;
                }
            }
            Control::NeighborTest {
                target, violation, ..
            } => {
                if self.initial_malicious.contains(&target) {
                    report.tests_of_bad += 1;
                    report.neighbor_tests_of_bad += 1;
                    if !violation {
                        report.tests_missed += 1;
                        report.neighbor_tests_missed += 1;
                    }
                }
            }
            Control::FingerTest {
                finger,
                ideal,
                violation,
                ..
            } => {
                // a finger is provably bad when ground truth has a
                // closer live owner for its ideal id
                let truth = self.space.owner_of(ideal).owner;
                let bad = truth != finger
                    && ideal.distance_to_node(truth) < ideal.distance_to_node(finger);
                if bad {
                    report.tests_of_bad += 1;
                    report.finger_tests_of_bad += 1;
                    if !violation {
                        report.tests_missed += 1;
                        report.finger_tests_missed += 1;
                    }
                }
            }
            Control::Verdict { verdict, category } => {
                let slot = if let Some(slot) = report
                    .verdicts_by_cat
                    .iter_mut()
                    .find(|(c, _, _)| *c == category)
                {
                    slot
                } else {
                    report.verdicts_by_cat.push((category, 0, 0));
                    report.verdicts_by_cat.last_mut().expect("just pushed")
                };
                match verdict {
                    Verdict::Revoked(_) => slot.2 += 1,
                    Verdict::Dismissed => slot.1 += 1,
                }
                match verdict {
                    Verdict::Revoked(id) => {
                        if self.debug {
                            let mal = self.initial_malicious.contains(&id);
                            println!("[{t:.1}s] REVOKED {id} malicious={mal} cat={category:?}");
                        }
                        report.revocations += 1;
                        report.convicted += 1;
                        if !self.initial_malicious.contains(&id) {
                            report.false_positives += 1;
                        }
                        self.apply_revocation(id);
                        self.push_trace(now, TraceEvent::RevocationApplied { node: id });
                    }
                    Verdict::Dismissed => report.dismissed += 1,
                }
            }
            Control::ChurnKill(id) => self.churn_kill(id, now),
            Control::ChurnJoin(id) => self.churn_join(id, now),
            Control::Trace(ev) => self.push_trace(now, *ev),
        }
    }

    fn apply_revocation(&mut self, id: NodeId) {
        self.revoked.insert(id);
        self.unrevoked_malicious.remove(&id);
        self.adversary.update(|a| a.remove(id));
        self.space.remove(id);
        self.world.remove_node(id);
    }

    fn churn_kill(&mut self, id: NodeId, now: SimTime) {
        if self.revoked.contains(&id) || !self.world.is_alive(id) {
            return;
        }
        self.world.remove_node(id);
        self.space.remove(id);
        self.adversary.update(|a| a.remove(id));
        self.push_trace(now, TraceEvent::NodeKilled { node: id });
        self.with_ca(|ca| ca.note_death(id, now.as_secs_f64() as u64));
        let gap = self
            .churn
            .sample_offline(&mut self.rng)
            .max(Duration::from_secs(1));
        self.world
            .schedule_control(now + gap, Control::ChurnJoin(id));
    }

    fn churn_join(&mut self, id: NodeId, now: SimTime) {
        if self.revoked.contains(&id) || self.world.is_alive(id) {
            return;
        }
        self.space.insert(id);
        let malicious = self.initial_malicious.contains(&id);
        if malicious {
            self.adversary.update(|a| a.enroll(id));
        }
        let (kp, cert) = self.keys.get(&id).expect("keys exist").clone();
        let ca_key = self.with_ca_ref(|ca| ca.public_key());
        let mut node = OctopusNode::new(
            id,
            self.cfg.octopus,
            kp,
            cert,
            CA_ADDR,
            ca_key,
            malicious.then(|| self.adversary.handle(self.world.shard_map().shard_of(id))),
        );
        let chord = self.cfg.octopus.chord;
        seed_from_truth(&mut node, &self.space, chord, &mut self.rng);
        seed_provenance(
            &mut node,
            &self.space,
            chord,
            &self.keys,
            now.as_secs_f64() as u64,
        );
        if malicious {
            let (kp, cert) = self.keys.get(&id).expect("keys exist");
            self.adversary
                .update(|a| a.share_keys(id, kp.clone(), *cert));
        }
        self.world.insert_node(id, Actor::Peer(Box::new(node)));
        self.push_trace(now, TraceEvent::NodeJoined { node: id });
        self.with_ca(|ca| ca.note_join(id, now.as_secs_f64() as u64));
        // announce the join to ring neighbors (idealized join protocol)
        let succs = self.space.successor_list(id, chord.successors);
        let preds = self.space.predecessor_list(id, chord.predecessors);
        for n in succs.into_iter().chain(preds) {
            if let Some(Actor::Peer(p)) = self.world.node_mut(n) {
                p.learn_neighbor(id);
            }
        }
        // schedule its next death
        let life = self.churn.sample_lifetime(&mut self.rng);
        let death = now + life;
        if death <= SimTime::ZERO + self.cfg.duration {
            self.world.schedule_control(death, Control::ChurnKill(id));
        }
    }

    /// Emergency re-seed for nodes whose neighbor lists were emptied by
    /// mass revocation of their (malicious) neighborhood — stands in for
    /// a re-join, which the idealized join protocol would perform.
    fn heal_starved_nodes(&mut self) {
        let ids: Vec<NodeId> = self.space.to_vec();
        let chord = self.cfg.octopus.chord;
        for id in ids {
            let starved = matches!(
                self.world.node(id),
                Some(Actor::Peer(p)) if p.successors().is_empty() || p.predecessors().is_empty()
            );
            if starved {
                let succs = self.space.successor_list(id, chord.successors);
                let preds = self.space.predecessor_list(id, chord.predecessors);
                if let Some(Actor::Peer(p)) = self.world.node_mut(id) {
                    if p.successors().is_empty() && !succs.is_empty() {
                        p.set_successors(succs);
                    }
                    if p.predecessors().is_empty() && !preds.is_empty() {
                        p.set_predecessors(preds);
                    }
                }
            }
        }
    }

    fn with_ca<R>(&mut self, f: impl FnOnce(&mut CaNode) -> R) -> R {
        match self.world.node_mut(CA_ADDR) {
            Some(Actor::Ca(ca)) => f(ca),
            _ => unreachable!("CA actor always present"),
        }
    }

    fn with_ca_ref<R>(&self, f: impl FnOnce(&CaNode) -> R) -> R {
        match self.world.node(CA_ADDR) {
            Some(Actor::Ca(ca)) => f(ca),
            _ => unreachable!("CA actor always present"),
        }
    }

    // --- harness hooks -------------------------------------------------
    //
    // The fuzz-oracle and differential harnesses need controlled ways to
    // observe ground truth and to inject Byzantine wire messages between
    // `advance_until` chunks. These hooks never run on the report path.

    /// Inject a wire message into the world as if `from` had sent it —
    /// the fuzz oracle's entry point for malformed/Byzantine payloads.
    /// Deterministic: latency comes from the same seeded stream normal
    /// driver injections use.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        self.world.inject_message(from, to, msg);
    }

    /// Ground-truth live membership, in ring order.
    #[must_use]
    pub fn live_ids(&self) -> Vec<NodeId> {
        self.space.to_vec()
    }

    /// Nodes revoked so far.
    #[must_use]
    pub fn revoked_ids(&self) -> &BTreeSet<NodeId> {
        &self.revoked
    }

    /// The originally-malicious population (guilt survives revocation).
    #[must_use]
    pub fn initial_malicious_ids(&self) -> &BTreeSet<NodeId> {
        &self.initial_malicious
    }

    /// Borrow a live peer for inspection (`None` for the CA address or
    /// a dead node).
    pub fn with_peer<R>(&self, id: NodeId, f: impl FnOnce(&OctopusNode) -> R) -> Option<R> {
        match self.world.node(id) {
            Some(Actor::Peer(p)) => Some(f(p)),
            _ => None,
        }
    }

    /// A node's long-term keypair — lets the fuzz harness forge
    /// authentic-looking evidence (correctly signed by the wrong party).
    #[must_use]
    pub fn keypair_of(&self, id: NodeId) -> Option<KeyPair> {
        self.keys.get(&id).map(|(kp, _)| kp.clone())
    }

    /// A node's CA-issued certificate.
    #[must_use]
    pub fn cert_of(&self, id: NodeId) -> Option<octopus_crypto::Certificate> {
        self.keys.get(&id).map(|(_, cert)| *cert)
    }

    /// Have the CA issue a certificate for `id` that expires at
    /// simulated second `expires_at` — the fuzz harness's stale-cert
    /// vector. `None` when `id` never had keys.
    pub fn issue_cert_expiring(
        &mut self,
        id: NodeId,
        expires_at: u64,
    ) -> Option<octopus_crypto::Certificate> {
        let key = self.keys.get(&id).map(|(kp, _)| kp.public())?;
        Some(self.with_ca(|ca| ca.issue_cert_expiring(id, key, expires_at)))
    }
}

/// Seed per-finger adoption provenance from ground truth: the idealized
/// join protocol runs checked finger lookups, so each seeded finger
/// comes with the signed third-party list a real §4.5 check would have
/// produced — the successor list of the finger target's predecessor.
fn seed_provenance(
    node: &mut OctopusNode,
    space: &ShardedIdSpace,
    chord: ChordConfig,
    keys: &BTreeMap<NodeId, (KeyPair, octopus_crypto::Certificate)>,
    now: u64,
) {
    use octopus_chord::signed::successor_list_table;
    use octopus_chord::SignedRoutingTable;
    for i in 0..chord.fingers {
        let ideal = chord.finger_target(node.id, i);
        let owner = space.owner_of(ideal).owner;
        // the justifying signer is a predecessor of the finger whose
        // successor list spans the [ideal, finger) gap; skip ourselves
        // (self-signed justifications convince nobody)
        let signer = (1..=3)
            .map(|d| space.predecessor(owner, d))
            .find(|&s| s != node.id && s != owner);
        let Some(signer) = signer else { continue };
        let Some((kp, cert)) = keys.get(&signer) else {
            continue;
        };
        let list = space.successor_list(signer, chord.successors);
        let signed = SignedRoutingTable::sign(successor_list_table(signer, list), now, kp, *cert);
        node.set_finger_provenance(i, signed);
    }
}

/// Initialize a node's ring state from ground truth (idealized join).
fn seed_from_truth(
    node: &mut OctopusNode,
    space: &ShardedIdSpace,
    chord: ChordConfig,
    rng: &mut impl Rng,
) {
    let id = node.id;
    let succs = space.successor_list(id, chord.successors);
    let preds = space.predecessor_list(id, chord.predecessors);
    let fingers = (0..chord.fingers)
        .map(|i| space.owner_of(chord.finger_target(id, i)).owner)
        .collect();
    // initial relay pairs: as if walks had already run (the pool is
    // immediately refreshed by real walks every 15 s)
    let mut pairs = Vec::new();
    for _ in 0..4 {
        let a = space.random_member(rng);
        let b = space.random_member(rng);
        if a != b && a != id && b != id {
            pairs.push((a, b));
        }
    }
    node.seed_state(succs, preds, fingers, pairs);
}
