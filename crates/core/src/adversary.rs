//! The colluding adversary (threat model, §3.2).
//!
//! A fraction `f` of nodes is malicious; they behave arbitrarily, log
//! everything they see, and share knowledge over an out-of-band channel
//! with negligible delay. This module is that channel: a directory of
//! live colluders plus the fabrication routines for each active attack.
//!
//! Malicious nodes hold an [`AdversaryHandle`] onto *their shard's
//! replica* of the directory, so a successful fabrication by one node
//! (e.g. "which colluder most closely succeeds this position?") reflects
//! every colluder instantly — the paper's "high-speed communication
//! channel" assumption. Protocol code only ever *reads* the directory
//! (the dice rolls draw from each node's own RNG stream), and because
//! each shard reads a private replica, parallel window execution never
//! contends on a shared lock or bounces its cache lines. The
//! single-threaded simulation driver mutates **all** replicas in shard
//! order between windows via [`ShardedAdversary::update`] — the
//! deterministic barrier-time merge that keeps every replica identical.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock, RwLockReadGuard};

use octopus_chord::signed::successor_list_table;
use octopus_chord::{ChordConfig, SignedSuccessorList};
use octopus_crypto::{Certificate, KeyPair};
use octopus_id::{Key, NodeId};
use rand::Rng;

/// Which active attack the adversary mounts (§5's three experiments plus
/// the Appendix II DoS experiment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackKind {
    /// Purely passive: observe, never deviate (anonymity analysis §6
    /// assumes this — active attackers get identified and evicted).
    Passive,
    /// Lookup bias (§4.3, Figs. 2(a)/2(b), 3(a)/3(b)): manipulate
    /// successor lists in query responses and pollute honest nodes'
    /// lists during stabilization.
    LookupBias,
    /// Fingertable manipulation (§4.4, Fig. 3(c)): return fingertables
    /// pointing at colluders to misdirect walks and lookups.
    FingerManipulation,
    /// Fingertable pollution (§4.5, Fig. 4): bias finger-update lookups
    /// so honest fingertables absorb colluders.
    FingerPollution,
    /// Selective DoS (Appendix II, Fig. 9): drop relayed queries when
    /// the circuit cannot be compromised.
    SelectiveDos,
}

/// Shared adversary directory and fabrication logic.
#[derive(Clone, Debug)]
pub struct AdversaryState {
    kind: AttackKind,
    /// Probability a malicious node attacks a given opportunity
    /// ("attack rate" in Figs. 3/4/9: 100 % or 50 %).
    attack_rate: f64,
    /// Probability a checked malicious predecessor covers for a
    /// colluding finger by answering with a *consistent* manipulated
    /// successor list (50 % in Table 2's caption).
    consistent_collusion: f64,
    /// Live colluders, sorted by ring position.
    colluders: BTreeSet<NodeId>,
    /// Colluders share key material over the out-of-band channel, which
    /// lets any of them fabricate statements signed by any other — at
    /// the price of sacrificing the signer once the CA verifies the lie.
    keypairs: BTreeMap<NodeId, (KeyPair, Certificate)>,
}

/// The range-partitioned adversary directory: one [`AdversaryState`]
/// replica per world shard. Shard threads read *their own* replica
/// through an [`AdversaryHandle`], so parallel windows never contend on
/// one lock; the single-threaded driver mutates **all** replicas in
/// shard order between windows via [`ShardedAdversary::update`], which
/// keeps every replica byte-identical (the barrier-time merge).
#[derive(Clone, Debug)]
pub struct ShardedAdversary {
    replicas: Arc<Vec<RwLock<AdversaryState>>>,
}

impl ShardedAdversary {
    /// A handle pinned to `shard`'s replica, cloned into each malicious
    /// node that the world maps onto that shard.
    ///
    /// # Panics
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn handle(&self, shard: usize) -> AdversaryHandle {
        assert!(
            shard < self.replicas.len(),
            "shard {shard} out of range ({} replicas)",
            self.replicas.len()
        );
        AdversaryHandle {
            replicas: Arc::clone(&self.replicas),
            shard,
        }
    }

    /// Number of per-shard replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Driver-side read access (replica 0; every replica is identical).
    ///
    /// # Panics
    /// Panics if a previous lock holder panicked (poisoned lock).
    pub fn read(&self) -> RwLockReadGuard<'_, AdversaryState> {
        self.replicas[0].read().expect("adversary lock poisoned")
    }

    /// Apply one mutation to every replica, in shard order, and return
    /// the value it produced on replica 0. Driver-only, between windows
    /// — this is the deterministic barrier-time merge; `f` must be a
    /// pure function of its argument (it runs once per replica).
    ///
    /// # Panics
    /// Panics if a previous lock holder panicked (poisoned lock).
    pub fn update<T>(&self, f: impl Fn(&mut AdversaryState) -> T) -> T {
        let mut first = None;
        for (i, replica) in self.replicas.iter().enumerate() {
            let out = f(&mut replica.write().expect("adversary lock poisoned"));
            if i == 0 {
                first = Some(out);
            }
        }
        first.expect("at least one replica")
    }
}

/// A malicious node's read handle onto its shard's replica of the
/// adversary directory. Reads are uncontended across shards by
/// construction; all writes flow through [`ShardedAdversary::update`].
#[derive(Clone, Debug)]
pub struct AdversaryHandle {
    replicas: Arc<Vec<RwLock<AdversaryState>>>,
    shard: usize,
}

impl AdversaryHandle {
    /// Read access (protocol fabrication paths; safe from the owning
    /// shard's thread — or any thread, the replica is merely *warmer*
    /// on its own shard).
    ///
    /// # Panics
    /// Panics if a previous lock holder panicked (poisoned lock).
    pub fn read(&self) -> RwLockReadGuard<'_, AdversaryState> {
        self.replicas[self.shard]
            .read()
            .expect("adversary lock poisoned")
    }
}

impl AdversaryState {
    /// New adversary.
    #[must_use]
    pub fn new(kind: AttackKind, attack_rate: f64, consistent_collusion: f64) -> Self {
        AdversaryState {
            kind,
            attack_rate,
            consistent_collusion,
            colluders: BTreeSet::new(),
            keypairs: BTreeMap::new(),
        }
    }

    /// Share a colluder's key material with the collective.
    pub fn share_keys(&mut self, id: NodeId, keypair: KeyPair, cert: Certificate) {
        self.keypairs.insert(id, (keypair, cert));
    }

    /// Fabricate a signed "provenance" list justifying the manipulated
    /// finger `fprime` for ideal id `ideal`: a colluder preceding the
    /// ideal signs a colluders-only successor list whose gap
    /// `[ideal, fprime)` is empty. Verifiable to the CA — and once the
    /// CA learns the skipped node was stable, the signer is sacrificed.
    #[must_use]
    pub fn fabricate_provenance(
        &self,
        ideal: Key,
        fprime: NodeId,
        k: usize,
        now: u64,
    ) -> Option<SignedSuccessorList> {
        let signer = self.prev_colluder_before(ideal.as_id())?;
        if signer == fprime {
            return None;
        }
        let (kp, cert) = self.keypairs.get(&signer)?;
        let list = self.fake_successor_list(signer, k);
        if list.is_empty() {
            return None;
        }
        Some(SignedSuccessorList::sign(
            successor_list_table(signer, list),
            now,
            kp,
            *cert,
        ))
    }

    /// Replicate into the sharded directory, one replica per world
    /// shard (clamped to at least one).
    #[must_use]
    pub fn sharded(self, shards: usize) -> ShardedAdversary {
        let shards = shards.max(1);
        let mut replicas = Vec::with_capacity(shards);
        for _ in 0..shards.saturating_sub(1) {
            replicas.push(RwLock::new(self.clone()));
        }
        replicas.push(RwLock::new(self));
        ShardedAdversary {
            replicas: Arc::new(replicas),
        }
    }

    /// The active attack.
    #[must_use]
    pub fn kind(&self) -> AttackKind {
        self.kind
    }

    /// The attack rate.
    #[must_use]
    pub fn attack_rate(&self) -> f64 {
        self.attack_rate
    }

    /// Enroll a malicious node.
    pub fn enroll(&mut self, id: NodeId) {
        self.colluders.insert(id);
    }

    /// Remove a colluder (revoked or churned out).
    pub fn remove(&mut self, id: NodeId) -> bool {
        self.colluders.remove(&id)
    }

    /// Is `id` a live colluder?
    #[must_use]
    pub fn is_colluder(&self, id: NodeId) -> bool {
        self.colluders.contains(&id)
    }

    /// Number of live colluders.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.colluders.len()
    }

    /// Roll the attack-rate dice.
    pub fn attacks_now<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.attack_rate
    }

    /// Roll the consistent-collusion dice (§4.4 cover-up).
    pub fn colludes_consistently<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.consistent_collusion
    }

    /// The first colluder strictly clockwise after `pos` (wrapping).
    #[must_use]
    pub fn next_colluder_after(&self, pos: NodeId) -> Option<NodeId> {
        self.colluders
            .range((std::ops::Bound::Excluded(pos), std::ops::Bound::Unbounded))
            .next()
            .copied()
            .or_else(|| self.colluders.iter().next().copied().filter(|&c| c != pos))
    }

    /// The first colluder strictly anticlockwise before `pos` (wrapping).
    #[must_use]
    pub fn prev_colluder_before(&self, pos: NodeId) -> Option<NodeId> {
        self.colluders
            .range(..pos)
            .next_back()
            .copied()
            .or_else(|| {
                self.colluders
                    .iter()
                    .next_back()
                    .copied()
                    .filter(|&c| c != pos)
            })
    }

    /// A colluders-only successor list for `owner` (§4.3's manipulated
    /// list): the `k` colluders clockwise after `owner`, skipping every
    /// honest node in between so keys in the gap resolve to colluders.
    #[must_use]
    pub fn fake_successor_list(&self, owner: NodeId, k: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(k);
        let mut pos = owner;
        for _ in 0..k {
            match self.next_colluder_after(pos) {
                Some(c) if !out.contains(&c) => {
                    out.push(c);
                    pos = c;
                }
                _ => break,
            }
        }
        out
    }

    /// A colluders-only predecessor list for `owner` (§4.4: F′ hides the
    /// true closer predecessors behind colluders).
    #[must_use]
    pub fn fake_predecessor_list(&self, owner: NodeId, k: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(k);
        let mut pos = owner;
        for _ in 0..k {
            match self.prev_colluder_before(pos) {
                Some(c) if !out.contains(&c) && c != owner => {
                    out.push(c);
                    pos = c;
                }
                _ => break,
            }
        }
        out
    }

    /// A manipulated fingertable for `owner`: each finger is replaced by
    /// the colluder closest after its ideal target, **when that colluder
    /// stays within `bound` of the target** (so the table passes NISAN
    /// bound checking, §4.1); otherwise the honest finger is kept.
    #[must_use]
    pub fn fake_fingers(
        &self,
        owner: NodeId,
        config: ChordConfig,
        honest: &[NodeId],
        bound: u64,
    ) -> Vec<NodeId> {
        honest
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let target = config.finger_target(owner, i as u32);
                match self.next_colluder_after(target.as_id()) {
                    Some(c) if target.distance_to_node(c) <= bound => c,
                    _ => f,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adversary_with(ids: &[u64]) -> AdversaryState {
        let mut a = AdversaryState::new(AttackKind::LookupBias, 1.0, 0.5);
        for &i in ids {
            a.enroll(NodeId(i));
        }
        a
    }

    #[test]
    fn directory_basics() {
        let mut a = adversary_with(&[10, 20, 30]);
        assert!(a.is_colluder(NodeId(10)));
        assert_eq!(a.live_count(), 3);
        assert!(a.remove(NodeId(20)));
        assert!(!a.remove(NodeId(20)));
        assert_eq!(a.live_count(), 2);
    }

    #[test]
    fn next_colluder_wraps() {
        let a = adversary_with(&[10, 20, 30]);
        assert_eq!(a.next_colluder_after(NodeId(15)), Some(NodeId(20)));
        assert_eq!(a.next_colluder_after(NodeId(30)), Some(NodeId(10)));
        assert_eq!(a.next_colluder_after(NodeId(35)), Some(NodeId(10)));
        assert_eq!(a.next_colluder_after(NodeId(10)), Some(NodeId(20)));
    }

    #[test]
    fn prev_colluder_wraps() {
        let a = adversary_with(&[10, 20, 30]);
        assert_eq!(a.prev_colluder_before(NodeId(15)), Some(NodeId(10)));
        assert_eq!(a.prev_colluder_before(NodeId(10)), Some(NodeId(30)));
        assert_eq!(a.prev_colluder_before(NodeId(5)), Some(NodeId(30)));
    }

    #[test]
    fn fake_successor_list_skips_honest() {
        let a = adversary_with(&[100, 200, 300]);
        // manipulated list for a malicious node at 50: colluders only
        let l = a.fake_successor_list(NodeId(50), 2);
        assert_eq!(l, vec![NodeId(100), NodeId(200)]);
    }

    #[test]
    fn fake_successor_list_handles_few_colluders() {
        let a = adversary_with(&[100]);
        let l = a.fake_successor_list(NodeId(50), 3);
        assert_eq!(l, vec![NodeId(100)]);
        let empty = AdversaryState::new(AttackKind::LookupBias, 1.0, 0.5);
        assert!(empty.fake_successor_list(NodeId(50), 3).is_empty());
    }

    #[test]
    fn fake_pred_list_anticlockwise() {
        let a = adversary_with(&[100, 200, 300]);
        let l = a.fake_predecessor_list(NodeId(250), 2);
        assert_eq!(l, vec![NodeId(200), NodeId(100)]);
    }

    #[test]
    fn fake_fingers_respect_bound() {
        let a = adversary_with(&[1000, 5000]);
        let cfg = ChordConfig {
            fingers: 4,
            successors: 2,
            predecessors: 2,
        };
        // node 0's finger targets: 2^60, 2^61, 2^62, 2^63 — colluders at
        // 1000/5000 are nowhere near within a small bound, so honest
        // fingers are kept
        let honest = vec![NodeId(7), NodeId(8), NodeId(9), NodeId(11)];
        let faked = a.fake_fingers(NodeId(0), cfg, &honest, 1 << 20);
        assert_eq!(faked, honest);
        // with an enormous bound, colluders substitute
        let faked = a.fake_fingers(NodeId(0), cfg, &honest, u64::MAX);
        assert!(faked.iter().all(|f| a.is_colluder(*f)));
    }

    #[test]
    fn attack_rate_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let never = AdversaryState::new(AttackKind::LookupBias, 0.0, 0.5);
        let always = AdversaryState::new(AttackKind::LookupBias, 1.0, 0.5);
        assert!(!(0..100).any(|_| never.attacks_now(&mut rng)));
        assert!((0..100).all(|_| always.attacks_now(&mut rng)));
    }

    #[test]
    fn sharded_update_keeps_replicas_identical() {
        let sharded = adversary_with(&[10, 20]).sharded(4);
        assert_eq!(sharded.replica_count(), 4);
        assert!(sharded.update(|a| a.remove(NodeId(10))));
        sharded.update(|a| a.enroll(NodeId(40)));
        for s in 0..4 {
            let view = sharded.handle(s);
            let a = view.read();
            assert!(!a.is_colluder(NodeId(10)));
            assert!(a.is_colluder(NodeId(40)));
            assert_eq!(a.live_count(), 2);
        }
        assert_eq!(sharded.read().live_count(), 2);
    }

    #[test]
    fn consistent_collusion_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = AdversaryState::new(AttackKind::FingerManipulation, 1.0, 0.5);
        let hits = (0..10_000)
            .filter(|_| a.colludes_consistently(&mut rng))
            .count();
        assert!((4500..5500).contains(&hits), "got {hits}");
    }
}
