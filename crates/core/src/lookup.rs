//! The anonymous Octopus lookup (§4.1–4.2).
//!
//! Every query of a lookup travels over its *own* anonymous path
//! (Fig. 1(b): the shared first pair (A, B) plus a per-query pair
//! (Cᵢ, Dᵢ)), and dummy queries to plausible positions are mixed in so a
//! passive adversary cannot tell which observed queries belong together
//! or which are real — defeating the range-estimation attack that breaks
//! NISAN and Torsk.

use octopus_chord::{NextHop, SignedRoutingTable};
use octopus_id::{Key, NodeId};
use octopus_net::Addr;
use octopus_sim::SimTime;
use rand::seq::SliceRandom;

use crate::messages::Report;
use crate::mutation::{self, Mutation};
use crate::node::{AnonPurpose, NodeCtx, OctopusNode};
use crate::simnet::Control;
use crate::trace::TraceEvent;

/// Hop cap for one lookup (honest lookups take Θ(log N)).
const MAX_LOOKUP_HOPS: usize = 32;
/// Per-query retry budget when a path times out.
const MAX_RETRIES: usize = 2;

/// An application lookup in progress.
#[derive(Clone, Debug)]
pub(crate) struct LookupState {
    /// The hidden lookup key.
    pub key: Key,
    /// The shared first relay pair (A, B) for this lookup.
    pub first_pair: (NodeId, NodeId),
    /// Remote queries performed so far.
    pub hops: usize,
    /// Nodes queried (for diagnostics).
    pub queried: Vec<NodeId>,
    /// When the lookup started.
    pub started: SimTime,
    /// Retries left for the current step.
    pub retries: usize,
    /// The node the outstanding query targets.
    pub awaiting: NodeId,
}

impl OctopusNode {
    /// Start an anonymous lookup for `key`.
    pub fn start_lookup(&mut self, ctx: &mut NodeCtx<'_>, key: Key) {
        let started = ctx.now();
        match self.routing_table().next_hop(key) {
            NextHop::Found(owner) => {
                self.lookups_done += 1;
                ctx.emit(Control::LookupDone {
                    initiator: self.id,
                    key,
                    result: Some(owner),
                    hops: 0,
                    elapsed: ctx.now() - started,
                });
            }
            NextHop::Forward(first_target) => {
                let Some(first_pair) = self.sample_relay_pair(ctx.rng()) else {
                    return; // no anonymization relays yet
                };
                let id = self.fresh_req();
                let st = LookupState {
                    key,
                    first_pair,
                    hops: 0,
                    queried: Vec::new(),
                    started,
                    retries: MAX_RETRIES,
                    awaiting: first_target,
                };
                self.lookups.insert(id, st);
                self.send_lookup_query(ctx, id, first_target);
                self.send_dummies(ctx, id);
            }
        }
    }

    /// Fire the configured number of dummy queries for lookup `id`
    /// toward random plausible positions (§4.2).
    fn send_dummies(&mut self, ctx: &mut NodeCtx<'_>, id: u64) {
        let known = self.known_nodes();
        if known.is_empty() {
            return;
        }
        for _ in 0..self.cfg.dummy_queries {
            let Some(&target) = known.as_slice().choose(ctx.rng()) else {
                break;
            };
            let Some(relays) = self.lookup_path(ctx, id, target) else {
                break;
            };
            self.send_anonymous_query(
                ctx,
                &relays,
                target,
                AnonPurpose::LookupQuery {
                    lookup: id,
                    dummy: true,
                },
            );
        }
    }

    /// Assemble the 4-relay path for one query of lookup `id`:
    /// the lookup's shared (A, B) plus a fresh per-query pair (Cᵢ, Dᵢ).
    ///
    /// All four relays must be distinct — a flow revisiting a relay would
    /// collide with its own reply-routing state (and a repeated relay
    /// weakens the path in the real system too) — and none may be the
    /// queried node or the initiator.
    fn lookup_path(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        id: u64,
        target: NodeId,
    ) -> Option<Vec<NodeId>> {
        let (a, b) = self.lookups.get(&id)?.first_pair;
        if a == target || b == target || a == self.id || b == self.id {
            return None;
        }
        for _ in 0..8 {
            let Some((c, d)) = self.sample_relay_pair(ctx.rng()) else {
                break;
            };
            let path = [a, b, c, d];
            let distinct = a != c && a != d && b != c && b != d;
            if distinct && !path.contains(&target) && !path.contains(&self.id) {
                return Some(path.to_vec());
            }
        }
        // degenerate fallback: a single pair still anonymizes, just with
        // less unlinkability between queries
        Some(vec![a, b])
    }

    fn send_lookup_query(&mut self, ctx: &mut NodeCtx<'_>, id: u64, target: NodeId) {
        let Some(relays) = self.lookup_path(ctx, id, target) else {
            self.fail_lookup(ctx, id);
            return;
        };
        if let Some(st) = self.lookups.get_mut(&id) {
            st.awaiting = target;
        }
        self.trace(ctx, || TraceEvent::LookupQuery {
            node: self.id,
            lookup: id,
            target,
        });
        self.send_anonymous_query(
            ctx,
            &relays,
            target,
            AnonPurpose::LookupQuery {
                lookup: id,
                dummy: false,
            },
        );
    }

    /// A lookup query's routing table arrived.
    pub(crate) fn on_lookup_table(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        id: u64,
        table: SignedRoutingTable,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        let Some(st) = self.lookups.get(&id) else {
            return;
        };
        let awaiting = st.awaiting;
        let owner = table.owner();
        // recompute both gate inputs independently of the accept
        // decision so the oracle can observe a broken decision path
        // (the verify call is pure — no RNG — so evaluating it
        // unconditionally never shifts a seeded stream)
        let owner_match = owner == awaiting;
        let sig_ok = table.verify(self.ca_key, now).is_ok();
        let accepted = if mutation::is(Mutation::AcceptStaleTables) {
            owner_match // injected bug: certificate check skipped
        } else {
            owner_match && sig_ok
        };
        self.trace(ctx, || TraceEvent::TableChecked {
            node: self.id,
            lookup: id,
            owner,
            awaiting,
            sig_ok,
            accepted,
        });
        if !accepted {
            return; // wrong or forged responder; the timeout will retry
        }
        let st = self.lookups.get_mut(&id).expect("state checked above");
        st.hops += 1;
        st.retries = MAX_RETRIES;
        st.queried.push(table.owner());
        let (key, hops, started) = (st.key, st.hops, st.started);
        match table.table.next_hop(key) {
            NextHop::Found(owner) => {
                let st = self.lookups.remove(&id).expect("state exists");
                self.lookups_done += 1;
                ctx.emit(Control::LookupDone {
                    initiator: self.id,
                    key,
                    result: Some(owner),
                    hops: st.hops,
                    elapsed: ctx.now() - started,
                });
            }
            NextHop::Forward(next) => {
                if hops >= MAX_LOOKUP_HOPS || next == self.id {
                    self.fail_lookup(ctx, id);
                } else {
                    self.send_lookup_query(ctx, id, next);
                }
            }
        }
        self.buffer_table(table);
    }

    /// An anonymous lookup query timed out (dropped or dead path).
    pub(crate) fn on_lookup_timeout(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        id: u64,
        flow: u64,
        relays: Vec<NodeId>,
    ) {
        let Some(st) = self.lookups.get_mut(&id) else {
            return;
        };
        let target = st.awaiting;
        if std::env::var("OCTO_DEBUG").is_ok() {
            eprintln!(
                "[dbg] lookup timeout at {} flow={flow:x} target={target} relays={relays:?}",
                ctx.now()
            );
        }
        // Appendix II: report the failed path so the CA can walk the
        // forwarding receipts and identify the dropper
        let initiator_receipt = self.receipts.get(&flow).cloned();
        let report = Report::Dropper {
            reporter: self.id,
            reporter_cert: self.cert,
            flow,
            relays,
            target,
            initiator_receipt,
        };
        self.file_report(ctx, report);
        let Some(st) = self.lookups.get_mut(&id) else {
            return;
        };
        if st.retries == 0 {
            self.fail_lookup(ctx, id);
            return;
        }
        st.retries -= 1;
        // retry over a fresh first pair as well (any relay may be bad)
        if let Some(pair) = self.sample_relay_pair(ctx.rng()) {
            if let Some(st) = self.lookups.get_mut(&id) {
                st.first_pair = pair;
            }
        }
        self.send_lookup_query(ctx, id, target);
    }

    fn fail_lookup(&mut self, ctx: &mut NodeCtx<'_>, id: u64) {
        if let Some(st) = self.lookups.remove(&id) {
            ctx.emit(Control::LookupDone {
                initiator: self.id,
                key: st.key,
                result: None,
                hops: st.hops,
                elapsed: ctx.now() - st.started,
            });
        }
    }

    /// Dispatch an anonymous reply to its purpose handler.
    pub(crate) fn handle_anon_reply(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _flow: u64,
        purpose: AnonPurpose,
        _relays: Vec<NodeId>,
        payload: crate::messages::Msg,
    ) {
        use crate::messages::Msg;
        match (purpose, payload) {
            (AnonPurpose::LookupQuery { lookup, dummy }, Msg::Table { table, .. }) if !dummy => {
                self.on_lookup_table(ctx, lookup, *table);
            }
            (AnonPurpose::NeighborCheck { target }, Msg::Table { table, .. }) => {
                self.conclude_neighbor_check(ctx, target, *table);
            }
            (AnonPurpose::FingerStage2 { check }, Msg::Table { table, .. }) => {
                self.conclude_finger_check(ctx, check, *table);
            }
            (AnonPurpose::WalkQuery { walk }, Msg::Table { table, .. }) => {
                self.on_walk_query_reply(ctx, walk, *table);
            }
            (AnonPurpose::WalkDelegate { walk }, Msg::WalkResult { tables, .. }) => {
                self.on_walk_result(ctx, walk, tables);
            }
            _ => {}
        }
    }

    /// An anonymous request timed out; dispatch per purpose.
    pub(crate) fn handle_anon_timeout(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        flow: u64,
        purpose: AnonPurpose,
        relays: Vec<NodeId>,
    ) {
        match purpose {
            AnonPurpose::LookupQuery { lookup, dummy } => {
                if !dummy {
                    self.on_lookup_timeout(ctx, lookup, flow, relays);
                }
            }
            AnonPurpose::NeighborCheck { .. } | AnonPurpose::FingerStage2 { .. } => {
                // surveillance silently retries next period
            }
            AnonPurpose::WalkQuery { walk } | AnonPurpose::WalkDelegate { walk } => {
                self.abort_walk(ctx, walk);
            }
        }
    }
}

/// Re-exported for the `World` driver: the address type nodes use.
pub type LookupAddr = Addr;
