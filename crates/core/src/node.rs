//! The Octopus peer: state, message dispatch, stabilization, and the
//! response paths where a malicious peer deviates.
//!
//! One type plays both roles. Honest behaviour is the default; a node
//! carrying an [`AdversaryHandle`] fabricates responses according
//! to the active [`AttackKind`]. Keeping
//! both in one implementation guarantees attackers and defenders see
//! exactly the same protocol surface — a malicious node cannot tell a
//! surveillance query from a real lookup query, which is precisely the
//! property §4.3 relies on.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use octopus_chord::signed::successor_list_table;
use octopus_chord::{
    stabilize, BoundChecker, ChordConfig, RoutingTable, SignedRoutingTable, SignedSuccessorList,
};
use octopus_crypto::{Certificate, KeyPair, PublicKey};
use octopus_id::{Key, NodeId};
use octopus_net::{Addr, NodeBehavior, Runtime};
use octopus_sim::Duration;
use rand::Rng;

use crate::adversary::{AdversaryHandle, AttackKind};
use crate::config::OctopusConfig;
use crate::lookup::LookupState;
use crate::messages::{
    receipt_bytes, ExitAction, Hop, Msg, OnionPacket, ReceiptToken, Report, Timer,
};
use crate::mutation::{self, Mutation};
use crate::simnet::Control;
use crate::surveillance::FingerCheck;
use crate::trace::TraceEvent;
use crate::walk::{DelegatedWalk, WalkState};

/// Handler context alias used throughout the node implementation.
pub(crate) type NodeCtx<'a> = dyn Runtime<Msg, Timer, Control> + 'a;

/// Why an anonymous (onion-routed) query was sent — recalled when the
/// reply comes back on the flow.
#[derive(Clone, Debug)]
pub(crate) enum AnonPurpose {
    /// A (real or dummy) query of an application lookup.
    LookupQuery {
        /// Lookup id.
        lookup: u64,
        /// Dummy queries are fired and forgotten.
        dummy: bool,
    },
    /// Secret neighbor surveillance test of a predecessor (§4.3).
    NeighborCheck {
        /// The predecessor under test.
        target: NodeId,
    },
    /// Stage 2 of a finger check (§4.4/§4.5): query P′₁'s table.
    FingerStage2 {
        /// The check id.
        check: u64,
    },
    /// A phase-1 random-walk hop queried through the partial path.
    WalkQuery {
        /// The walk id.
        walk: u64,
    },
    /// The phase-2 delegation message to Uₗ.
    WalkDelegate {
        /// The walk id.
        walk: u64,
    },
}

/// Why a *direct* request was sent.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DirectPurpose {
    /// Clockwise stabilization with our first successor.
    StabSucc {
        /// The queried successor.
        peer: NodeId,
    },
    /// Anticlockwise stabilization with our first predecessor.
    StabPred {
        /// The queried predecessor.
        peer: NodeId,
    },
    /// First hop of a random walk (queried directly).
    WalkFirstHop {
        /// The walk id.
        walk: u64,
    },
    /// One step of a (non-anonymous) finger-update lookup.
    FingerLookupStep {
        /// The finger-lookup id.
        fl: u64,
    },
    /// `GetPredList` to a suspect finger F′ (stage 1 of a finger check).
    FingerPredList {
        /// The check id.
        check: u64,
    },
    /// One step of a *delegated* walk phase 2 (we are Uₗ).
    Phase2Step {
        /// Flow of the phase-1 path the result must return on.
        flow: u64,
    },
}

/// State kept while relaying someone else's flow.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RelayFlow {
    /// Where the flow came from (reply direction).
    pub prev: NodeId,
}

/// A non-anonymous iterative finger-update lookup in progress (§4.5).
#[derive(Clone, Debug)]
pub(crate) struct FingerLookup {
    /// Which finger is being refreshed.
    pub index: u32,
    /// The ideal finger target.
    pub target: Key,
    /// Hops taken so far.
    pub hops: usize,
}

/// An Octopus peer.
pub struct OctopusNode {
    /// Ring position.
    pub id: NodeId,
    pub(crate) cfg: OctopusConfig,
    pub(crate) keypair: KeyPair,
    pub(crate) cert: Certificate,
    pub(crate) ca_addr: NodeId,
    pub(crate) ca_key: PublicKey,

    // ---- ring state ----
    pub(crate) successors: Vec<NodeId>,
    pub(crate) predecessors: Vec<NodeId>,
    pub(crate) fingers: Vec<NodeId>,

    // ---- proofs and buffers ----
    pub(crate) proof_queue: VecDeque<SignedSuccessorList>,
    pub(crate) table_buffer: VecDeque<SignedRoutingTable>,
    pub(crate) relay_pool: VecDeque<(NodeId, NodeId)>,

    // ---- request tracking ----
    pub(crate) next_req: u64,
    pub(crate) direct_pending: BTreeMap<u64, DirectPurpose>,
    pub(crate) anon_pending: BTreeMap<u64, (AnonPurpose, Vec<NodeId>)>,
    pub(crate) lookups: BTreeMap<u64, LookupState>,
    pub(crate) walks: BTreeMap<u64, WalkState>,
    pub(crate) delegated: BTreeMap<u64, DelegatedWalk>,
    pub(crate) finger_lookups: BTreeMap<u64, FingerLookup>,
    pub(crate) checks: BTreeMap<u64, FingerCheck>,

    // ---- relaying ----
    pub(crate) relay_flows: BTreeMap<u64, RelayFlow>,
    pub(crate) exit_flows: BTreeMap<u64, u64>, // exit req -> flow
    pub(crate) receipts: BTreeMap<u64, ReceiptToken>, // flow -> receipt held
    pub(crate) awaiting_receipt: BTreeMap<u64, NodeId>, // flow -> next hop

    // ---- finger adoption provenance (per slot): the third-party
    // signed list that justified the finger, shown to the CA when the
    // finger is challenged ----
    pub(crate) finger_prov: BTreeMap<u32, SignedSuccessorList>,

    // ---- misc ----
    pub(crate) revoked: BTreeSet<NodeId>,
    pub(crate) adversary: Option<AdversaryHandle>,
    /// Lookups completed by this node (diagnostics).
    pub lookups_done: u64,
}

impl OctopusNode {
    /// Create a peer. `adversary` is `Some` for malicious nodes.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        id: NodeId,
        cfg: OctopusConfig,
        keypair: KeyPair,
        cert: Certificate,
        ca_addr: NodeId,
        ca_key: PublicKey,
        adversary: Option<AdversaryHandle>,
    ) -> Self {
        OctopusNode {
            id,
            cfg,
            keypair,
            cert,
            ca_addr,
            ca_key,
            successors: Vec::new(),
            predecessors: Vec::new(),
            fingers: Vec::new(),
            proof_queue: VecDeque::new(),
            table_buffer: VecDeque::new(),
            relay_pool: VecDeque::new(),
            next_req: 1,
            direct_pending: BTreeMap::new(),
            anon_pending: BTreeMap::new(),
            lookups: BTreeMap::new(),
            walks: BTreeMap::new(),
            delegated: BTreeMap::new(),
            finger_lookups: BTreeMap::new(),
            checks: BTreeMap::new(),
            relay_flows: BTreeMap::new(),
            exit_flows: BTreeMap::new(),
            receipts: BTreeMap::new(),
            awaiting_receipt: BTreeMap::new(),
            finger_prov: BTreeMap::new(),
            revoked: BTreeSet::new(),
            adversary,
            lookups_done: 0,
        }
    }

    /// Seed the node's ring state (idealized join — see DESIGN.md: the
    /// driver plays the role of the join protocol; stabilization then
    /// maintains the state).
    pub fn seed_state(
        &mut self,
        successors: Vec<NodeId>,
        predecessors: Vec<NodeId>,
        fingers: Vec<NodeId>,
        relay_pairs: Vec<(NodeId, NodeId)>,
    ) {
        self.successors = successors;
        self.predecessors = predecessors;
        self.fingers = fingers;
        self.relay_pool = relay_pairs.into();
    }

    /// Is this node malicious?
    #[must_use]
    pub fn is_malicious(&self) -> bool {
        self.adversary.is_some()
    }

    /// Emit a semantic trace event for the reference-model oracle.
    ///
    /// Only honest nodes trace — malicious deviation is the adversary's
    /// business, not a contract violation — and only when
    /// [`OctopusConfig::trace`] is on. The closure defers construction
    /// so the disabled path costs one branch. Emission consumes no RNG
    /// and sends no wire messages: tracing can never shift a seeded
    /// stream or a report.
    pub(crate) fn trace(&self, ctx: &mut NodeCtx<'_>, ev: impl FnOnce() -> TraceEvent) {
        if self.cfg.trace && !self.is_malicious() {
            ctx.emit(Control::Trace(Box::new(ev())));
        }
    }

    /// Flows this node currently awaits a forwarding receipt on, with
    /// the expected signer (fuzz-harness observation hook).
    #[must_use]
    pub fn awaiting_receipt_flows(&self) -> Vec<(u64, NodeId)> {
        self.awaiting_receipt
            .iter()
            .map(|(&flow, &next)| (flow, next))
            .collect()
    }

    /// Outstanding non-dummy lookup queries as `(flow, awaited table
    /// owner)` pairs (fuzz-harness observation hook).
    #[must_use]
    pub fn pending_lookup_queries(&self) -> Vec<(u64, NodeId)> {
        self.anon_pending
            .iter()
            .filter_map(|(&flow, (purpose, _))| match purpose {
                AnonPurpose::LookupQuery {
                    lookup,
                    dummy: false,
                } => self.lookups.get(lookup).map(|st| (flow, st.awaiting)),
                _ => None,
            })
            .collect()
    }

    /// Current successor list (tests/driver).
    #[must_use]
    pub fn successors(&self) -> &[NodeId] {
        &self.successors
    }

    /// Current predecessor list.
    #[must_use]
    pub fn predecessors(&self) -> &[NodeId] {
        &self.predecessors
    }

    /// Current fingertable.
    #[must_use]
    pub fn fingers(&self) -> &[NodeId] {
        &self.fingers
    }

    /// Relay pool size (tests).
    #[must_use]
    pub fn relay_pool_len(&self) -> usize {
        self.relay_pool.len()
    }

    /// Driver-side: record the provenance justifying finger `slot`
    /// (the idealized join protocol runs checked lookups, so seeded
    /// fingers come with the same evidence real adoptions produce).
    pub fn set_finger_provenance(&mut self, slot: u32, prov: SignedSuccessorList) {
        self.finger_prov.insert(slot, prov);
    }

    /// Driver-side repair: replace the successor list (used by the
    /// simulation's emergency re-join when mass revocation empties a
    /// node's neighborhood).
    pub fn set_successors(&mut self, successors: Vec<NodeId>) {
        self.successors = successors;
    }

    /// Driver-side repair: replace the predecessor list.
    pub fn set_predecessors(&mut self, predecessors: Vec<NodeId>) {
        self.predecessors = predecessors;
    }

    pub(crate) fn fresh_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        // node-unique ids: interleave the node id's low bits so flows
        // from different nodes never collide at relays
        (r << 20) | (self.id.0 & 0xFFFFF)
    }

    /// The node's honest routing table.
    #[must_use]
    pub fn routing_table(&self) -> RoutingTable {
        RoutingTable {
            owner: self.id,
            fingers: self.fingers.clone(),
            successors: self.successors.clone(),
            predecessors: self.predecessors.clone(),
        }
    }

    pub(crate) fn chord(&self) -> ChordConfig {
        self.cfg.chord
    }

    pub(crate) fn sign_table(&self, table: RoutingTable, now_secs: u64) -> SignedRoutingTable {
        SignedRoutingTable::sign(table, now_secs, &self.keypair, self.cert)
    }

    /// The bound used both to *check* received fingertables and by the
    /// adversary to stay under the detection radar.
    pub(crate) fn bound_checker(&self) -> BoundChecker {
        BoundChecker::from_successor_list(self.chord(), self.id, &self.successors)
    }

    /// All node ids this peer currently knows — dummy-query candidates.
    pub(crate) fn known_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .fingers
            .iter()
            .chain(self.successors.iter())
            .chain(self.predecessors.iter())
            .chain(self.table_buffer.iter().map(|t| &t.table.owner))
            .copied()
            .filter(|&n| n != self.id && !self.revoked.contains(&n))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Take a random relay pair from the pool (pairs are reusable; the
    /// pool is refreshed by periodic walks).
    pub(crate) fn sample_relay_pair(&mut self, rng: &mut impl Rng) -> Option<(NodeId, NodeId)> {
        if self.relay_pool.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..self.relay_pool.len());
        Some(self.relay_pool[i])
    }

    pub(crate) fn push_relay_pair(&mut self, pair: (NodeId, NodeId)) {
        if self.relay_pool.len() >= 16 {
            self.relay_pool.pop_front();
        }
        self.relay_pool.push_back(pair);
    }

    // ------------------------------------------------------------------
    // Response fabrication: where malicious nodes deviate.
    // ------------------------------------------------------------------

    /// The successor list this node *presents* right now (honest, or
    /// manipulated per the active attack).
    pub(crate) fn presented_successors(
        &self,
        rng: &mut impl Rng,
        stabilization: bool,
    ) -> Vec<NodeId> {
        if let Some(adv) = &self.adversary {
            let adv = adv.read();
            let manipulate = match adv.kind() {
                // lookup bias manipulates query responses AND pollutes
                // stabilization (Fig. 2(a)/(b))
                AttackKind::LookupBias => adv.attacks_now(rng),
                // under the finger attacks, malicious nodes cover for
                // colluding fingers by presenting consistent
                // colluders-only successor lists with probability 50 %
                // (Table 2 caption). Stabilization stays honest — the
                // succ-list attack is not the experiment's subject.
                AttackKind::FingerManipulation | AttackKind::FingerPollution => {
                    !stabilization && adv.colludes_consistently(rng)
                }
                AttackKind::Passive | AttackKind::SelectiveDos => false,
            };
            if manipulate {
                let fake = adv.fake_successor_list(self.id, self.cfg.chord.successors);
                if !fake.is_empty() {
                    return fake;
                }
            }
        }
        self.successors.clone()
    }

    /// The fingertable this node presents.
    pub(crate) fn presented_fingers(&self, rng: &mut impl Rng) -> Vec<NodeId> {
        if let Some(adv) = &self.adversary {
            let adv = adv.read();
            let manipulate = matches!(
                adv.kind(),
                AttackKind::FingerManipulation | AttackKind::FingerPollution
            ) && adv.attacks_now(rng);
            if manipulate {
                let bound = (self.bound_checker().mean_spacing() as f64
                    * BoundChecker::DEFAULT_BETA) as u64;
                return adv.fake_fingers(self.id, self.cfg.chord, &self.fingers, bound);
            }
        }
        self.fingers.clone()
    }

    /// The predecessor list this node presents. Under the finger
    /// attacks, malicious nodes always hide their honest predecessors
    /// behind colluders (§4.4: F′ "has to manipulate its predecessor
    /// list" or be caught immediately).
    pub(crate) fn presented_predecessors(&self) -> Vec<NodeId> {
        if let Some(adv) = &self.adversary {
            let adv = adv.read();
            if matches!(
                adv.kind(),
                AttackKind::FingerManipulation | AttackKind::FingerPollution
            ) {
                let fake = adv.fake_predecessor_list(self.id, self.cfg.chord.predecessors);
                if !fake.is_empty() {
                    return fake;
                }
            }
        }
        self.predecessors.clone()
    }

    /// Build and sign the routing table presented to a `GetTable` query.
    pub(crate) fn presented_table(&self, ctx: &mut NodeCtx<'_>) -> SignedRoutingTable {
        let now = ctx.now().as_secs_f64() as u64;
        let table = RoutingTable {
            owner: self.id,
            fingers: self.presented_fingers(ctx.rng()),
            successors: self.presented_successors(ctx.rng(), false),
            predecessors: self.presented_predecessors(),
        };
        self.sign_table(table, now)
    }

    /// Should a malicious relay drop this onion forward? (Appendix II:
    /// drop when the relay adjacent to the initiator is not a colluder,
    /// i.e. the circuit cannot be compromised anyway.)
    pub(crate) fn drops_flow(&self, prev: NodeId, rng: &mut impl Rng) -> bool {
        let Some(adv) = &self.adversary else {
            return false;
        };
        let adv = adv.read();
        adv.kind() == AttackKind::SelectiveDos && !adv.is_colluder(prev) && adv.attacks_now(rng)
    }

    // ------------------------------------------------------------------
    // Anonymous query plumbing.
    // ------------------------------------------------------------------

    /// Send an anonymous `GetTable` to `target` through `relays`,
    /// registering `purpose` for the reply. Returns the flow id.
    pub(crate) fn send_anonymous_query(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        relays: &[NodeId],
        target: NodeId,
        purpose: AnonPurpose,
    ) -> u64 {
        self.send_anon_action(ctx, relays, ExitAction::QueryTable { target }, purpose)
    }

    /// Send any onion-wrapped action through `relays`. Returns the flow.
    pub(crate) fn send_anon_action(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        relays: &[NodeId],
        action: ExitAction,
        purpose: AnonPurpose,
    ) -> u64 {
        let flow = self.fresh_req();
        let route: Vec<Hop> = relays
            .iter()
            .enumerate()
            .map(|(i, &node)| Hop {
                node,
                delay: i == 1, // the second relay (B) adds the anti-timing delay
            })
            .collect();
        debug_assert!(
            !route.is_empty(),
            "anonymous query needs at least one relay"
        );
        let first = route[0].node;
        let packet = OnionPacket {
            flow,
            route: route[1..].to_vec(),
            action,
        };
        self.anon_pending.insert(flow, (purpose, relays.to_vec()));
        self.awaiting_receipt.insert(flow, first);
        self.trace(ctx, || TraceEvent::AnonSent {
            node: self.id,
            flow,
            first,
        });
        ctx.send(first, Msg::Onion(packet));
        ctx.set_timer(
            self.cfg.request_timeout,
            Timer::RequestTimeout { req: flow },
        );
        ctx.set_timer(Duration::from_millis(800), Timer::ReceiptDeadline { flow });
        flow
    }

    /// Send a direct request with timeout tracking.
    pub(crate) fn send_direct(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        to: NodeId,
        msg_for: impl FnOnce(u64) -> Msg,
        purpose: DirectPurpose,
    ) -> u64 {
        let req = self.fresh_req();
        self.direct_pending.insert(req, purpose);
        ctx.send(to, msg_for(req));
        ctx.set_timer(self.cfg.request_timeout, Timer::RequestTimeout { req });
        req
    }

    // ------------------------------------------------------------------
    // Stabilization (§4.3: clockwise + anticlockwise, every 2 s).
    // ------------------------------------------------------------------

    pub(crate) fn stabilize(&mut self, ctx: &mut NodeCtx<'_>) {
        if let Some(&s1) = self.successors.first() {
            self.send_direct(
                ctx,
                s1,
                |req| Msg::GetSuccList { req },
                DirectPurpose::StabSucc { peer: s1 },
            );
        }
        if let Some(&p1) = self.predecessors.first() {
            self.send_direct(
                ctx,
                p1,
                |req| Msg::GetPredList { req },
                DirectPurpose::StabPred { peer: p1 },
            );
        }
        ctx.set_timer(self.cfg.stabilize_every, Timer::Stabilize);
    }

    pub(crate) fn on_succ_list(&mut self, peer: NodeId, list: SignedSuccessorList) {
        if list.owner() != peer {
            return; // mis-signed response
        }
        // keep the signed list as a proof (§4.3's proof queue)
        if self.proof_queue.len() >= self.cfg.proof_queue {
            self.proof_queue.pop_front();
        }
        self.proof_queue.push_back(list.clone());
        let merged = stabilize::merge_successor_list(
            self.id,
            peer,
            &list.table.successors,
            self.cfg.chord.successors,
        );
        let merged: Vec<NodeId> = merged
            .into_iter()
            .filter(|n| !self.revoked.contains(n))
            .collect();
        if !merged.is_empty() {
            self.successors = merged;
        }
    }

    pub(crate) fn on_pred_list(&mut self, peer: NodeId, list: &SignedRoutingTable) {
        if list.owner() != peer {
            return;
        }
        let merged = stabilize::merge_predecessor_list(
            self.id,
            peer,
            &list.table.predecessors,
            self.cfg.chord.predecessors,
        );
        let merged: Vec<NodeId> = merged
            .into_iter()
            .filter(|n| !self.revoked.contains(n))
            .collect();
        if !merged.is_empty() {
            self.predecessors = merged;
        }
    }

    /// A peer failed to answer: drop it from neighbor lists (Chord's
    /// failure handling; the lists re-heal from later stabilization).
    pub(crate) fn on_peer_dead(&mut self, peer: NodeId) {
        stabilize::drop_head(&mut self.successors, peer);
        stabilize::drop_head(&mut self.predecessors, peer);
        self.relay_pool.retain(|&(a, b)| a != peer && b != peer);
    }

    /// Learn about a node directly adjacent on the ring (driver-assisted
    /// join announcement; see DESIGN.md).
    pub fn learn_neighbor(&mut self, joiner: NodeId) {
        if joiner == self.id || self.revoked.contains(&joiner) {
            return;
        }
        // insert in clockwise order if it belongs in the successor span
        insert_ordered(
            self.id,
            &mut self.successors,
            joiner,
            self.cfg.chord.successors,
            true,
        );
        insert_ordered(
            self.id,
            &mut self.predecessors,
            joiner,
            self.cfg.chord.predecessors,
            false,
        );
    }

    /// Handle a revocation notice from the CA.
    pub(crate) fn on_revocation(&mut self, revoked: &[NodeId]) {
        if mutation::is(Mutation::SkipRevocationPurge) {
            return; // injected bug: the notice is silently ignored
        }
        for &r in revoked {
            self.revoked.insert(r);
            stabilize::drop_head(&mut self.successors, r);
            stabilize::drop_head(&mut self.predecessors, r);
            for f in &mut self.fingers {
                if *f == r {
                    // temporarily self-point; the next finger update heals it
                    *f = self.id;
                }
            }
            self.relay_pool.retain(|&(a, b)| a != r && b != r);
            self.table_buffer.retain(|t| t.owner() != r);
        }
    }

    pub(crate) fn buffer_table(&mut self, table: SignedRoutingTable) {
        if self.revoked.contains(&table.owner()) {
            return;
        }
        if self.table_buffer.len() >= self.cfg.table_buffer {
            self.table_buffer.pop_front();
        }
        self.table_buffer.push_back(table);
    }

    /// File a report with the CA.
    pub(crate) fn file_report(&mut self, ctx: &mut NodeCtx<'_>, report: Report) {
        ctx.send(self.ca_addr, Msg::Report(Box::new(report)));
    }

    /// Produce the justification for finger `slot` when the CA
    /// challenges it. A malicious node whose presented finger was a
    /// colluder fabricates fresh provenance signed by another colluder —
    /// buying time at the cost of sacrificing the signer (§4.4's
    /// economics).
    fn provenance_for(&mut self, ctx: &mut NodeCtx<'_>, slot: u32) -> Option<SignedSuccessorList> {
        if slot >= self.cfg.chord.fingers {
            return None;
        }
        let ideal = self.chord().finger_target(self.id, slot);
        if let Some(adv) = &self.adversary {
            let adv = adv.read();
            if matches!(
                adv.kind(),
                AttackKind::FingerManipulation | AttackKind::FingerPollution
            ) {
                if let Some(fprime) = adv.next_colluder_after(ideal.as_id()) {
                    let now = ctx.now().as_secs_f64() as u64;
                    if let Some(fabricated) =
                        adv.fabricate_provenance(ideal, fprime, self.cfg.chord.successors, now)
                    {
                        return Some(fabricated);
                    }
                }
            }
        }
        self.finger_prov.get(&slot).cloned()
    }
}

/// Insert `joiner` into an ordered neighbor list if it falls within the
/// list's current span (or the list is undersized).
fn insert_ordered(
    own: NodeId,
    list: &mut Vec<NodeId>,
    joiner: NodeId,
    cap: usize,
    clockwise: bool,
) {
    if list.contains(&joiner) {
        return;
    }
    let dist = |n: NodeId| {
        if clockwise {
            own.distance_to(n)
        } else {
            n.distance_to(own)
        }
    };
    let d = dist(joiner);
    if d == 0 {
        return;
    }
    let pos = list.iter().position(|&n| dist(n) > d);
    match pos {
        Some(i) => {
            list.insert(i, joiner);
            list.truncate(cap);
        }
        // beyond the current span: only adopt when we know nothing yet —
        // otherwise stabilization (not the announcement) extends the list
        None if list.is_empty() => list.push(joiner),
        None => {}
    }
}

// ----------------------------------------------------------------------
// NodeBehavior: dispatch.
// ----------------------------------------------------------------------

impl NodeBehavior for OctopusNode {
    type Msg = Msg;
    type Timer = Timer;
    type Control = Control;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // desynchronize periodic timers across nodes
        let jitter = |ctx: &mut NodeCtx<'_>, base: Duration| {
            Duration((ctx.rng().gen::<u64>() % base.0.max(1)).max(1))
        };
        let t = jitter(ctx, self.cfg.stabilize_every);
        ctx.set_timer(t, Timer::Stabilize);
        let t = jitter(ctx, self.cfg.finger_update_every);
        ctx.set_timer(t, Timer::FingerUpdate);
        let t = jitter(ctx, self.cfg.surveillance_every);
        ctx.set_timer(t, Timer::Surveillance);
        let t = jitter(ctx, self.cfg.walk_every);
        ctx.set_timer(t, Timer::Walk);
        let t = jitter(ctx, self.cfg.lookup_every);
        ctx.set_timer(t, Timer::Lookup);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, from: Addr, msg: Msg) {
        match msg {
            // ---- serving requests ----
            Msg::GetSuccList { req } => {
                let now = ctx.now().as_secs_f64() as u64;
                let succ = self.presented_successors(ctx.rng(), true);
                let list = self.sign_table(successor_list_table(self.id, succ), now);
                ctx.send(
                    from,
                    Msg::SuccList {
                        req,
                        list: Box::new(list),
                    },
                );
            }
            Msg::GetPredList { req } => {
                let now = ctx.now().as_secs_f64() as u64;
                let table = RoutingTable {
                    owner: self.id,
                    fingers: Vec::new(),
                    successors: Vec::new(),
                    predecessors: self.presented_predecessors(),
                };
                let list = self.sign_table(table, now);
                ctx.send(
                    from,
                    Msg::PredList {
                        req,
                        list: Box::new(list),
                    },
                );
            }
            Msg::GetTable { req } => {
                let table = self.presented_table(ctx);
                ctx.send(
                    from,
                    Msg::Table {
                        req,
                        table: Box::new(table),
                    },
                );
            }

            // ---- replies to our direct requests ----
            Msg::SuccList { req, list } => {
                if let Some(DirectPurpose::StabSucc { peer }) = self.direct_pending.remove(&req) {
                    if list
                        .verify(self.ca_key, ctx.now().as_secs_f64() as u64)
                        .is_ok()
                    {
                        self.on_succ_list(peer, *list);
                    }
                }
            }
            Msg::PredList { req, list } => {
                let Some(purpose) = self.direct_pending.remove(&req) else {
                    return;
                };
                match purpose {
                    DirectPurpose::StabPred { peer }
                        if list
                            .verify(self.ca_key, ctx.now().as_secs_f64() as u64)
                            .is_ok() =>
                    {
                        self.on_pred_list(peer, &list);
                    }
                    DirectPurpose::FingerPredList { check } => {
                        self.on_finger_pred_list(ctx, check, *list);
                    }
                    _ => {}
                }
            }
            Msg::Table { req, table } => {
                if let Some(purpose) = self.direct_pending.remove(&req) {
                    self.on_direct_table(ctx, purpose, *table);
                } else if let Some(flow) = self.exit_flows.remove(&req) {
                    // we are an exit relay: carry the reply back
                    if let Some(rf) = self.relay_flows.get(&flow) {
                        let payload = Msg::Table { req: flow, table };
                        ctx.send(
                            rf.prev,
                            Msg::OnionReply {
                                flow,
                                payload: Box::new(payload),
                            },
                        );
                    }
                }
            }

            // ---- onion relaying ----
            Msg::Onion(packet) => self.on_onion(ctx, from, packet),
            Msg::OnionReply { flow, payload } => self.on_onion_reply(ctx, from, flow, *payload),
            Msg::Receipt { token } => {
                let expected = self.awaiting_receipt.get(&token.flow).copied();
                let strict = expected == Some(token.signer) && token.signer == from;
                let accepted = if mutation::is(Mutation::AcceptAnyReceipt) {
                    expected.is_some()
                } else {
                    strict
                };
                self.trace(ctx, || TraceEvent::ReceiptChecked {
                    node: self.id,
                    from,
                    flow: token.flow,
                    signer: token.signer,
                    accepted,
                });
                if accepted {
                    self.awaiting_receipt.remove(&token.flow);
                    self.receipts.insert(token.flow, token);
                }
            }
            Msg::WalkResult { .. } => { /* only valid inside OnionReply */ }

            // ---- CA interactions ----
            Msg::CaProofRequest { case } => {
                let now = ctx.now().as_secs_f64() as u64;
                // present our *current honest* successor list plus the
                // proof queue; a malicious node gains nothing by lying
                // here (forged proofs fail signature checks)
                let own =
                    self.sign_table(successor_list_table(self.id, self.successors.clone()), now);
                ctx.send(
                    from,
                    Msg::CaProofReply {
                        case,
                        own_list: Box::new(own),
                        proofs: self.proof_queue.iter().cloned().collect(),
                    },
                );
            }
            Msg::CaReceiptRequest { case, flow } => {
                ctx.send(
                    from,
                    Msg::CaReceiptReply {
                        case,
                        flow,
                        receipt: self.receipts.get(&flow).copied(),
                    },
                );
            }
            Msg::CaProvRequest { case, slot } => {
                let prov = self.provenance_for(ctx, slot);
                ctx.send(
                    from,
                    Msg::CaProvReply {
                        case,
                        prov: prov.map(Box::new),
                    },
                );
            }
            Msg::Revocation { revoked } => {
                self.on_revocation(&revoked);
                self.trace(ctx, || TraceEvent::RevocationSeen {
                    node: self.id,
                    revoked: revoked.clone(),
                    tracked: revoked.iter().all(|r| self.revoked.contains(r)),
                });
            }

            // messages only the CA consumes
            Msg::Report(_)
            | Msg::CaProofReply { .. }
            | Msg::CaReceiptReply { .. }
            | Msg::CaProvReply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: Timer) {
        match timer {
            Timer::Stabilize => self.stabilize(ctx),
            Timer::FingerUpdate => {
                self.start_finger_update(ctx);
                ctx.set_timer(self.cfg.finger_update_every, Timer::FingerUpdate);
            }
            Timer::Surveillance => {
                self.run_surveillance(ctx);
                ctx.set_timer(self.cfg.surveillance_every, Timer::Surveillance);
            }
            Timer::Walk => {
                self.start_walk(ctx);
                ctx.set_timer(self.cfg.walk_every, Timer::Walk);
            }
            Timer::Lookup => {
                let key = Key(ctx.rng().gen());
                self.start_lookup(ctx, key);
                ctx.set_timer(self.cfg.lookup_every, Timer::Lookup);
            }
            Timer::RequestTimeout { req } => self.on_request_timeout(ctx, req),
            Timer::FingerCheckStage2 { check } => self.finger_check_stage2(ctx, check),
            Timer::ReceiptDeadline { flow } => {
                // in the simulated network a missing receipt only means
                // the next hop died mid-flight; the end-to-end timeout
                // (and the CA's receipt walk) handles droppers, who ack
                // before dropping to avoid immediate local blame
                if self.awaiting_receipt.remove(&flow).is_some() {
                    self.trace(ctx, || TraceEvent::ReceiptExpired {
                        node: self.id,
                        flow,
                    });
                }
            }
            Timer::CaCaseTimeout { .. } => { /* CA-only timer */ }
        }
    }
}

impl OctopusNode {
    fn receipt_token(&self, flow: u64) -> ReceiptToken {
        ReceiptToken {
            flow,
            signer: self.id,
            sig: self.keypair.sign(&receipt_bytes(flow)),
        }
    }

    fn on_onion(&mut self, ctx: &mut NodeCtx<'_>, from: Addr, mut packet: OnionPacket) {
        let flow = packet.flow;
        let route_next = packet.route.first().map(|h| h.node);
        // acknowledge receipt to the previous hop (DoS defense). Droppers
        // also ack — refusing would pin the blame locally and instantly.
        let receipt_sent = !mutation::is(Mutation::ForwardWithoutReceipt);
        if receipt_sent {
            let token = self.receipt_token(flow);
            ctx.send(from, Msg::Receipt { token });
        }
        if self.drops_flow(from, ctx.rng()) {
            return; // selective DoS: silently drop after the receipt
        }
        self.relay_flows.insert(flow, RelayFlow { prev: from });
        let mut forwarded_to = None;
        let mut exited = false;
        if packet.route.is_empty() {
            exited = true;
            // we are the exit relay: act on the initiator's behalf
            match packet.action {
                ExitAction::QueryTable { target } => {
                    let req = self.fresh_req();
                    self.exit_flows.insert(req, flow);
                    ctx.send(target, Msg::GetTable { req });
                }
                ExitAction::Delegate {
                    seed,
                    length,
                    fingers,
                } => {
                    self.on_walk_delegate(ctx, flow, seed, length, fingers);
                }
            }
        } else {
            let hop = packet.route.remove(0);
            self.awaiting_receipt.insert(flow, hop.node);
            ctx.set_timer(Duration::from_millis(800), Timer::ReceiptDeadline { flow });
            let delay = if hop.delay {
                Duration::from_millis(
                    ctx.rng()
                        .gen_range(0..=self.cfg.relay_max_delay.as_millis_f64() as u64),
                )
            } else {
                Duration::ZERO
            };
            let target = if mutation::is(Mutation::MisrouteOnion) {
                from // bounce it back where it came from
            } else {
                hop.node
            };
            forwarded_to = Some(target);
            ctx.send_delayed(target, Msg::Onion(packet), delay);
        }
        self.trace(ctx, || TraceEvent::OnionProcessed {
            node: self.id,
            from,
            flow,
            route_next,
            receipt_sent,
            forwarded_to,
            exited,
        });
    }

    fn on_onion_reply(&mut self, ctx: &mut NodeCtx<'_>, _from: Addr, flow: u64, payload: Msg) {
        if let Some((purpose, relays)) = self.anon_pending.remove(&flow) {
            // the reply reached the initiator
            self.receipts.remove(&flow);
            self.handle_anon_reply(ctx, flow, purpose, relays, payload);
            return;
        }
        if let Some(rf) = self.relay_flows.remove(&flow) {
            // the flow completed; its receipt is no longer evidence
            self.receipts.remove(&flow);
            ctx.send(
                rf.prev,
                Msg::OnionReply {
                    flow,
                    payload: Box::new(payload),
                },
            );
        }
    }

    /// Dispatch a `Table` reply to a direct request.
    fn on_direct_table(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        purpose: DirectPurpose,
        table: octopus_chord::SignedRoutingTable,
    ) {
        match purpose {
            DirectPurpose::WalkFirstHop { walk } => self.on_walk_table(ctx, walk, table),
            DirectPurpose::FingerLookupStep { fl } => self.on_finger_lookup_table(ctx, fl, table),
            DirectPurpose::Phase2Step { flow } => self.on_phase2_table(ctx, flow, table),
            DirectPurpose::StabSucc { .. }
            | DirectPurpose::StabPred { .. }
            | DirectPurpose::FingerPredList { .. } => {}
        }
    }

    fn on_request_timeout(&mut self, ctx: &mut NodeCtx<'_>, req: u64) {
        if let Some(purpose) = self.direct_pending.remove(&req) {
            match purpose {
                DirectPurpose::StabSucc { peer } | DirectPurpose::StabPred { peer } => {
                    self.on_peer_dead(peer);
                }
                DirectPurpose::WalkFirstHop { walk } => self.abort_walk(ctx, walk),
                DirectPurpose::FingerLookupStep { fl } => {
                    self.finger_lookups.remove(&fl);
                }
                DirectPurpose::FingerPredList { check } => {
                    self.checks.remove(&check);
                }
                DirectPurpose::Phase2Step { flow } => {
                    self.delegated.remove(&flow);
                }
            }
            return;
        }
        if let Some((purpose, relays)) = self.anon_pending.remove(&req) {
            self.handle_anon_timeout(ctx, req, purpose, relays);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_crypto::CertificateAuthority;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn test_node(id: u64) -> OctopusNode {
        let mut rng = StdRng::seed_from_u64(id ^ 0xBEEF);
        let mut ca = CertificateAuthority::new(&mut rng);
        let kp = KeyPair::generate(&mut rng);
        let cert = ca.issue(NodeId(id), 1, kp.public(), u64::MAX);
        OctopusNode::new(
            NodeId(id),
            OctopusConfig::default(),
            kp,
            cert,
            NodeId(u64::MAX),
            ca.public_key(),
            None,
        )
    }

    #[test]
    fn fresh_req_unique_per_node() {
        let mut a = test_node(1);
        let mut b = test_node(2);
        let ra: Vec<u64> = (0..5).map(|_| a.fresh_req()).collect();
        let rb: Vec<u64> = (0..5).map(|_| b.fresh_req()).collect();
        for x in &ra {
            assert!(!rb.contains(x), "req ids must not collide across nodes");
        }
    }

    #[test]
    fn learn_neighbor_orders_lists() {
        let mut n = test_node(100);
        n.seed_state(vec![NodeId(120)], vec![NodeId(80)], vec![], vec![]);
        n.learn_neighbor(NodeId(110));
        assert_eq!(n.successors(), &[NodeId(110), NodeId(120)]);
        n.learn_neighbor(NodeId(90));
        assert_eq!(n.predecessors(), &[NodeId(90), NodeId(80)]);
        // duplicate ignored
        n.learn_neighbor(NodeId(110));
        assert_eq!(n.successors().len(), 2);
    }

    #[test]
    fn revocation_purges_state() {
        let mut n = test_node(100);
        n.seed_state(
            vec![NodeId(120), NodeId(130)],
            vec![NodeId(80)],
            vec![NodeId(120), NodeId(500)],
            vec![(NodeId(120), NodeId(600)), (NodeId(700), NodeId(800))],
        );
        n.on_revocation(&[NodeId(120)]);
        assert_eq!(n.successors(), &[NodeId(130)]);
        assert_eq!(n.fingers()[0], NodeId(100), "revoked finger self-points");
        assert_eq!(n.relay_pool_len(), 1);
        assert!(n.revoked.contains(&NodeId(120)));
        // a revoked node cannot be re-learned
        n.learn_neighbor(NodeId(120));
        assert!(!n.successors().contains(&NodeId(120)));
    }

    #[test]
    fn proof_queue_bounded() {
        let mut n = test_node(100);
        let other = test_node(200);
        let cap = n.cfg.proof_queue as u64;
        for i in 0..cap + 4 {
            let list =
                other.sign_table(successor_list_table(NodeId(200), vec![NodeId(300 + i)]), i);
            n.on_succ_list(NodeId(200), list);
        }
        assert_eq!(n.proof_queue.len(), n.cfg.proof_queue);
        // newest proof retained
        assert_eq!(n.proof_queue.back().unwrap().timestamp, cap + 3);
    }

    #[test]
    fn merge_updates_successors() {
        let mut n = test_node(100);
        n.seed_state(vec![NodeId(120)], vec![], vec![], vec![]);
        let peer = test_node(120);
        let list = peer.sign_table(
            successor_list_table(NodeId(120), vec![NodeId(130), NodeId(140)]),
            0,
        );
        n.on_succ_list(NodeId(120), list);
        assert_eq!(n.successors(), &[NodeId(120), NodeId(130), NodeId(140)]);
    }

    #[test]
    fn peer_death_drops_from_lists_and_pool() {
        let mut n = test_node(100);
        n.seed_state(
            vec![NodeId(120), NodeId(130)],
            vec![NodeId(80)],
            vec![],
            vec![(NodeId(120), NodeId(99))],
        );
        n.on_peer_dead(NodeId(120));
        assert_eq!(n.successors(), &[NodeId(130)]);
        assert_eq!(n.relay_pool_len(), 0);
    }

    #[test]
    fn known_nodes_deduped() {
        let mut n = test_node(100);
        n.seed_state(
            vec![NodeId(120)],
            vec![NodeId(80)],
            vec![NodeId(120), NodeId(500)],
            vec![],
        );
        let known = n.known_nodes();
        assert_eq!(known, vec![NodeId(80), NodeId(120), NodeId(500)]);
    }

    #[test]
    fn table_buffer_bounded() {
        let mut n = test_node(100);
        let other = test_node(200);
        for i in 0..20u64 {
            let t = other.sign_table(other.routing_table(), i);
            n.buffer_table(t);
        }
        assert_eq!(n.table_buffer.len(), n.cfg.table_buffer);
    }
}
