//! The two-phase random walk for relay selection (Appendix I, Fig. 8).
//!
//! Phase 1: the initiator I hops `l` times, choosing each next hop
//! uniformly from the previous hop's (signed, bound-checked) fingertable,
//! querying each hop *through the partial path built so far* so no hop
//! past U₁ learns I's identity.
//!
//! Phase 2: I hands a random seed to Uₗ through the phase-1 path; Uₗ
//! walks `l` more hops, with every "random" choice derived from the seed,
//! and returns all signed fingertables. I re-derives the choices and
//! verifies every signature and bound, so a dishonest Uₗ cannot steer the
//! walk without detection. The last two hops become an anonymization
//! relay pair.

use octopus_chord::SignedRoutingTable;
use octopus_id::NodeId;
use octopus_sim::split_seed;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::messages::{ExitAction, Msg};
use crate::node::{AnonPurpose, DirectPurpose, NodeCtx, OctopusNode};
use crate::simnet::Control;

/// A walk in progress at the initiator.
#[derive(Clone, Debug)]
pub(crate) struct WalkState {
    /// Phase-1 hops U₁…Uᵢ visited so far.
    pub hops: Vec<NodeId>,
    /// Their signed tables (kept for buffering and phase-2 verification).
    pub tables: Vec<SignedRoutingTable>,
    /// The hop we are waiting to hear from.
    pub awaiting: NodeId,
    /// Seed for phase 2.
    pub seed: u64,
}

/// A delegated phase-2 walk in progress at Uₗ, keyed by the phase-1 flow.
#[derive(Clone, Debug)]
pub(crate) struct DelegatedWalk {
    /// The seed received from the (anonymous) initiator.
    pub seed: u64,
    /// Hops still to take.
    pub length: usize,
    /// Signed tables collected so far.
    pub collected: Vec<SignedRoutingTable>,
    /// The fingertable the next choice is derived from.
    pub current_fingers: Vec<NodeId>,
}

/// Derive the seed-guided finger choice for hop `i` (shared by Uₗ and
/// the initiator's verifier — footnote 5's `hash(seed, i) → [1, m]`).
#[must_use]
pub(crate) fn seeded_choice(seed: u64, i: usize, fingers: &[NodeId]) -> Option<NodeId> {
    if fingers.is_empty() {
        return None;
    }
    Some(fingers[(split_seed(seed, i as u64) % fingers.len() as u64) as usize])
}

impl OctopusNode {
    /// Begin a relay-selection walk (every 15 s).
    pub(crate) fn start_walk(&mut self, ctx: &mut NodeCtx<'_>) {
        let fingers: Vec<NodeId> = self
            .fingers
            .iter()
            .copied()
            .filter(|f| *f != self.id && !self.revoked.contains(f))
            .collect();
        let Some(&u1) = fingers.as_slice().choose(ctx.rng()) else {
            return;
        };
        let walk = self.fresh_req();
        self.walks.insert(
            walk,
            WalkState {
                hops: vec![u1],
                tables: Vec::new(),
                awaiting: u1,
                seed: ctx.rng().gen(),
            },
        );
        self.send_direct(
            ctx,
            u1,
            |req| Msg::GetTable { req },
            DirectPurpose::WalkFirstHop { walk },
        );
    }

    /// Abort a walk (timeout, bad signature, failed bound check).
    pub(crate) fn abort_walk(&mut self, ctx: &mut NodeCtx<'_>, walk: u64) {
        self.abort_walk_why(ctx, walk, "timeout");
    }

    pub(crate) fn abort_walk_why(&mut self, ctx: &mut NodeCtx<'_>, walk: u64, why: &str) {
        if std::env::var("OCTO_DEBUG").is_ok() {
            eprintln!("[dbg] walk {walk:x} aborted at {} why={why}", ctx.now());
        }
        if self.walks.remove(&walk).is_some() {
            ctx.emit(Control::WalkDone {
                initiator: self.id,
                ok: false,
            });
        }
    }

    /// Phase-1 table received (first hop directly, later hops through
    /// the partial anonymous path).
    pub(crate) fn on_walk_table(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        walk: u64,
        table: SignedRoutingTable,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        let Some(st) = self.walks.get_mut(&walk) else {
            return;
        };
        if table.owner() != st.awaiting || table.verify(self.ca_key, now).is_err() {
            self.abort_walk_why(ctx, walk, "sig-or-owner");
            return;
        }
        // Appendix I / §4.1: bound checking limits fingertable
        // manipulation along the walk
        if !self.bound_checker().passes(&table.table) {
            self.abort_walk_why(ctx, walk, "bound");
            return;
        }
        let st = self.walks.get_mut(&walk).expect("still present");
        st.tables.push(table.clone());
        self.buffer_table(table);
        let st = self.walks.get(&walk).expect("still present");
        if st.hops.len() >= self.cfg.walk_length {
            self.delegate_phase2(ctx, walk);
            return;
        }
        // choose the next hop uniformly from the current fingertable
        let last_table = st.tables.last().expect("at least one table");
        let hops = st.hops.clone();
        let candidates: Vec<NodeId> = last_table
            .table
            .fingers
            .iter()
            .copied()
            .filter(|f| *f != self.id && !hops.contains(f) && !self.revoked.contains(f))
            .collect();
        let Some(&next) = candidates.as_slice().choose(ctx.rng()) else {
            self.abort_walk_why(ctx, walk, "no-candidates");
            return;
        };
        let st = self.walks.get_mut(&walk).expect("still present");
        st.hops.push(next);
        st.awaiting = next;
        let relays = hops; // query travels through U₁…Uᵢ₋₁
        self.send_anon_action(
            ctx,
            &relays,
            ExitAction::QueryTable { target: next },
            AnonPurpose::WalkQuery { walk },
        );
    }

    /// Reply to a phase-1 query that travelled the partial path.
    pub(crate) fn on_walk_query_reply(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        walk: u64,
        table: SignedRoutingTable,
    ) {
        self.on_walk_table(ctx, walk, table);
    }

    /// Phase 1 complete: delegate phase 2 to Uₗ through the path.
    fn delegate_phase2(&mut self, ctx: &mut NodeCtx<'_>, walk: u64) {
        let Some(st) = self.walks.get(&walk) else {
            return;
        };
        let seed = st.seed;
        let length = self.cfg.walk_length;
        // Uₗ must pick from exactly the fingertable it signed in phase 1,
        // so the initiator sends that table's fingers along (removing any
        // ambiguity about which snapshot the seed indexes)
        let ul_fingers = st
            .tables
            .last()
            .map(|t| t.table.fingers.clone())
            .unwrap_or_default();
        if ul_fingers.is_empty() {
            self.abort_walk_why(ctx, walk, "no-ul-fingers");
            return;
        }
        let relays = st.hops.clone(); // the full phase-1 path, exit = Uₗ
        self.send_anon_action(
            ctx,
            &relays,
            ExitAction::Delegate {
                seed,
                length,
                fingers: ul_fingers,
            },
            AnonPurpose::WalkDelegate { walk },
        );
    }

    /// We are Uₗ: a delegation arrived through an anonymous path.
    pub(crate) fn on_walk_delegate(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        flow: u64,
        seed: u64,
        length: usize,
        fingers: Vec<NodeId>,
    ) {
        let dw = DelegatedWalk {
            seed,
            length,
            collected: Vec::new(),
            current_fingers: fingers,
        };
        self.delegated.insert(flow, dw);
        self.step_delegated(ctx, flow);
    }

    /// Take the next seed-guided phase-2 hop.
    pub(crate) fn step_delegated(&mut self, ctx: &mut NodeCtx<'_>, flow: u64) {
        let Some(dw) = self.delegated.get(&flow) else {
            return;
        };
        if dw.collected.len() >= dw.length {
            // done: return all signed tables to the initiator
            let dw = self.delegated.remove(&flow).expect("present");
            let reply = Msg::WalkResult {
                flow,
                tables: dw.collected,
            };
            if let Some(rf) = self.relay_flows.get(&flow) {
                let prev = rf.prev;
                ctx.send(
                    prev,
                    Msg::OnionReply {
                        flow,
                        payload: Box::new(reply),
                    },
                );
            }
            return;
        }
        let i = dw.collected.len();
        let Some(next) = seeded_choice(dw.seed, i, &dw.current_fingers) else {
            self.delegated.remove(&flow);
            return;
        };
        if next == self.id {
            self.delegated.remove(&flow);
            return;
        }
        self.send_direct(
            ctx,
            next,
            |req| Msg::GetTable { req },
            DirectPurpose::Phase2Step { flow },
        );
    }

    /// A phase-2 step's table arrived (we are Uₗ).
    pub(crate) fn on_phase2_table(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        flow: u64,
        table: SignedRoutingTable,
    ) {
        let Some(dw) = self.delegated.get_mut(&flow) else {
            return;
        };
        dw.current_fingers = table.table.fingers.clone();
        dw.collected.push(table);
        self.step_delegated(ctx, flow);
    }

    /// The phase-2 result arrived at the initiator: verify everything.
    pub(crate) fn on_walk_result(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        walk: u64,
        tables: Vec<SignedRoutingTable>,
    ) {
        let now = ctx.now().as_secs_f64() as u64;
        let Some(st) = self.walks.remove(&walk) else {
            return;
        };
        let l = self.cfg.walk_length;
        let ok = 'verify: {
            if tables.len() != l || st.tables.len() != l {
                break 'verify false;
            }
            // re-derive every seed-guided choice and verify each table
            let mut fingers = st.tables[l - 1].table.fingers.clone();
            for (i, t) in tables.iter().enumerate() {
                let Some(expected) = seeded_choice(st.seed, i, &fingers) else {
                    break 'verify false;
                };
                if t.owner() != expected
                    || t.verify(self.ca_key, now).is_err()
                    || !self.bound_checker().passes(&t.table)
                {
                    break 'verify false;
                }
                fingers = t.table.fingers.clone();
            }
            true
        };
        if !ok && std::env::var("OCTO_DEBUG").is_ok() {
            eprintln!(
                "[dbg] walk {walk:x} result verification failed (tables={})",
                tables.len()
            );
        }
        if ok {
            for t in &tables {
                self.buffer_table(t.clone());
            }
            let pair = (tables[l - 2].owner(), tables[l - 1].owner());
            if pair.0 != pair.1 && pair.0 != self.id && pair.1 != self.id {
                self.push_relay_pair(pair);
            }
        }
        ctx.emit(Control::WalkDone {
            initiator: self.id,
            ok,
        });
    }
}
