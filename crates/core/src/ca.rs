//! The certificate authority's investigation logic (§4.3–4.6).
//!
//! The CA receives attack reports, verifies the attached non-repudiation
//! proofs, walks proof chains to find the node that cannot justify its
//! signed statements, and revokes that node's certificate. Its workload
//! — messages received over time — is the quantity Fig. 7(b) plots.
//!
//! Churn tolerance: the CA tracks joins and deaths (fed by the driver,
//! standing in for certificate-issue records and witness probes) and
//! *excuses* inconsistencies explainable by recent churn. That policy is
//! what gives Octopus its zero false-positive rate (Table 2): an honest
//! node is never revoked, because every honest inconsistency traces to a
//! death, a recent join, or a verifiable signed proof.

use std::collections::{BTreeMap, BTreeSet};

use octopus_chord::{stabilize, SignedSuccessorList};
use octopus_crypto::{CertificateAuthority, PublicKey};
use octopus_id::NodeId;
use octopus_net::{Addr, NodeBehavior, Runtime};
use octopus_spec::ReportKind;

use crate::config::OctopusConfig;
use crate::messages::{receipt_bytes, Msg, ReceiptToken, Report, Timer};
use crate::mutation::{self, Mutation};
use crate::simnet::{Control, ReportCat, Verdict};
use crate::trace::TraceEvent;

type CaCtx<'a> = dyn Runtime<Msg, Timer, Control> + 'a;

/// An open investigation.
#[derive(Debug)]
enum Case {
    /// Walking a successor-list proof chain (§4.3, Fig. 2(b)).
    ListOmission {
        omitted: NodeId,
        accused: NodeId,
        accused_list: SignedSuccessorList,
        depth: usize,
        category: ReportCat,
    },
    /// Challenging a finger's adoption provenance (§4.4/§4.5): the
    /// accused must produce the signed third-party list that justified
    /// the finger, or be revoked; a provenance whose signer provably
    /// lied costs the adversary that signer instead.
    FingerProv {
        y: NodeId,
        fprime: NodeId,
        ideal: octopus_id::Key,
        z: NodeId,
        /// Timestamp of the reported signed table.
        table_ts: u64,
        category: ReportCat,
    },
    /// Walking a path's forwarding receipts (Appendix II).
    Dropper {
        flow: u64,
        relays: Vec<NodeId>,
        target: NodeId,
        /// Index of the relay currently being asked for its receipt.
        idx: usize,
    },
}

/// The CA actor living inside the simulated network.
pub struct CaNode {
    /// The CA's overlay address (outside the ring id space).
    pub addr: NodeId,
    authority: CertificateAuthority,
    cfg: OctopusConfig,
    pubkeys: BTreeMap<NodeId, PublicKey>,
    live: BTreeSet<NodeId>,
    /// Latest join time (seconds) per node.
    join_times: BTreeMap<NodeId, u64>,
    /// Latest death time (seconds) per node.
    death_times: BTreeMap<NodeId, u64>,
    cases: BTreeMap<u64, Case>,
    /// Receipt-walk strikes per relay: a relay is only revoked as a
    /// dropper on its second strike, so a one-off state-loss race (a
    /// relay that churned and lost its receipts) is never fatal.
    dropper_strikes: BTreeMap<NodeId, u32>,
    next_case: u64,
    /// Total protocol messages received (Fig. 7(b)).
    pub messages_received: u64,
    /// All revocations issued so far.
    pub revoked: Vec<NodeId>,
    /// Addresses to broadcast revocations to (maintained by the driver).
    pub broadcast_to: Vec<NodeId>,
}

/// How long after a join/death the CA excuses inconsistencies that the
/// churn explains (stabilization needs a few periods to propagate).
fn churn_excuse_window(cfg: &OctopusConfig) -> u64 {
    (cfg.stabilize_every.as_secs_f64() as u64) * 3 + (cfg.request_timeout.as_secs_f64() as u64) + 2
}

/// Excuse window for finger staleness: a finger may legitimately lag one
/// full update period behind the ring.
fn finger_excuse_window(cfg: &OctopusConfig) -> u64 {
    (cfg.finger_update_every.as_secs_f64() as u64) + 10
}

impl CaNode {
    /// Build the CA actor around an issuing authority.
    #[must_use]
    pub fn new(addr: NodeId, authority: CertificateAuthority, cfg: OctopusConfig) -> Self {
        CaNode {
            addr,
            authority,
            cfg,
            pubkeys: BTreeMap::new(),
            live: BTreeSet::new(),
            join_times: BTreeMap::new(),
            death_times: BTreeMap::new(),
            cases: BTreeMap::new(),
            dropper_strikes: BTreeMap::new(),
            next_case: 1,
            messages_received: 0,
            revoked: Vec::new(),
            broadcast_to: Vec::new(),
        }
    }

    /// Issue a certificate for `id` (expiring far in the future —
    /// Octopus certificates are identity-only and churn-independent,
    /// §4.6).
    pub fn issue_cert(&mut self, id: NodeId, key: PublicKey) -> octopus_crypto::Certificate {
        self.authority.issue(id, (id.0 >> 32) as u32, key, u64::MAX)
    }

    /// Issue a certificate for `id` with an explicit expiry. Harness
    /// hook: lets the fuzz oracle craft genuinely stale certificates
    /// signed by the real authority.
    pub fn issue_cert_expiring(
        &mut self,
        id: NodeId,
        key: PublicKey,
        expires_at: u64,
    ) -> octopus_crypto::Certificate {
        self.authority
            .issue(id, (id.0 >> 32) as u32, key, expires_at)
    }

    /// The CA's verification key, known to all nodes.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.authority.public_key()
    }

    /// Driver: register a node's public key at certificate issue.
    pub fn register(&mut self, id: NodeId, key: PublicKey) {
        self.pubkeys.insert(id, key);
    }

    /// Driver: a node joined (or rejoined) at `now` seconds.
    pub fn note_join(&mut self, id: NodeId, now: u64) {
        self.live.insert(id);
        self.join_times.insert(id, now);
    }

    /// Driver: a node died at `now` seconds.
    pub fn note_death(&mut self, id: NodeId, now: u64) {
        self.live.remove(&id);
        self.death_times.insert(id, now);
    }

    /// Is `id` revoked?
    #[must_use]
    pub fn is_revoked(&self, id: NodeId) -> bool {
        self.authority.is_revoked(id)
    }

    fn now_secs(ctx: &CaCtx<'_>) -> u64 {
        ctx.now().as_secs_f64() as u64
    }

    /// Did `id` join or die within `window` of instant `t` (either
    /// side)? Used to excuse inconsistencies in statements signed near a
    /// churn event.
    #[allow(dead_code)] // retained for stricter adjudication experiments
    fn churned_near(&self, id: NodeId, t: u64, window: u64) -> bool {
        let near = |ev: Option<&u64>| ev.is_some_and(|&e| e.abs_diff(t) <= window);
        near(self.join_times.get(&id)) || near(self.death_times.get(&id))
    }

    /// "Recently churned" — joined or died within the excuse window.
    fn recently_churned(&self, id: NodeId, now: u64, window: u64) -> bool {
        let joined = self
            .join_times
            .get(&id)
            .is_some_and(|&t| now.saturating_sub(t) <= window);
        let died = self
            .death_times
            .get(&id)
            .is_some_and(|&t| now.saturating_sub(t) <= window);
        joined || died
    }

    /// Verify a signed list as *evidence*. Revocation status of the
    /// signer is deliberately not checked: a proof signed by a
    /// since-revoked attacker is exactly the exculpatory evidence an
    /// honest victim needs (non-repudiation outlives revocation).
    fn verify_signed_list(&self, list: &SignedSuccessorList, now: u64) -> bool {
        list.verify(self.authority.public_key(), now).is_ok()
    }

    fn revoke(&mut self, ctx: &mut CaCtx<'_>, id: NodeId, category: ReportCat) {
        self.revoke_why(ctx, id, category, "");
    }

    fn revoke_why(&mut self, ctx: &mut CaCtx<'_>, id: NodeId, category: ReportCat, why: &str) {
        if !why.is_empty() && std::env::var("OCTO_DEBUG").is_ok() {
            eprintln!("[ca] revoke {id} why={why}");
        }
        if !self.authority.revoke(id) {
            return; // already revoked
        }
        // a revoked node leaves the overlay: treat as a death so later
        // investigations excuse honest nodes for having purged it
        let now = Self::now_secs(ctx);
        self.live.remove(&id);
        self.death_times.insert(id, now);
        self.revoked.push(id);
        ctx.emit(Control::Verdict {
            verdict: Verdict::Revoked(id),
            category,
        });
        // broadcast the revocation so honest nodes purge the attacker
        for &n in &self.broadcast_to {
            if n != id && self.live.contains(&n) {
                ctx.send(n, Msg::Revocation { revoked: vec![id] });
            }
        }
    }

    fn dismiss(&mut self, ctx: &mut CaCtx<'_>, category: ReportCat) {
        ctx.emit(Control::Verdict {
            verdict: Verdict::Dismissed,
            category,
        });
    }

    /// Emit a semantic trace event when the oracle is recording.
    /// Unlike the node-side helper there is no malicious-node filter:
    /// the CA is always honest.
    fn trace(&self, ctx: &mut CaCtx<'_>, ev: impl FnOnce() -> TraceEvent) {
        if self.cfg.trace {
            ctx.emit(Control::Trace(Box::new(ev())));
        }
    }

    /// Emit a [`TraceEvent::CaReceiptCheck`] for one receipt
    /// verification. The validity bits are recomputed directly from the
    /// token so a broken `verify_receipt` cannot hide behind its own
    /// answer.
    fn trace_receipt_check(
        &self,
        ctx: &mut CaCtx<'_>,
        token: &ReceiptToken,
        expected_signer: NodeId,
        flow: u64,
        accepted: bool,
    ) {
        self.trace(ctx, || TraceEvent::CaReceiptCheck {
            signer: token.signer,
            expected_signer,
            flow_ok: token.flow == flow,
            sig_ok: self
                .pubkeys
                .get(&token.signer)
                .is_some_and(|k| k.verify(&receipt_bytes(token.flow), token.sig).is_ok()),
            accepted,
        });
    }

    // ------------------------------------------------------------------
    // Report intake.
    // ------------------------------------------------------------------

    fn on_report(&mut self, ctx: &mut CaCtx<'_>, report: Report) {
        let now = Self::now_secs(ctx);
        match report {
            Report::ListOmission {
                reporter,
                reporter_cert,
                omitted,
                accused_list,
            } => {
                let category = if omitted == reporter {
                    ReportCat::NeighborSurveillance
                } else {
                    ReportCat::FingerUpdate
                };
                // validate the report itself; each gate input is
                // computed on its own so the trace oracle can compare
                // the bits against the accept decision
                let cert_ok = reporter_cert.node_id == reporter
                    && reporter_cert
                        .verify(self.authority.public_key(), now)
                        .is_ok();
                let reporter_revoked = self.authority.is_revoked(reporter);
                let evidence_ok = self.verify_signed_list(&accused_list, now);
                let accepted = if mutation::is(Mutation::SkipReportCertCheck) {
                    !reporter_revoked && evidence_ok // injected bug
                } else {
                    cert_ok && !reporter_revoked && evidence_ok
                };
                self.trace(ctx, || TraceEvent::ReportIntake {
                    kind: ReportKind::ListOmission,
                    reporter,
                    cert_ok,
                    reporter_revoked,
                    evidence_ok,
                    accepted,
                });
                if !accepted {
                    return; // malformed report: ignore silently
                }
                // the omitted node must be live and stable — otherwise
                // the omission is honest churn (false alarm)
                if !self.live.contains(&omitted)
                    || self.recently_churned(omitted, now, churn_excuse_window(&self.cfg))
                {
                    self.dismiss(ctx, category);
                    return;
                }
                // is the omission real? the list must span past the
                // omitted node yet not contain it
                let list = &accused_list.table.successors;
                let spans = list
                    .last()
                    .is_some_and(|&last| omitted.is_between(accused_list.owner(), last));
                if list.contains(&omitted) || !spans {
                    self.dismiss(ctx, category);
                    return;
                }
                // open a proof-chain case against the list's signer
                self.open_omission_case(ctx, omitted, *accused_list, category);
            }
            Report::FingerManipulation {
                reporter,
                reporter_cert,
                table,
                finger_index,
                finger_pred_list,
                pred_succ_list,
            } => {
                let category = ReportCat::FingerSurveillance;
                let cert_ok = reporter_cert.node_id == reporter
                    && reporter_cert
                        .verify(self.authority.public_key(), now)
                        .is_ok();
                let evidence_ok = self.verify_signed_list(&table, now)
                    && self.verify_signed_list(&finger_pred_list, now)
                    && self.verify_signed_list(&pred_succ_list, now);
                let accepted = if mutation::is(Mutation::SkipReportCertCheck) {
                    evidence_ok // injected bug
                } else {
                    cert_ok && evidence_ok
                };
                self.trace(ctx, || TraceEvent::ReportIntake {
                    kind: ReportKind::FingerManipulation,
                    reporter,
                    cert_ok,
                    // intake deliberately does not gate on this — the
                    // bit is recorded so the model can check the policy
                    reporter_revoked: self.authority.is_revoked(reporter),
                    evidence_ok,
                    accepted,
                });
                if !accepted {
                    return;
                }
                let y = table.owner();
                let Some(&fprime) = table.table.fingers.get(finger_index as usize) else {
                    return;
                };
                if finger_pred_list.owner() != fprime {
                    return;
                }
                let ideal = self.cfg.chord.finger_target(y, finger_index);
                // find the closer live stable node attested by P′₁
                let closer = pred_succ_list.table.successors.iter().copied().find(|&z| {
                    z != fprime
                        && ideal.distance_to_node(z) < ideal.distance_to_node(fprime)
                        && self.live.contains(&z)
                        && !self.recently_churned(z, now, finger_excuse_window(&self.cfg))
                });
                let Some(z) = closer else {
                    self.dismiss(ctx, category);
                    return;
                };
                // z is live and stable, yet Y's signed finger skips it.
                // Y may itself be an honest victim whose checked
                // adoption was covered by a colluding P′₁ — challenge Y
                // for the adoption provenance before judging (§4.4's
                // "sacrifice either P′₁ or F′ and Y").
                if self.authority.is_revoked(y) {
                    return;
                }
                if !self.live.contains(&y) {
                    self.dismiss(ctx, category);
                    return;
                }
                let case = self.next_case;
                self.next_case += 1;
                self.cases.insert(
                    case,
                    Case::FingerProv {
                        y,
                        fprime,
                        ideal,
                        z,
                        table_ts: table.timestamp,
                        category,
                    },
                );
                ctx.send(
                    y,
                    Msg::CaProvRequest {
                        case,
                        slot: finger_index,
                    },
                );
                ctx.set_timer(self.cfg.request_timeout, Timer::CaCaseTimeout { case });
                // if z should also appear among F′'s claimed
                // predecessors but does not, F′ covered for the
                // manipulation — sacrifice F′ as well
                // Note: §4.4 suggests F′ itself can sometimes be
                // convicted for hiding z among its claimed predecessors,
                // but predecessor lists heal slowly under churn and an
                // honest F′ cannot prove staleness — so we deliberately
                // leave F′ to the other mechanisms (its manipulated
                // successor-list answers are caught by neighbor
                // surveillance) and keep the false-positive rate at zero.
                let _ = finger_pred_list;
            }
            Report::Dropper {
                reporter,
                reporter_cert,
                flow,
                relays,
                target,
                initiator_receipt,
            } => {
                let category = ReportCat::SelectiveDos;
                let cert_ok = reporter_cert.node_id == reporter
                    && reporter_cert
                        .verify(self.authority.public_key(), now)
                        .is_ok();
                let evidence_ok = !relays.is_empty();
                let accepted = if mutation::is(Mutation::SkipReportCertCheck) {
                    evidence_ok // injected bug
                } else {
                    cert_ok && evidence_ok
                };
                self.trace(ctx, || TraceEvent::ReportIntake {
                    kind: ReportKind::Dropper,
                    reporter,
                    cert_ok,
                    reporter_revoked: self.authority.is_revoked(reporter),
                    evidence_ok,
                    accepted,
                });
                if !accepted {
                    return;
                }
                // the flow must provably have entered the path
                let Some(token) = initiator_receipt else {
                    self.dismiss(ctx, category);
                    return;
                };
                let receipt_ok = self.verify_receipt(&token, relays[0], flow);
                self.trace_receipt_check(ctx, &token, relays[0], flow, receipt_ok);
                if !receipt_ok {
                    self.dismiss(ctx, category);
                    return;
                }
                let case = self.next_case;
                self.next_case += 1;
                self.cases.insert(
                    case,
                    Case::Dropper {
                        flow,
                        relays: relays.clone(),
                        target,
                        idx: 0,
                    },
                );
                ctx.send(relays[0], Msg::CaReceiptRequest { case, flow });
                ctx.set_timer(self.cfg.request_timeout, Timer::CaCaseTimeout { case });
            }
        }
    }

    fn verify_receipt(&self, token: &ReceiptToken, expected_signer: NodeId, flow: u64) -> bool {
        if mutation::is(Mutation::AcceptAnyReceipt) {
            return true; // injected bug: receipts rubber-stamped
        }
        if token.signer != expected_signer || token.flow != flow {
            return false;
        }
        let Some(key) = self.pubkeys.get(&token.signer) else {
            return false;
        };
        key.verify(&receipt_bytes(flow), token.sig).is_ok()
    }

    fn open_omission_case(
        &mut self,
        ctx: &mut CaCtx<'_>,
        omitted: NodeId,
        accused_list: SignedSuccessorList,
        category: ReportCat,
    ) {
        let accused = accused_list.owner();
        if self.authority.is_revoked(accused) {
            return; // already dealt with
        }
        if !self.live.contains(&accused) {
            // churned before investigation; the paper's policy would
            // judge repeat offenders — we dismiss (counts as false alarm)
            self.dismiss(ctx, category);
            return;
        }
        let case = self.next_case;
        self.next_case += 1;
        self.cases.insert(
            case,
            Case::ListOmission {
                omitted,
                accused,
                accused_list,
                depth: 0,
                category,
            },
        );
        ctx.send(accused, Msg::CaProofRequest { case });
        ctx.set_timer(self.cfg.request_timeout, Timer::CaCaseTimeout { case });
    }

    // ------------------------------------------------------------------
    // Proof-chain walking (§4.3).
    // ------------------------------------------------------------------

    fn on_proof_reply(
        &mut self,
        ctx: &mut CaCtx<'_>,
        from: NodeId,
        case_id: u64,
        proofs: Vec<SignedSuccessorList>,
    ) {
        let now = Self::now_secs(ctx);
        let Some(Case::ListOmission { accused, .. }) = self.cases.get(&case_id) else {
            return;
        };
        if *accused != from {
            return; // stray or spoofed reply
        }
        let Some(Case::ListOmission {
            omitted,
            accused,
            accused_list,
            depth,
            category,
        }) = self.cases.remove(&case_id)
        else {
            return;
        };
        // The adjudication question is narrow: did the accused have a
        // signed basis for omitting *the subject node* from its list?
        // (Full-list equality would be hopelessly brittle under churn —
        // lists legitimately shrink, heal, and absorb join
        // announcements.) A proof justifies the omission when its merge
        // into the accused's position does not contain the subject; a
        // proof that *does* contain the subject is evidence the accused
        // knew of it. Only contemporaneous proofs — timestamped within
        // the excuse window of the signed list — can adjudicate.
        let window = churn_excuse_window(&self.cfg);
        let k = self.cfg.chord.successors;
        // candidate source proofs: anything contemporaneous with the
        // signed list (timestamps are second-granular, so allow one
        // stabilization period of slack on the new side). Including a
        // too-new proof is harmless: a proof that omits the subject only
        // ever *moves* the accusation to its signer — it never silently
        // exonerates.
        let slack = self.cfg.stabilize_every.as_secs_f64() as u64 + 1;
        let relevant: Vec<&SignedSuccessorList> = proofs
            .iter()
            .filter(|p| {
                self.verify_signed_list(p, now)
                    && p.owner() != accused
                    && p.timestamp <= accused_list.timestamp + slack
                    && accused_list.timestamp.saturating_sub(p.timestamp) <= window * 2
            })
            .collect();
        if relevant.is_empty() {
            self.dismiss(ctx, category);
            return;
        }
        let justifying = relevant.iter().copied().find(|p| {
            let expect =
                stabilize::merge_successor_list(accused, p.owner(), &p.table.successors, k);
            !expect.contains(&omitted)
        });
        match justifying {
            Some(p) => {
                // the accused merged honestly; the misinformation came
                // from the proof's signer — walk the chain (Fig. 2(b))
                let next = p.owner();
                let next_list = p.clone();
                if depth + 1 >= self.cfg.max_proof_chain {
                    // give up: cascading pollution can thread a long
                    // chain of honest victims, so depth alone is not
                    // guilt — close as a false alarm and let fresher
                    // reports against the fabricator converge instead
                    self.dismiss(ctx, category);
                    return;
                }
                // the chain can only continue while the proof itself
                // still *spans past* the omitted node yet omits it; a
                // shorter honest list pins blame on nobody
                let proof_spans = next_list
                    .table
                    .successors
                    .last()
                    .is_some_and(|&last| omitted.is_between(next, last));
                if !proof_spans || next_list.table.successors.contains(&omitted) {
                    self.dismiss(ctx, category);
                    return;
                }
                if self.authority.is_revoked(next) {
                    return;
                }
                if !self.live.contains(&next) {
                    self.dismiss(ctx, category);
                    return;
                }
                let case = self.next_case;
                self.next_case += 1;
                self.cases.insert(
                    case,
                    Case::ListOmission {
                        omitted,
                        accused: next,
                        accused_list: next_list,
                        depth: depth + 1,
                        category,
                    },
                );
                ctx.send(next, Msg::CaProofRequest { case });
                ctx.set_timer(self.cfg.request_timeout, Timer::CaCaseTimeout { case });
            }
            None => {
                // Conviction requires a *fresh* case: if the statement is
                // old enough that the proof queue has rotated past its
                // construction (investigation lag > 10 s), the accused
                // can no longer produce its source proof even when
                // honest — dismiss. Fresh cases are the norm (report +
                // proof request take ~2 s), and there a missing
                // justification is manufactured evidence.
                if now.saturating_sub(accused_list.timestamp) > 10 {
                    self.dismiss(ctx, category);
                    return;
                }
                if std::env::var("OCTO_DEBUG").is_ok() {
                    for p in &relevant {
                        let expect = stabilize::merge_successor_list(
                            accused,
                            p.owner(),
                            &p.table.successors,
                            k,
                        );
                        for e in expect {
                            if !accused_list.table.successors.contains(&e) {
                                eprintln!(
                                    "[ca]   missing {e}: live={} revoked={} died={:?} joined={:?} now={now}",
                                    self.live.contains(&e),
                                    self.authority.is_revoked(e),
                                    self.death_times.get(&e),
                                    self.join_times.get(&e)
                                );
                            }
                        }
                    }
                    eprintln!(
                        "[ca] convict {accused} omitted={omitted} listts={} list={:?} proofs={:?}",
                        accused_list.timestamp,
                        accused_list.table.successors,
                        proofs
                            .iter()
                            .map(|p| (p.owner(), p.timestamp, p.table.successors.clone()))
                            .collect::<Vec<_>>()
                    );
                }
                // no valid proof justifies the signed list: the accused
                // manufactured it
                self.revoke(ctx, accused, category);
            }
        }
    }

    // ------------------------------------------------------------------
    // Receipt walking (Appendix II).
    // ------------------------------------------------------------------

    fn on_receipt_reply(
        &mut self,
        ctx: &mut CaCtx<'_>,
        from: NodeId,
        case_id: u64,
        flow: u64,
        receipt: Option<ReceiptToken>,
    ) {
        let Some(Case::Dropper { relays, idx, .. }) = self.cases.get(&case_id) else {
            return;
        };
        if relays.get(*idx).copied() != Some(from) {
            return;
        }
        let Some(Case::Dropper {
            flow: case_flow,
            relays,
            target,
            idx,
        }) = self.cases.remove(&case_id)
        else {
            return;
        };
        if case_flow != flow {
            return;
        }
        let now = Self::now_secs(ctx);
        let category = ReportCat::SelectiveDos;
        // a flow can die because a relay/target was offline anywhere in
        // its lifetime; rejoin gaps average ~30 s, so the DoS excuse
        // window must be generous — convictions demand parties that were
        // continuously stable around the incident
        let window = churn_excuse_window(&self.cfg) + 60;
        let stable =
            |id: NodeId| self.live.contains(&id) && !self.recently_churned(id, now, window);
        let is_exit = idx + 1 >= relays.len();
        let valid = if is_exit {
            // the exit's "next hop" is the queried target; the target
            // answers queries if alive, so a stable target plus a
            // timed-out flow convicts the exit. (The exit holds no
            // receipt — the plain query protocol has none — so we use
            // target liveness.)
            stable(target)
        } else {
            match receipt {
                Some(t) => {
                    let ok = self.verify_receipt(&t, relays[idx + 1], flow);
                    self.trace_receipt_check(ctx, &t, relays[idx + 1], flow, ok);
                    ok
                }
                None => false,
            }
        };
        if is_exit {
            if valid && stable(relays[idx]) {
                // target alive, exit provably received the flow: exit
                // dropped the query
                self.dropper_strike(ctx, relays[idx], category);
            } else {
                self.dismiss(ctx, category); // a churned party: honest failure
            }
            return;
        }
        if valid {
            // this relay provably handed the flow on — move to the next
            let next = relays[idx + 1];
            if self.authority.is_revoked(next) {
                return;
            }
            if !self.live.contains(&next) {
                self.dismiss(ctx, category);
                return;
            }
            let case = self.next_case;
            self.next_case += 1;
            self.cases.insert(
                case,
                Case::Dropper {
                    flow,
                    relays,
                    target,
                    idx: idx + 1,
                },
            );
            ctx.send(next, Msg::CaReceiptRequest { case, flow });
            ctx.set_timer(self.cfg.request_timeout, Timer::CaCaseTimeout { case });
        } else {
            // no receipt from the next hop: this relay never forwarded
            let next = relays.get(idx + 1).copied().unwrap_or(relays[idx]);
            if stable(next) && stable(relays[idx]) {
                self.dropper_strike(ctx, relays[idx], category);
            } else {
                // the next hop — or this relay itself — churned while
                // the flow was in flight: excusable
                self.dismiss(ctx, category);
            }
        }
    }

    /// The accused answered a finger-provenance challenge.
    fn on_prov_reply(
        &mut self,
        ctx: &mut CaCtx<'_>,
        from: NodeId,
        case_id: u64,
        prov: Option<SignedSuccessorList>,
    ) {
        let now = Self::now_secs(ctx);
        let Some(Case::FingerProv { y, .. }) = self.cases.get(&case_id) else {
            return;
        };
        if *y != from {
            return;
        }
        let Some(Case::FingerProv {
            y,
            fprime,
            ideal,
            z,
            table_ts,
            category,
        }) = self.cases.remove(&case_id)
        else {
            return;
        };
        let Some(list) = prov else {
            // no justification for a finger that skips a stable node
            self.revoke_why(ctx, y, category, "no-prov");
            return;
        };
        if !self.verify_signed_list(&list, now) {
            self.revoke_why(ctx, y, category, "bad-prov-sig");
            return;
        }
        // does the list actually justify the adoption? no member may sit
        // in the gap [ideal, F′)
        let justifies =
            !list.table.successors.iter().any(|&m| {
                m != fprime && ideal.distance_to_node(m) < ideal.distance_to_node(fprime)
            });
        if !justifies {
            // provenance that admits a closer node means the finger has
            // since been refreshed (or the node's bookkeeping is stale) —
            // either way the report concerned superseded state, not a
            // live manipulation. A manipulating node would have
            // fabricated *justifying* provenance instead.
            let _ = table_ts;
            self.dismiss(ctx, category);
            return;
        }
        // the signer vouched "nothing closer than F′" — if z was already
        // stable when it signed and z falls inside its successor span,
        // the signer lied: sacrifice the signer (the covering P′₁)
        let signer = list.owner();
        let z_in_span = list
            .table
            .successors
            .last()
            .is_some_and(|&last| z.is_between(signer, last) || z == last);
        let window = churn_excuse_window(&self.cfg);
        let z_stable_then = self
            .join_times
            .get(&z)
            .is_some_and(|&t| list.timestamp.saturating_sub(t) > window)
            || !self.join_times.contains_key(&z);
        if z_in_span && z_stable_then && signer != y {
            // the signer vouched for a list omitting a stable node — but
            // it may itself be an honest victim of successor-list
            // pollution, so walk its proof chain instead of revoking
            // outright; the walk terminates at the fabricator (§4.3)
            self.open_omission_case(ctx, z, list, category);
        } else {
            self.dismiss(ctx, category);
        }
    }

    /// Record a dropper strike; revoke on the second.
    fn dropper_strike(&mut self, ctx: &mut CaCtx<'_>, id: NodeId, category: ReportCat) {
        let strikes = self.dropper_strikes.entry(id).or_insert(0);
        *strikes += 1;
        if *strikes >= 2 {
            self.revoke(ctx, id, category);
        } else {
            self.dismiss(ctx, category);
        }
    }

    fn on_case_timeout(&mut self, ctx: &mut CaCtx<'_>, case_id: u64) {
        let Some(case) = self.cases.remove(&case_id) else {
            return;
        };
        let (accused, category) = match &case {
            Case::ListOmission {
                accused, category, ..
            } => (*accused, *category),
            Case::FingerProv { y, category, .. } => (*y, *category),
            Case::Dropper { relays, idx, .. } => (relays[*idx], ReportCat::SelectiveDos),
        };
        let now = Self::now_secs(ctx);
        if self.live.contains(&accused)
            && !self.recently_churned(accused, now, churn_excuse_window(&self.cfg))
        {
            // alive, stable, yet stonewalling the CA: evasion is an
            // admission. (A recently churned node may simply have missed
            // the request.)
            self.revoke_why(ctx, accused, category, "case-timeout");
        } else {
            self.dismiss(ctx, category);
        }
    }
}

/// Is `list` obtainable as `merge(owner, proof_owner, proof_list, k)`
/// modulo insertions/removals excusable by churn?
///
/// This *full-list* consistency check is stricter than the omission
/// adjudication the CA uses in production (see `on_proof_reply`) — under
/// churn, honest lists legitimately diverge from any single retained
/// proof. It is kept (and tested) as the reference semantics of the
/// merge rule.
#[allow(dead_code)]
fn list_consistent(
    owner: NodeId,
    list: &[NodeId],
    proof_owner: NodeId,
    proof_list: &[NodeId],
    k: usize,
    excused: &impl Fn(NodeId) -> bool,
) -> bool {
    let expect = stabilize::merge_successor_list(owner, proof_owner, proof_list, k);
    let mut i = 0usize; // cursor into `list`
    for e in expect {
        if i >= list.len() {
            if list.len() >= k {
                // the list is full: later expected entries were
                // legitimately truncated away by out-of-band insertions
                // (join announcements). Soundness is preserved because
                // the intake check requires the omitted node to lie
                // *within* the list's span — truncation can only drop
                // entries beyond it.
                return true;
            }
            if excused(e) {
                continue;
            }
            return false;
        }
        if list[i] == e {
            i += 1;
            continue;
        }
        // skip excusable extras in the list (recent joins learned out of
        // band) as long as they don't match the expected entry
        let mut j = i;
        while j < list.len() && excused(list[j]) && list[j] != e {
            j += 1;
        }
        if j < list.len() && list[j] == e {
            i = j + 1;
            continue;
        }
        // the expected entry itself may be excusable (dead / churned /
        // unknowable at signing time)
        if excused(e) {
            continue;
        }
        return false;
    }
    // remaining entries must all be excusable (recent joins)
    list[i..].iter().all(|&l| excused(l))
}

impl NodeBehavior for CaNode {
    type Msg = Msg;
    type Timer = Timer;
    type Control = Control;

    fn on_message(&mut self, ctx: &mut CaCtx<'_>, from: Addr, msg: Msg) {
        self.messages_received += 1;
        ctx.emit(Control::CaReceived);
        match msg {
            Msg::Report(r) => self.on_report(ctx, *r),
            Msg::CaProofReply { case, proofs, .. } => {
                self.on_proof_reply(ctx, from, case, proofs);
            }
            Msg::CaReceiptReply {
                case,
                flow,
                receipt,
            } => {
                self.on_receipt_reply(ctx, from, case, flow, receipt);
            }
            Msg::CaProvReply { case, prov } => {
                self.on_prov_reply(ctx, from, case, prov.map(|b| *b));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut CaCtx<'_>, timer: Timer) {
        if let Timer::CaCaseTimeout { case } = timer {
            self.on_case_timeout(ctx, case);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_consistent_exact_merge() {
        let owner = NodeId(10);
        let proof = vec![NodeId(30), NodeId(40), NodeId(50)];
        let list = stabilize::merge_successor_list(owner, NodeId(20), &proof, 4);
        assert!(list_consistent(
            owner,
            &list,
            NodeId(20),
            &proof,
            4,
            &|_| false
        ));
    }

    #[test]
    fn list_consistent_allows_excused_removal() {
        let owner = NodeId(10);
        let proof = vec![NodeId(30), NodeId(40), NodeId(50)];
        // owner dropped dead node 40
        let list = vec![NodeId(20), NodeId(30), NodeId(50)];
        assert!(list_consistent(
            owner,
            &list,
            NodeId(20),
            &proof,
            4,
            &|id| id == NodeId(40)
        ));
        // without the excuse the removal is damning
        assert!(!list_consistent(
            owner,
            &list,
            NodeId(20),
            &proof,
            4,
            &|_| false
        ));
    }

    #[test]
    fn list_consistent_rejects_fabricated_entries() {
        let owner = NodeId(10);
        let proof = vec![NodeId(30)];
        // owner's list claims a node the proof never mentioned
        let list = vec![NodeId(20), NodeId(25), NodeId(30)];
        assert!(!list_consistent(
            owner,
            &list,
            NodeId(20),
            &proof,
            4,
            &|_| false
        ));
        // unless that node just joined
        assert!(list_consistent(
            owner,
            &list,
            NodeId(20),
            &proof,
            4,
            &|id| id == NodeId(25)
        ));
    }

    #[test]
    fn list_consistent_rejects_omission() {
        let owner = NodeId(10);
        let proof = vec![NodeId(30), NodeId(40)];
        // owner silently removed live node 30
        let list = vec![NodeId(20), NodeId(40)];
        assert!(!list_consistent(
            owner,
            &list,
            NodeId(20),
            &proof,
            4,
            &|_| false
        ));
    }
}
