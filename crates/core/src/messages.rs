//! The Octopus wire protocol.
//!
//! One message enum covers Chord maintenance, anonymous onion relaying,
//! the random walk, surveillance queries (which are deliberately
//! *indistinguishable* from ordinary lookup queries — that is what makes
//! the surveillance secret), and the CA investigation traffic.
//!
//! Wire sizes follow the paper's byte model (footnote 4) via
//! `octopus_net::sizes`, so the bandwidth rows of Table 3 are computed on
//! the paper's terms.

use octopus_chord::{SignedPredecessorList, SignedRoutingTable, SignedSuccessorList};
use octopus_crypto::{Certificate, Signature};
use octopus_id::NodeId;
use octopus_net::{sizes, WireMsg};

/// One hop of an anonymous route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The relay's address.
    pub node: NodeId,
    /// Whether this relay adds the anti-timing-analysis random delay
    /// (§4.7 — the middle relay B delays forwarded messages by up to
    /// 100 ms).
    pub delay: bool,
}

/// What the exit relay does when the onion is fully unwrapped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExitAction {
    /// Query `target` for its routing table on the initiator's behalf
    /// (the exit sees the target but not the initiator; the target sees
    /// only the exit — Fig. 1(a)).
    QueryTable {
        /// The queried node Eᵢ.
        target: NodeId,
    },
    /// The exit *is* Uₗ of a random walk: perform phase 2 guided by
    /// `seed` over `fingers` (the fingertable Uₗ signed in phase 1) and
    /// return the collected signed tables (Appendix I).
    Delegate {
        /// Seed de-randomizing Uₗ's choices.
        seed: u64,
        /// Hops to take.
        length: usize,
        /// The fingertable snapshot the seed indexes into.
        fingers: Vec<NodeId>,
    },
}

/// A structured onion packet.
///
/// The byte-level layered encryption lives in `octopus_crypto::onion` and
/// is exercised by the live examples; the simulator carries the
/// structured equivalent under the observation discipline documented in
/// DESIGN.md (adversarial code only reads fields a real relay could
/// decrypt: its predecessor hop, its successor hop, and — at the exit —
/// the action).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnionPacket {
    /// Flow id correlating the forward path with its reply path.
    pub flow: u64,
    /// Remaining relay hops (the current holder forwards to `route[0]`).
    pub route: Vec<Hop>,
    /// What the exit relay does.
    pub action: ExitAction,
}

impl OnionPacket {
    /// Wire size: the innermost request plus one AES-padded layer per
    /// remaining hop.
    #[must_use]
    pub fn wire_bytes(&self) -> u32 {
        let mut b = match &self.action {
            ExitAction::QueryTable { .. } => sizes::REQUEST,
            ExitAction::Delegate { fingers, .. } => {
                sizes::REQUEST + 8 + fingers.len() as u32 * sizes::ROUTING_ITEM
            }
        };
        for _ in 0..=self.route.len() {
            b = sizes::onion_layer(b);
        }
        b
    }
}

/// A signed forwarding receipt (Appendix II): `signer` acknowledges
/// having received flow `flow`. Unforgeable — the signature covers the
/// flow id, so a dropper cannot fabricate its next hop's receipt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReceiptToken {
    /// The flow acknowledged.
    pub flow: u64,
    /// Who acknowledged.
    pub signer: NodeId,
    /// Signature over `receipt_bytes(flow)` by the signer.
    pub sig: Signature,
}

/// Canonical bytes a receipt signature covers.
#[must_use]
pub fn receipt_bytes(flow: u64) -> [u8; 15] {
    let mut b = [0u8; 15];
    b[..7].copy_from_slice(b"receipt");
    b[7..].copy_from_slice(&flow.to_be_bytes());
    b
}

/// An attack report filed with the CA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Report {
    /// A signed successor list omits a live, stable node it should
    /// contain. Filed by secret neighbor surveillance (§4.3, where the
    /// omitted node is the reporter itself) and by checked finger
    /// updates (§4.5, where the omitted node is the closer true finger).
    ListOmission {
        /// The monitoring node that ran the test.
        reporter: NodeId,
        /// Reporter's certificate.
        reporter_cert: Certificate,
        /// The node wrongly missing from the list.
        omitted: NodeId,
        /// The accused node's signed list — the non-repudiation proof.
        accused_list: Box<SignedSuccessorList>,
    },
    /// Secret finger surveillance (§4.4): Y's signed fingertable entry
    /// F′ provably skips a closer live node.
    FingerManipulation {
        /// The monitoring node.
        reporter: NodeId,
        /// Reporter's certificate.
        reporter_cert: Certificate,
        /// Y's signed routing table containing the suspect finger.
        table: Box<SignedRoutingTable>,
        /// Index of the suspect finger in `table.fingers`.
        finger_index: u32,
        /// The suspect finger F′'s signed predecessor list.
        finger_pred_list: Box<SignedPredecessorList>,
        /// P′₁'s signed successor list revealing a closer true finger.
        pred_succ_list: Box<SignedSuccessorList>,
    },
    /// Selective-DoS defense (Appendix II): an anonymous query never
    /// completed; the CA walks the path's forwarding receipts to find
    /// the dropper.
    Dropper {
        /// The initiator that timed out.
        reporter: NodeId,
        /// Reporter's certificate.
        reporter_cert: Certificate,
        /// The flow that died.
        flow: u64,
        /// The relays of the path, in forwarding order.
        relays: Vec<NodeId>,
        /// The queried node the exit should have contacted.
        target: NodeId,
        /// The reporter's receipt from the first relay (proves the flow
        /// entered the path).
        initiator_receipt: Option<ReceiptToken>,
    },
}

impl Report {
    /// The reporting node.
    #[must_use]
    pub fn reporter(&self) -> NodeId {
        match self {
            Report::ListOmission { reporter, .. }
            | Report::FingerManipulation { reporter, .. }
            | Report::Dropper { reporter, .. } => *reporter,
        }
    }
}

/// Protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    // ---- Chord maintenance (direct, non-anonymous) ----
    /// Request the receiver's signed successor list (stabilization).
    GetSuccList {
        /// Request correlation id.
        req: u64,
    },
    /// Stabilization reply.
    SuccList {
        /// Correlation id.
        req: u64,
        /// The responder's signed successor list.
        list: Box<SignedSuccessorList>,
    },
    /// Request the receiver's signed predecessor list (anticlockwise
    /// stabilization, and the F′ query of secret finger surveillance).
    GetPredList {
        /// Request correlation id.
        req: u64,
    },
    /// Predecessor-list reply.
    PredList {
        /// Correlation id.
        req: u64,
        /// The responder's signed predecessor list.
        list: Box<SignedPredecessorList>,
    },

    // ---- Routing-table queries ----
    /// Request the receiver's full signed routing table. Carries no key:
    /// lookup targets stay hidden (§4.1). Arrives either directly
    /// (random walk phase 1, finger updates) or from an exit relay
    /// (anonymous lookup/surveillance queries) — the receiver cannot
    /// tell which.
    GetTable {
        /// Request correlation id.
        req: u64,
    },
    /// Routing-table reply.
    Table {
        /// Correlation id.
        req: u64,
        /// The responder's signed routing table.
        table: Box<SignedRoutingTable>,
    },

    // ---- Anonymous relaying ----
    /// An onion-wrapped query travelling initiator → relays → exit.
    Onion(OnionPacket),
    /// A reply travelling back along the flow's reverse path.
    OnionReply {
        /// Flow id.
        flow: u64,
        /// The reply being carried (a `Table` or `WalkResult`).
        payload: Box<Msg>,
    },
    /// Signed forwarding receipt (Appendix II DoS defense).
    Receipt {
        /// The receipt token.
        token: ReceiptToken,
    },
    /// Uₗ's phase-2 result: every signed fingertable it collected, which
    /// the initiator re-verifies against the seed. Carried inside an
    /// `OnionReply`.
    WalkResult {
        /// Flow id of the phase-1 path.
        flow: u64,
        /// Signed tables of the phase-2 hops, in order.
        tables: Vec<SignedRoutingTable>,
    },

    // ---- CA traffic ----
    /// An attack report (counted toward the CA workload of Fig. 7b).
    Report(Box<Report>),
    /// CA asks a node for its successor-list proof queue (§4.3's
    /// investigation).
    CaProofRequest {
        /// Investigation case id.
        case: u64,
    },
    /// Proof-queue reply to the CA.
    CaProofReply {
        /// Case id.
        case: u64,
        /// The node's own current signed successor list.
        own_list: Box<SignedSuccessorList>,
        /// Queue of the latest signed successor lists received during
        /// stabilization.
        proofs: Vec<SignedSuccessorList>,
    },
    /// CA asks a relay for its forwarding receipt on a flow.
    CaReceiptRequest {
        /// Case id.
        case: u64,
        /// The flow under investigation.
        flow: u64,
    },
    /// Receipt reply to the CA.
    CaReceiptReply {
        /// Case id.
        case: u64,
        /// The flow.
        flow: u64,
        /// The stored receipt, if any.
        receipt: Option<ReceiptToken>,
    },
    /// CA asks a node to justify one of its signed fingertable entries:
    /// produce the third-party signed list that backed the adoption
    /// (§4.5's check transcript, or the stabilization proof when the
    /// finger came from the node's own successor list).
    CaProvRequest {
        /// Case id.
        case: u64,
        /// The finger slot under investigation.
        slot: u32,
    },
    /// Provenance reply: the signed list justifying the finger.
    CaProvReply {
        /// Case id.
        case: u64,
        /// The justification, if the node has one.
        prov: Option<Box<SignedSuccessorList>>,
    },
    /// CA → everyone: certificate revocations (malicious nodes ejected).
    Revocation {
        /// Newly revoked node ids.
        revoked: Vec<NodeId>,
    },
}

fn signed_list_bytes(items: usize) -> u32 {
    sizes::signed_table(items as u32)
}

fn table_items(t: &SignedRoutingTable) -> usize {
    t.table.item_count() as usize + t.table.predecessors.len()
}

impl WireMsg for Msg {
    fn wire_bytes(&self) -> u32 {
        match self {
            Msg::GetSuccList { .. } | Msg::GetPredList { .. } | Msg::GetTable { .. } => {
                sizes::REQUEST
            }
            Msg::SuccList { list, .. } | Msg::PredList { list, .. } => {
                signed_list_bytes(table_items(list))
            }
            Msg::Table { table, .. } => signed_list_bytes(table_items(table)),
            Msg::Onion(p) => p.wire_bytes(),
            Msg::OnionReply { payload, .. } => sizes::onion_layer(payload.wire_bytes()),
            Msg::Receipt { .. } => sizes::SIGNATURE + 8,
            Msg::WalkResult { tables, .. } => {
                let inner: u32 = tables
                    .iter()
                    .map(|t| signed_list_bytes(table_items(t)))
                    .sum();
                sizes::onion_layer(inner)
            }
            Msg::Report(r) => match &**r {
                Report::ListOmission { accused_list, .. } => {
                    sizes::CERTIFICATE + signed_list_bytes(table_items(accused_list)) + 8
                }
                Report::FingerManipulation {
                    table,
                    finger_pred_list,
                    pred_succ_list,
                    ..
                } => {
                    sizes::CERTIFICATE
                        + signed_list_bytes(table_items(table))
                        + signed_list_bytes(table_items(finger_pred_list))
                        + signed_list_bytes(table_items(pred_succ_list))
                        + 4
                }
                Report::Dropper { relays, .. } => {
                    sizes::CERTIFICATE
                        + sizes::REQUEST
                        + relays.len() as u32 * sizes::ROUTING_ITEM
                        + sizes::SIGNATURE
                }
            },
            Msg::CaProofRequest { .. } => sizes::REQUEST,
            Msg::CaProofReply {
                own_list, proofs, ..
            } => {
                signed_list_bytes(table_items(own_list))
                    + proofs
                        .iter()
                        .map(|p| signed_list_bytes(table_items(p)))
                        .sum::<u32>()
            }
            Msg::CaReceiptRequest { .. } => sizes::REQUEST + 8,
            Msg::CaReceiptReply { .. } => sizes::REQUEST + sizes::SIGNATURE,
            Msg::CaProvRequest { .. } => sizes::REQUEST + 4,
            Msg::CaProvReply { prov, .. } => {
                sizes::REQUEST
                    + prov
                        .as_ref()
                        .map_or(0, |p| signed_list_bytes(table_items(p)))
            }
            Msg::Revocation { revoked } => 8 + revoked.len() as u32 * sizes::ROUTING_ITEM,
        }
    }
}

/// Per-node timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Timer {
    /// Run successor + predecessor stabilization (every 2 s).
    Stabilize,
    /// Refresh fingers via iterative lookups (every 30 s).
    FingerUpdate,
    /// Run one secret neighbor + one secret finger surveillance check
    /// (every 60 s).
    Surveillance,
    /// Start a relay-selection random walk (every 15 s).
    Walk,
    /// Start an application lookup (every 60 s).
    Lookup,
    /// A pending request timed out.
    RequestTimeout {
        /// The request id that expired.
        req: u64,
    },
    /// Second stage of a finger check ("after a short random period of
    /// time", §4.4).
    FingerCheckStage2 {
        /// The check this stage belongs to.
        check: u64,
    },
    /// Deadline for a forwarding receipt (DoS defense).
    ReceiptDeadline {
        /// The flow whose receipt is awaited.
        flow: u64,
    },
    /// CA-side: deadline for an investigation step.
    CaCaseTimeout {
        /// The case id.
        case: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_small() {
        assert_eq!(Msg::GetTable { req: 1 }.wire_bytes(), sizes::REQUEST);
        assert_eq!(Msg::CaProofRequest { case: 1 }.wire_bytes(), sizes::REQUEST);
    }

    #[test]
    fn onion_grows_per_hop() {
        let mk = |n: usize| OnionPacket {
            flow: 1,
            route: (0..n)
                .map(|i| Hop {
                    node: NodeId(i as u64),
                    delay: i == 1,
                })
                .collect(),
            action: ExitAction::QueryTable { target: NodeId(9) },
        };
        assert!(mk(3).wire_bytes() > mk(1).wire_bytes());
        assert_eq!(mk(1).wire_bytes() % sizes::AES_BLOCK, 0);
    }

    #[test]
    fn delegate_payload_larger_than_query() {
        let q = OnionPacket {
            flow: 1,
            route: vec![],
            action: ExitAction::QueryTable { target: NodeId(9) },
        };
        let d = OnionPacket {
            flow: 1,
            route: vec![],
            action: ExitAction::Delegate {
                seed: 7,
                length: 3,
                fingers: vec![NodeId(1); 12],
            },
        };
        assert!(d.wire_bytes() > q.wire_bytes());
    }

    #[test]
    fn revocation_scales_with_count() {
        let r1 = Msg::Revocation {
            revoked: vec![NodeId(1)],
        };
        let r3 = Msg::Revocation {
            revoked: vec![NodeId(1), NodeId(2), NodeId(3)],
        };
        assert_eq!(r3.wire_bytes() - r1.wire_bytes(), 2 * sizes::ROUTING_ITEM);
    }

    #[test]
    fn receipt_bytes_bind_flow() {
        assert_ne!(receipt_bytes(1), receipt_bytes(2));
        assert_eq!(&receipt_bytes(5)[..7], b"receipt");
    }
}
