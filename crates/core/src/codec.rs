//! Byte-level codec for [`Msg`] — the payload format carried inside
//! `octopus_net::wire` frames.
//!
//! The simulator never serializes messages (its [`octopus_net::Envelope`]
//! carries them in memory), but the UDP transport does, and both paths
//! share the same [`octopus_net::FrameHeader`] so addressing cannot
//! drift. Every field is big-endian and fixed-width where the type is
//! fixed-width; variable-length sequences carry a `u32` count that is
//! validated against the remaining bytes before any allocation
//! ([`PayloadReader::seq_len`]), so a forged length cannot balloon
//! memory. Decoding never panics: every malformation maps to a
//! [`DecodeError`], which the frame layer surfaces as
//! `FrameError::BadPayload`.
//!
//! [`Msg::OnionReply`] nests a full `Msg` as its payload, so decoding is
//! recursive; [`MAX_ONION_DEPTH`] bounds the recursion and deeper inputs
//! are rejected with [`DecodeError::TooDeep`] instead of blowing the
//! stack.

use octopus_chord::{RoutingTable, SignedRoutingTable};
use octopus_crypto::{Certificate, PublicKey, Signature};
use octopus_id::NodeId;
use octopus_net::{DecodeError, PayloadReader, WireCodec};

use crate::messages::{ExitAction, Hop, Msg, OnionPacket, ReceiptToken, Report};

/// Deepest allowed [`Msg::OnionReply`] nesting. Honest traffic nests
/// exactly once (a `Table` or `WalkResult` inside the reply onion);
/// the bound only exists to stop a hostile frame from causing unbounded
/// recursion.
pub const MAX_ONION_DEPTH: usize = 16;

/// Minimum encoded size of a [`SignedRoutingTable`]: 4-byte table
/// length, the empty-table encoding (8 owner + 3 × (1 tag + 4 len)),
/// timestamp, signature, and certificate.
const SIGNED_TABLE_MIN: usize = 4 + (8 + 3 * 5) + 8 + 8 + CERT_BYTES;

/// Encoded size of a [`Certificate`]: node_id + address + public key
/// (n, e) + expires_at + ca_signature.
const CERT_BYTES: usize = 8 + 4 + 16 + 8 + 8;

fn put_id(out: &mut Vec<u8>, id: NodeId) {
    out.extend_from_slice(&id.0.to_be_bytes());
}

fn get_id(r: &mut PayloadReader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId(r.u64()?))
}

fn put_ids(out: &mut Vec<u8>, ids: &[NodeId]) {
    out.extend_from_slice(&(ids.len() as u32).to_be_bytes());
    for id in ids {
        put_id(out, *id);
    }
}

fn get_ids(r: &mut PayloadReader<'_>) -> Result<Vec<NodeId>, DecodeError> {
    let n = r.seq_len(8)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(get_id(r)?);
    }
    Ok(ids)
}

fn get_bool(r: &mut PayloadReader<'_>) -> Result<bool, DecodeError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_cert(out: &mut Vec<u8>, c: &Certificate) {
    put_id(out, c.node_id);
    out.extend_from_slice(&c.address.to_be_bytes());
    out.extend_from_slice(&c.public_key.n.to_be_bytes());
    out.extend_from_slice(&c.public_key.e.to_be_bytes());
    out.extend_from_slice(&c.expires_at.to_be_bytes());
    out.extend_from_slice(&c.ca_signature.0.to_be_bytes());
}

fn get_cert(r: &mut PayloadReader<'_>) -> Result<Certificate, DecodeError> {
    Ok(Certificate {
        node_id: get_id(r)?,
        address: r.u32()?,
        public_key: PublicKey {
            n: r.u64()?,
            e: r.u64()?,
        },
        expires_at: r.u64()?,
        ca_signature: Signature(r.u64()?),
    })
}

fn put_signed_table(out: &mut Vec<u8>, t: &SignedRoutingTable) {
    let table_bytes = t.table.encode();
    out.extend_from_slice(&(table_bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&table_bytes);
    out.extend_from_slice(&t.timestamp.to_be_bytes());
    out.extend_from_slice(&t.signature.0.to_be_bytes());
    put_cert(out, &t.certificate);
}

fn get_signed_table(r: &mut PayloadReader<'_>) -> Result<SignedRoutingTable, DecodeError> {
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(DecodeError::BadLength);
    }
    let table_bytes = r.take(len)?;
    // RoutingTable::decode accepts exactly the canonical (signed) form,
    // so a table that survives this call still verifies against its
    // signature after re-encoding.
    let table = RoutingTable::decode(table_bytes).ok_or(DecodeError::BadLength)?;
    Ok(SignedRoutingTable {
        table,
        timestamp: r.u64()?,
        signature: Signature(r.u64()?),
        certificate: get_cert(r)?,
    })
}

fn put_signed_tables(out: &mut Vec<u8>, ts: &[SignedRoutingTable]) {
    out.extend_from_slice(&(ts.len() as u32).to_be_bytes());
    for t in ts {
        put_signed_table(out, t);
    }
}

fn get_signed_tables(r: &mut PayloadReader<'_>) -> Result<Vec<SignedRoutingTable>, DecodeError> {
    let n = r.seq_len(SIGNED_TABLE_MIN)?;
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        ts.push(get_signed_table(r)?);
    }
    Ok(ts)
}

fn put_receipt(out: &mut Vec<u8>, t: &ReceiptToken) {
    out.extend_from_slice(&t.flow.to_be_bytes());
    put_id(out, t.signer);
    out.extend_from_slice(&t.sig.0.to_be_bytes());
}

fn get_receipt(r: &mut PayloadReader<'_>) -> Result<ReceiptToken, DecodeError> {
    Ok(ReceiptToken {
        flow: r.u64()?,
        signer: get_id(r)?,
        sig: Signature(r.u64()?),
    })
}

fn put_action(out: &mut Vec<u8>, a: &ExitAction) {
    match a {
        ExitAction::QueryTable { target } => {
            out.push(0);
            put_id(out, *target);
        }
        ExitAction::Delegate {
            seed,
            length,
            fingers,
        } => {
            out.push(1);
            out.extend_from_slice(&seed.to_be_bytes());
            out.extend_from_slice(&(*length as u64).to_be_bytes());
            put_ids(out, fingers);
        }
    }
}

fn get_action(r: &mut PayloadReader<'_>) -> Result<ExitAction, DecodeError> {
    match r.u8()? {
        0 => Ok(ExitAction::QueryTable { target: get_id(r)? }),
        1 => {
            let seed = r.u64()?;
            let length = r.u64()?;
            // a walk length beyond the payload's own id capacity is a lie
            if length > octopus_net::wire::MAX_PAYLOAD as u64 / 8 {
                return Err(DecodeError::BadLength);
            }
            Ok(ExitAction::Delegate {
                seed,
                length: length as usize,
                fingers: get_ids(r)?,
            })
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_onion(out: &mut Vec<u8>, p: &OnionPacket) {
    out.extend_from_slice(&p.flow.to_be_bytes());
    out.extend_from_slice(&(p.route.len() as u32).to_be_bytes());
    for h in &p.route {
        put_id(out, h.node);
        out.push(u8::from(h.delay));
    }
    put_action(out, &p.action);
}

fn get_onion(r: &mut PayloadReader<'_>) -> Result<OnionPacket, DecodeError> {
    let flow = r.u64()?;
    let n = r.seq_len(9)?;
    let mut route = Vec::with_capacity(n);
    for _ in 0..n {
        route.push(Hop {
            node: get_id(r)?,
            delay: get_bool(r)?,
        });
    }
    Ok(OnionPacket {
        flow,
        route,
        action: get_action(r)?,
    })
}

fn put_report(out: &mut Vec<u8>, rep: &Report) {
    match rep {
        Report::ListOmission {
            reporter,
            reporter_cert,
            omitted,
            accused_list,
        } => {
            out.push(0);
            put_id(out, *reporter);
            put_cert(out, reporter_cert);
            put_id(out, *omitted);
            put_signed_table(out, accused_list);
        }
        Report::FingerManipulation {
            reporter,
            reporter_cert,
            table,
            finger_index,
            finger_pred_list,
            pred_succ_list,
        } => {
            out.push(1);
            put_id(out, *reporter);
            put_cert(out, reporter_cert);
            put_signed_table(out, table);
            out.extend_from_slice(&finger_index.to_be_bytes());
            put_signed_table(out, finger_pred_list);
            put_signed_table(out, pred_succ_list);
        }
        Report::Dropper {
            reporter,
            reporter_cert,
            flow,
            relays,
            target,
            initiator_receipt,
        } => {
            out.push(2);
            put_id(out, *reporter);
            put_cert(out, reporter_cert);
            out.extend_from_slice(&flow.to_be_bytes());
            put_ids(out, relays);
            put_id(out, *target);
            match initiator_receipt {
                None => out.push(0),
                Some(t) => {
                    out.push(1);
                    put_receipt(out, t);
                }
            }
        }
    }
}

fn get_report(r: &mut PayloadReader<'_>) -> Result<Report, DecodeError> {
    match r.u8()? {
        0 => Ok(Report::ListOmission {
            reporter: get_id(r)?,
            reporter_cert: get_cert(r)?,
            omitted: get_id(r)?,
            accused_list: Box::new(get_signed_table(r)?),
        }),
        1 => Ok(Report::FingerManipulation {
            reporter: get_id(r)?,
            reporter_cert: get_cert(r)?,
            table: Box::new(get_signed_table(r)?),
            finger_index: r.u32()?,
            finger_pred_list: Box::new(get_signed_table(r)?),
            pred_succ_list: Box::new(get_signed_table(r)?),
        }),
        2 => Ok(Report::Dropper {
            reporter: get_id(r)?,
            reporter_cert: get_cert(r)?,
            flow: r.u64()?,
            relays: get_ids(r)?,
            target: get_id(r)?,
            initiator_receipt: match get_bool(r)? {
                false => None,
                true => Some(get_receipt(r)?),
            },
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::GetSuccList { req } => {
            out.push(0);
            out.extend_from_slice(&req.to_be_bytes());
        }
        Msg::SuccList { req, list } => {
            out.push(1);
            out.extend_from_slice(&req.to_be_bytes());
            put_signed_table(out, list);
        }
        Msg::GetPredList { req } => {
            out.push(2);
            out.extend_from_slice(&req.to_be_bytes());
        }
        Msg::PredList { req, list } => {
            out.push(3);
            out.extend_from_slice(&req.to_be_bytes());
            put_signed_table(out, list);
        }
        Msg::GetTable { req } => {
            out.push(4);
            out.extend_from_slice(&req.to_be_bytes());
        }
        Msg::Table { req, table } => {
            out.push(5);
            out.extend_from_slice(&req.to_be_bytes());
            put_signed_table(out, table);
        }
        Msg::Onion(p) => {
            out.push(6);
            put_onion(out, p);
        }
        Msg::OnionReply { flow, payload } => {
            out.push(7);
            out.extend_from_slice(&flow.to_be_bytes());
            encode_msg(payload, out);
        }
        Msg::Receipt { token } => {
            out.push(8);
            put_receipt(out, token);
        }
        Msg::WalkResult { flow, tables } => {
            out.push(9);
            out.extend_from_slice(&flow.to_be_bytes());
            put_signed_tables(out, tables);
        }
        Msg::Report(rep) => {
            out.push(10);
            put_report(out, rep);
        }
        Msg::CaProofRequest { case } => {
            out.push(11);
            out.extend_from_slice(&case.to_be_bytes());
        }
        Msg::CaProofReply {
            case,
            own_list,
            proofs,
        } => {
            out.push(12);
            out.extend_from_slice(&case.to_be_bytes());
            put_signed_table(out, own_list);
            put_signed_tables(out, proofs);
        }
        Msg::CaReceiptRequest { case, flow } => {
            out.push(13);
            out.extend_from_slice(&case.to_be_bytes());
            out.extend_from_slice(&flow.to_be_bytes());
        }
        Msg::CaReceiptReply {
            case,
            flow,
            receipt,
        } => {
            out.push(14);
            out.extend_from_slice(&case.to_be_bytes());
            out.extend_from_slice(&flow.to_be_bytes());
            match receipt {
                None => out.push(0),
                Some(t) => {
                    out.push(1);
                    put_receipt(out, t);
                }
            }
        }
        Msg::CaProvRequest { case, slot } => {
            out.push(15);
            out.extend_from_slice(&case.to_be_bytes());
            out.extend_from_slice(&slot.to_be_bytes());
        }
        Msg::CaProvReply { case, prov } => {
            out.push(16);
            out.extend_from_slice(&case.to_be_bytes());
            match prov {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    put_signed_table(out, p);
                }
            }
        }
        Msg::Revocation { revoked } => {
            out.push(17);
            put_ids(out, revoked);
        }
    }
}

fn decode_msg(r: &mut PayloadReader<'_>, depth: usize) -> Result<Msg, DecodeError> {
    if depth > MAX_ONION_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    match r.u8()? {
        0 => Ok(Msg::GetSuccList { req: r.u64()? }),
        1 => Ok(Msg::SuccList {
            req: r.u64()?,
            list: Box::new(get_signed_table(r)?),
        }),
        2 => Ok(Msg::GetPredList { req: r.u64()? }),
        3 => Ok(Msg::PredList {
            req: r.u64()?,
            list: Box::new(get_signed_table(r)?),
        }),
        4 => Ok(Msg::GetTable { req: r.u64()? }),
        5 => Ok(Msg::Table {
            req: r.u64()?,
            table: Box::new(get_signed_table(r)?),
        }),
        6 => Ok(Msg::Onion(get_onion(r)?)),
        7 => Ok(Msg::OnionReply {
            flow: r.u64()?,
            payload: Box::new(decode_msg(r, depth + 1)?),
        }),
        8 => Ok(Msg::Receipt {
            token: get_receipt(r)?,
        }),
        9 => Ok(Msg::WalkResult {
            flow: r.u64()?,
            tables: get_signed_tables(r)?,
        }),
        10 => Ok(Msg::Report(Box::new(get_report(r)?))),
        11 => Ok(Msg::CaProofRequest { case: r.u64()? }),
        12 => Ok(Msg::CaProofReply {
            case: r.u64()?,
            own_list: Box::new(get_signed_table(r)?),
            proofs: get_signed_tables(r)?,
        }),
        13 => Ok(Msg::CaReceiptRequest {
            case: r.u64()?,
            flow: r.u64()?,
        }),
        14 => Ok(Msg::CaReceiptReply {
            case: r.u64()?,
            flow: r.u64()?,
            receipt: match get_bool(r)? {
                false => None,
                true => Some(get_receipt(r)?),
            },
        }),
        15 => Ok(Msg::CaProvRequest {
            case: r.u64()?,
            slot: r.u32()?,
        }),
        16 => Ok(Msg::CaProvReply {
            case: r.u64()?,
            prov: match get_bool(r)? {
                false => None,
                true => Some(Box::new(get_signed_table(r)?)),
            },
        }),
        17 => Ok(Msg::Revocation {
            revoked: get_ids(r)?,
        }),
        t => Err(DecodeError::BadTag(t)),
    }
}

impl WireCodec for Msg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        encode_msg(self, out);
    }

    fn decode_payload(r: &mut PayloadReader<'_>) -> Result<Self, DecodeError> {
        decode_msg(r, 0)
    }
}
