//! Octopus protocol parameters (defaults from paper §5.1 and §7).

use octopus_chord::ChordConfig;
use octopus_sim::Duration;

/// Parameters of an Octopus deployment.
#[derive(Clone, Copy, Debug)]
pub struct OctopusConfig {
    /// Underlying Chord ring parameters.
    pub chord: ChordConfig,
    /// Hops per random-walk phase (`l` in Appendix I).
    pub walk_length: usize,
    /// Dummy queries injected per lookup (§4.2; 2 or 6 in Fig. 5).
    pub dummy_queries: usize,
    /// Successor/predecessor stabilization period (2 s in §5.1).
    pub stabilize_every: Duration,
    /// Finger-update lookup period (30 s in §5.1).
    pub finger_update_every: Duration,
    /// Secret neighbor + finger surveillance period (60 s in §5.1).
    pub surveillance_every: Duration,
    /// Random walk period for relay selection (15 s in §5.1).
    pub walk_every: Duration,
    /// Application lookup period (one lookup per minute per node, §5.1).
    pub lookup_every: Duration,
    /// Length of the successor-list proof queue (6 in §5.1).
    pub proof_queue: usize,
    /// Number of signed routing tables buffered for finger surveillance.
    pub table_buffer: usize,
    /// Maximum random delay added by the middle relay B to defeat timing
    /// analysis (100 ms in §7).
    pub relay_max_delay: Duration,
    /// Request timeout before a peer is treated as unresponsive.
    pub request_timeout: Duration,
    /// Maximum proof-chain length the CA walks before giving up.
    pub max_proof_chain: usize,
    /// Emit semantic [`crate::trace::TraceEvent`]s for the reference
    /// model (`octopus-spec`). Off by default: tracing is a test-only
    /// observation channel and costs one control per protocol decision.
    pub trace: bool,
}

impl Default for OctopusConfig {
    fn default() -> Self {
        OctopusConfig {
            chord: ChordConfig::default(),
            walk_length: 3,
            dummy_queries: 6,
            stabilize_every: Duration::from_secs(2),
            finger_update_every: Duration::from_secs(30),
            surveillance_every: Duration::from_secs(60),
            walk_every: Duration::from_secs(15),
            lookup_every: Duration::from_secs(60),
            // the paper keeps the 6 *latest* received lists; we retain
            // twice that so the justifying proof survives the CA's
            // investigation latency (report pipeline + chain steps can
            // take ~15 s, and the queue turns over every 2 s)
            proof_queue: 12,
            table_buffer: 8,
            relay_max_delay: Duration::from_millis(100),
            // comfortably above the worst-case anonymous path RTT
            // (12 hops × max one-way latency + relay delay ≈ 5.5 s), so a
            // timeout really means a drop or a death, never a slow path —
            // a false Dropper report would send the CA after honest relays
            request_timeout: Duration::from_secs(10),
            max_proof_chain: 8,
            trace: false,
        }
    }
}

impl OctopusConfig {
    /// A configuration scaled for a network of `n` nodes.
    #[must_use]
    pub fn for_network(n: usize) -> Self {
        OctopusConfig {
            chord: ChordConfig::for_network(n),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OctopusConfig::default();
        assert_eq!(c.stabilize_every, Duration::from_secs(2));
        assert_eq!(c.finger_update_every, Duration::from_secs(30));
        assert_eq!(c.surveillance_every, Duration::from_secs(60));
        assert_eq!(c.walk_every, Duration::from_secs(15));
        assert_eq!(c.proof_queue, 12);
        assert_eq!(c.dummy_queries, 6);
        assert_eq!(c.relay_max_delay, Duration::from_millis(100));
    }

    #[test]
    fn for_network_scales_chord() {
        let c = OctopusConfig::for_network(100_000);
        assert!(c.chord.fingers > 12);
    }
}
