//! Adapter between engine trace events and the reference model.
//!
//! The engine speaks [`NodeId`]s and [`TraceEvent`]s; the model
//! (`octopus-spec`) deliberately knows nothing about engine types and
//! folds plain-`u64` [`ModelEvent`]s. This module is the entire
//! coupling surface between the two: a total, field-by-field
//! translation plus a convenience replay. Keeping it this thin is what
//! makes the model an *independent* second implementation — if the
//! adapter ever needs engine logic, the oracle is leaking.

use octopus_id::NodeId;
use octopus_spec::{ModelEvent, Replay};

use crate::trace::TraceEvent;

/// Translate one engine trace event into the model's vocabulary.
/// Total: every trace event has exactly one model twin.
#[must_use]
pub fn to_model_event(ev: &TraceEvent) -> ModelEvent {
    let id = |n: NodeId| n.0;
    match *ev {
        TraceEvent::NodeJoined { node } => ModelEvent::NodeJoined { node: id(node) },
        TraceEvent::NodeKilled { node } => ModelEvent::NodeKilled { node: id(node) },
        TraceEvent::RevocationApplied { node } => ModelEvent::RevocationApplied { node: id(node) },
        TraceEvent::AnonSent { node, flow, first } => ModelEvent::AnonSent {
            node: id(node),
            flow,
            first: id(first),
        },
        TraceEvent::OnionProcessed {
            node,
            from,
            flow,
            route_next,
            receipt_sent,
            forwarded_to,
            exited,
        } => ModelEvent::OnionProcessed {
            node: id(node),
            from: id(from),
            flow,
            route_next: route_next.map(id),
            receipt_sent,
            forwarded_to: forwarded_to.map(id),
            exited,
        },
        TraceEvent::ReceiptChecked {
            node,
            from,
            flow,
            signer,
            accepted,
        } => ModelEvent::ReceiptChecked {
            node: id(node),
            from: id(from),
            flow,
            signer: id(signer),
            accepted,
        },
        TraceEvent::ReceiptExpired { node, flow } => ModelEvent::ReceiptExpired {
            node: id(node),
            flow,
        },
        TraceEvent::LookupQuery {
            node,
            lookup,
            target,
        } => ModelEvent::LookupQuery {
            node: id(node),
            lookup,
            target: id(target),
        },
        TraceEvent::TableChecked {
            node,
            lookup,
            owner,
            awaiting,
            sig_ok,
            accepted,
        } => ModelEvent::TableChecked {
            node: id(node),
            lookup,
            owner: id(owner),
            awaiting: id(awaiting),
            sig_ok,
            accepted,
        },
        TraceEvent::RevocationSeen {
            node,
            ref revoked,
            tracked,
        } => ModelEvent::RevocationSeen {
            node: id(node),
            revoked: revoked.iter().map(|&n| n.0).collect(),
            tracked,
        },
        TraceEvent::ReportIntake {
            kind,
            reporter,
            cert_ok,
            reporter_revoked,
            evidence_ok,
            accepted,
        } => ModelEvent::ReportIntake {
            kind,
            reporter: id(reporter),
            cert_ok,
            reporter_revoked,
            evidence_ok,
            accepted,
        },
        TraceEvent::CaReceiptCheck {
            signer,
            expected_signer,
            flow_ok,
            sig_ok,
            accepted,
        } => ModelEvent::CaReceiptCheck {
            signer: id(signer),
            expected_signer: id(expected_signer),
            flow_ok,
            sig_ok,
            accepted,
        },
    }
}

/// Fold a recorded engine trace through the model and return the
/// replay: final model state plus every divergence between the engine's
/// claims and the model's recomputation.
pub fn replay_trace<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Replay {
    octopus_spec::replay(events.into_iter().map(to_model_event))
}
