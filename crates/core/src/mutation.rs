//! Deliberate, feature-gated engine bugs for the mutation-kill check.
//!
//! The reference model (`octopus-spec`) is only worth trusting if it
//! demonstrably catches real engine regressions. This module injects
//! known bugs at the exact decision sites the model oracles: each
//! [`Mutation`] disables one verification step or corrupts one
//! forwarding decision. The `mutation_kill` integration test activates
//! them one at a time and asserts the differential harness reports at
//! least one divergence for every single one — and none when no
//! mutation is active.
//!
//! Without the `spec-mutations` feature, [`is`] is a constant `false`
//! the optimizer erases; production builds carry no switchable bugs.
//! With the feature, the active mutation is a process-global atomic —
//! which is why the kill test runs its probes serially in one `#[test]`.

/// One injectable engine bug. Each variant names the verification it
/// breaks; the doc comment states the observable effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Relays forward onion hops without acknowledging them with a
    /// receipt — the receipt chain silently stops being extended.
    ForwardWithoutReceipt = 0,
    /// Relays send the peeled onion back to the previous hop instead of
    /// the route's next hop.
    MisrouteOnion = 1,
    /// Receipt verification accepts any token: nodes clear a receipt
    /// wait on any signer, and the CA's signature check always passes.
    AcceptAnyReceipt = 2,
    /// Lookup-table acceptance skips certificate verification, so
    /// stale (expired/revoked) and forged tables pass.
    AcceptStaleTables = 3,
    /// The CA's report intake skips the reporter-certificate check.
    SkipReportCertCheck = 4,
    /// Nodes ignore revocation notices entirely: no purge, no local
    /// revoked-set tracking.
    SkipRevocationPurge = 5,
}

/// Every mutation, for exhaustive kill loops.
pub const ALL: &[Mutation] = &[
    Mutation::ForwardWithoutReceipt,
    Mutation::MisrouteOnion,
    Mutation::AcceptAnyReceipt,
    Mutation::AcceptStaleTables,
    Mutation::SkipReportCertCheck,
    Mutation::SkipRevocationPurge,
];

#[cfg(feature = "spec-mutations")]
mod active {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = no mutation; otherwise `Mutation as u8 + 1`.
    static ACTIVE: AtomicU8 = AtomicU8::new(0);

    pub(super) fn set(v: u8) {
        ACTIVE.store(v, Ordering::SeqCst);
    }

    pub(super) fn get() -> u8 {
        ACTIVE.load(Ordering::SeqCst)
    }
}

/// Activate one mutation (or none) process-wide. Only exists with the
/// `spec-mutations` feature; the kill test is its only intended caller.
#[cfg(feature = "spec-mutations")]
pub fn set_mutation(m: Option<Mutation>) {
    active::set(match m {
        None => 0,
        Some(x) => x as u8 + 1,
    });
}

/// Is `m` the active mutation? Call sites use this unconditionally;
/// without the `spec-mutations` feature it is a constant `false`.
#[inline]
#[must_use]
pub fn is(m: Mutation) -> bool {
    #[cfg(feature = "spec-mutations")]
    {
        active::get() == m as u8 + 1
    }
    #[cfg(not(feature = "spec-mutations"))]
    {
        let _ = m;
        false
    }
}
