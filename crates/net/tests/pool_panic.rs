//! Panic replay through the shard worker pool: a node handler that
//! panics inside a parallel window batch must surface on the driving
//! thread with its payload intact — byte-identical at every pool width
//! (1 worker, 2 workers, machine cores) and identical to the fully
//! sequential run — and it must leave the [`World`] unpoisoned: every
//! shard is reclaimed from its worker slot, later windows still run,
//! and dropping the world joins the pool without hanging.

use std::panic::{self, AssertUnwindSafe};

use octopus_id::NodeId;
use octopus_net::{Addr, ConstantLatency, NodeBehavior, Runtime, SchedulerKind, WireMsg, World};
use octopus_sim::{Duration, SimTime};

const SHARDS: usize = 4;
const NODES: u64 = 16;
/// Sim time after which the armed node detonates on its next timer.
fn fuse() -> Duration {
    Duration::from_millis(400)
}

/// Detonation is timer-driven, so it must land well inside this.
fn deadline() -> Duration {
    Duration::from_secs(2)
}

struct Ping;

impl WireMsg for Ping {
    fn wire_bytes(&self) -> u32 {
        16
    }
}

struct Tick;

/// Ping traffic generator; exactly one instance is armed and panics
/// with a deterministic payload once the fuse elapses.
struct Bomb {
    peers: Vec<Addr>,
    armed: bool,
    ticks: u64,
    pings_seen: u64,
}

impl NodeBehavior for Bomb {
    type Msg = Ping;
    type Timer = Tick;
    type Control = ();

    fn on_start(&mut self, ctx: &mut dyn Runtime<Ping, Tick, ()>) {
        // Stagger first ticks by address so shard batches interleave.
        let stagger = 1 + (ctx.addr().0 >> 60) % 5;
        ctx.set_timer(Duration::from_millis(stagger), Tick);
    }

    fn on_message(&mut self, _ctx: &mut dyn Runtime<Ping, Tick, ()>, _from: Addr, _msg: Ping) {
        self.pings_seen += 1;
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<Ping, Tick, ()>, _t: Tick) {
        if self.armed && ctx.now() >= SimTime::ZERO + fuse() {
            // The payload bakes in the detonation's position in the
            // schedule, so payload equality across pool widths is also
            // a determinism check on *when* the panic fired.
            panic!(
                "shard-batch bomb: node {:#018x} detonated at {:?} after {} ticks",
                ctx.addr().0,
                ctx.now(),
                self.ticks
            );
        }
        let to = self.peers[(self.ticks as usize) % self.peers.len()];
        ctx.send(to, Ping);
        self.ticks += 1;
        ctx.set_timer(Duration::from_millis(3), Tick);
    }
}

fn node_addr(i: u64) -> Addr {
    // Top-bit spread: 4 nodes per shard at SHARDS = 4.
    NodeId(i << 60)
}

fn build_world() -> World<Bomb, ConstantLatency> {
    let mut world = World::with_shards(
        ConstantLatency(Duration::from_millis(5)),
        0xB0B,
        SchedulerKind::TimingWheel,
        SHARDS,
    );
    let peers: Vec<Addr> = (0..NODES).map(node_addr).collect();
    for i in 0..NODES {
        let addr = node_addr(i);
        world.insert_node(
            addr,
            Bomb {
                peers: peers.iter().copied().filter(|&p| p != addr).collect(),
                armed: i == 5,
                ticks: 0,
                pings_seen: 0,
            },
        );
    }
    world
}

/// Render a caught payload; the bomb always panics with a formatted
/// `String`, so anything else is itself a replay bug worth seeing.
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(other) => match other.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "<non-string panic payload>".to_owned(),
        },
    }
}

/// Run `f` with panic-hook output suppressed (the detonations below
/// are expected; their backtraces would drown the test log).
fn quiet<R>(f: impl FnOnce() -> R) -> R {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(prev);
    out
}

/// Drive windows until the bomb goes off; return its payload. Then
/// prove the world survived: more windows run cleanly and the world
/// drops (joining any pool workers) without a second panic.
fn detonate_and_recover(mut world: World<Bomb, ConstantLatency>) -> String {
    let deadline = SimTime::ZERO + self::deadline();
    let payload = quiet(|| {
        panic::catch_unwind(AssertUnwindSafe(|| {
            while world.run_window(deadline).is_some() {}
        }))
        .expect_err("the armed node must detonate before the deadline")
    });
    // Unpoisoned: every shard is back in the world (the pool returns a
    // shard to its slot even when its batch panics), so stepping
    // continues — the dead bomb node is simply gone from its slab.
    let resumed = panic::catch_unwind(AssertUnwindSafe(|| {
        let extended = deadline + Duration::from_millis(100);
        let mut windows = 0usize;
        while world.run_window(extended).is_some() {
            windows += 1;
        }
        (windows, world.now())
    }));
    let (windows, now) = resumed.unwrap_or_else(|p| {
        panic!(
            "world must keep stepping after a caught batch panic; got: {}",
            payload_string(p)
        )
    });
    assert!(windows > 0, "no window ran after the panic was caught");
    assert!(now >= SimTime::ZERO + fuse(), "clock went backwards");
    let survivors = world.addrs().count();
    assert!(
        survivors >= (NODES as usize) - 1,
        "panic destroyed more than the panicking node: {survivors} nodes left"
    );
    drop(world); // must join pool workers without hanging
    payload_string(payload)
}

#[test]
fn panic_payload_replays_identically_at_every_pool_width() {
    // Ground truth: sequential windowed execution (no pool at all).
    let sequential = detonate_and_recover(build_world());
    assert!(
        sequential.contains("shard-batch bomb") && sequential.contains("detonated"),
        "unexpected payload: {sequential}"
    );

    // Pool widths 1 (inline batches), 2 (pooled), and 0 = auto sizing
    // (the machine's cores). Each must replay the exact payload.
    for width in [1usize, 2, 0] {
        let mut world = build_world();
        world.set_parallel(true);
        world.set_worker_threads(width);
        let parallel = detonate_and_recover(world);
        assert_eq!(
            parallel, sequential,
            "panic payload diverged at pool width {width}"
        );
    }
}
