//! The transport-agnostic node boundary.
//!
//! Protocol code in `octopus-core` never talks to a network directly:
//! a node implements [`NodeBehavior`] and receives every capability it
//! may use — send a message to an overlay address, arm a timer, emit a
//! control event, draw seeded randomness, read the clock — through the
//! [`Runtime`] trait object handed to its hooks. That surface is the
//! *entire* contract between the protocol and whatever hosts it, so
//! the identical secure-lookup / onion / CA code runs over:
//!
//! * the deterministic sharded simulator ([`crate::world::World`]),
//!   whose pooled [`Ctx`] buffers implement [`Runtime`] against
//!   virtual [`SimTime`]; and
//! * a real socket transport (`octopus-transport`), whose poll loop
//!   implements [`Runtime`] against the wall clock and serializes
//!   sends through the versioned frame codec in [`crate::wire`].
//!
//! [`Transport`] is the matching host-level surface: something that
//! owns nodes, accepts injected messages and drives execution. The
//! simulator advances virtual time when driven; a socket transport
//! blocks on real time. Neither side of the boundary can tell which
//! implementation it is talking to — that is what keeps the simulator
//! byte-identical while the same protocol binary ships over UDP.

use octopus_id::NodeId;
use octopus_sim::{Duration, SimTime};
use rand::rngs::StdRng;

use crate::wire::WireMsg;

/// Overlay address. Octopus identifies peers by ring id; transports map
/// ids to locations (the simulator directly, UDP via a peer table).
pub type Addr = NodeId;

/// The node-facing runtime surface: every capability a hosted protocol
/// node may use from inside a handler.
///
/// Implementations must uphold the determinism posture documented on
/// their host: the simulator's runtime draws time from the event queue
/// and randomness from per-node seeded streams; a real transport is
/// allowed wall-clock time but must still derive its RNG from the
/// configured master seed.
pub trait Runtime<M, T, C> {
    /// Current time (virtual in the simulator, wall-clock-derived in a
    /// real transport).
    fn now(&self) -> SimTime;

    /// The hosted node's own overlay address.
    fn addr(&self) -> Addr;

    /// Send `msg` to `to` (transmission latency is the transport's
    /// concern: sampled in the simulator, physical on a socket).
    fn send(&mut self, to: Addr, msg: M);

    /// Send with an *additional* artificial delay before transmission —
    /// used by the middle relay B, which delays forwarded messages by a
    /// random amount to defeat timing analysis (paper §4.7).
    fn send_delayed(&mut self, to: Addr, msg: M, extra: Duration);

    /// Arm a timer to fire after `delay`.
    fn set_timer(&mut self, delay: Duration, timer: T);

    /// Emit a control event to the hosting driver.
    fn emit(&mut self, control: C);

    /// This node's deterministic RNG stream.
    fn rng(&mut self) -> &mut StdRng;
}

/// A protocol node hosted behind the transport boundary.
pub trait NodeBehavior {
    /// Message type exchanged between nodes.
    type Msg: WireMsg;
    /// Per-node timer kinds.
    type Timer;
    /// Control events surfaced to the hosting driver.
    type Control;

    /// Handle a delivered message.
    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<Self::Msg, Self::Timer, Self::Control>,
        from: Addr,
        msg: Self::Msg,
    );

    /// Handle an expired timer.
    fn on_timer(
        &mut self,
        ctx: &mut dyn Runtime<Self::Msg, Self::Timer, Self::Control>,
        timer: Self::Timer,
    );

    /// Called once when the node is inserted into its host (schedule
    /// initial timers here).
    fn on_start(&mut self, ctx: &mut dyn Runtime<Self::Msg, Self::Timer, Self::Control>) {
        let _ = ctx;
    }
}

/// The host-level surface: something that owns [`NodeBehavior`] nodes,
/// accepts messages addressed to them, and drives their execution.
///
/// The sharded simulator implements this by advancing virtual time; the
/// UDP transport implements it by polling its socket until the
/// wall-clock budget is spent. Drivers written against `Transport` run
/// unchanged over either.
pub trait Transport<B: NodeBehavior> {
    /// Queue `msg` for delivery to a hosted node, as if sent by `from`.
    fn inject(&mut self, from: Addr, to: Addr, msg: B::Msg);

    /// Advance the transport by `budget` (virtual or wall-clock time,
    /// per the implementation), returning the control events hosted
    /// nodes emitted during the interval.
    fn drive(&mut self, budget: Duration) -> Vec<B::Control>;
}

/// Handler context: the buffer-backed [`Runtime`] implementation shared
/// by every host. The simulator's shards pool these buffers and reuse
/// them across events; the UDP host keeps one set per poll loop.
/// Handlers only ever see the buffers empty.
pub struct Ctx<'a, M, T, C> {
    now: SimTime,
    self_addr: Addr,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(Addr, M, Duration)>,
    timers: &'a mut Vec<(Duration, T)>,
    controls: &'a mut Vec<C>,
}

impl<'a, M, T, C> Ctx<'a, M, T, C> {
    /// Assemble a context over a host's scratch buffers. The buffers
    /// must be empty: whatever the handler pushes is the host's to
    /// flush afterwards.
    #[must_use]
    pub fn from_parts(
        now: SimTime,
        self_addr: Addr,
        rng: &'a mut StdRng,
        outbox: &'a mut Vec<(Addr, M, Duration)>,
        timers: &'a mut Vec<(Duration, T)>,
        controls: &'a mut Vec<C>,
    ) -> Self {
        debug_assert!(outbox.is_empty() && timers.is_empty() && controls.is_empty());
        Ctx {
            now,
            self_addr,
            rng,
            outbox,
            timers,
            controls,
        }
    }
}

impl<M, T, C> Runtime<M, T, C> for Ctx<'_, M, T, C> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn addr(&self) -> Addr {
        self.self_addr
    }

    fn send(&mut self, to: Addr, msg: M) {
        self.outbox.push((to, msg, Duration::ZERO));
    }

    fn send_delayed(&mut self, to: Addr, msg: M, extra: Duration) {
        self.outbox.push((to, msg, extra));
    }

    fn set_timer(&mut self, delay: Duration, timer: T) {
        self.timers.push((delay, timer));
    }

    fn emit(&mut self, control: C) {
        self.controls.push(control);
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    impl WireMsg for u32 {
        fn wire_bytes(&self) -> u32 {
            4
        }
    }

    #[test]
    fn ctx_buffers_collect_effects() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut outbox: Vec<(Addr, &str, Duration)> = Vec::new();
        let mut timers: Vec<(Duration, u32)> = Vec::new();
        let mut controls: Vec<&str> = Vec::new();
        let mut cx = Ctx::from_parts(
            SimTime::from_millis(5),
            NodeId(9),
            &mut rng,
            &mut outbox,
            &mut timers,
            &mut controls,
        );
        assert_eq!(cx.now(), SimTime::from_millis(5));
        assert_eq!(cx.addr(), NodeId(9));
        cx.send(NodeId(1), "hi");
        cx.send_delayed(NodeId(2), "later", Duration::from_millis(3));
        cx.set_timer(Duration::from_secs(1), 42);
        cx.emit("done");
        let _: u64 = cx.rng().gen();
        assert_eq!(outbox.len(), 2);
        assert_eq!(outbox[0].2, Duration::ZERO);
        assert_eq!(outbox[1].2, Duration::from_millis(3));
        assert_eq!(timers, vec![(Duration::from_secs(1), 42)]);
        assert_eq!(controls, vec!["done"]);
    }

    /// The same behavior runs against any `Runtime` implementation —
    /// the boundary the UDP transport relies on.
    #[test]
    fn behavior_is_runtime_agnostic() {
        struct Echo;
        impl NodeBehavior for Echo {
            type Msg = u32;
            type Timer = ();
            type Control = u32;
            fn on_message(&mut self, ctx: &mut dyn Runtime<u32, (), u32>, from: Addr, msg: u32) {
                ctx.send(from, msg + 1);
                ctx.emit(msg);
            }
            fn on_timer(&mut self, _ctx: &mut dyn Runtime<u32, (), u32>, _timer: ()) {}
        }

        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let mut controls = Vec::new();
        let mut cx = Ctx::from_parts(
            SimTime(0),
            NodeId(3),
            &mut rng,
            &mut outbox,
            &mut timers,
            &mut controls,
        );
        Echo.on_message(&mut cx, NodeId(8), 10);
        assert_eq!(outbox, vec![(NodeId(8), 11, Duration::ZERO)]);
        assert_eq!(controls, vec![10]);
    }
}
