//! A deterministic message-passing world over sharded event queues.
//!
//! Protocol nodes implement [`NodeBehavior`]; the [`World`] owns them,
//! routes typed messages through the latency model, delivers timers, and
//! accounts bandwidth. Control events let a driver (e.g. the security
//! simulator in `octopus-core::simnet`) interleave churn and measurement
//! with protocol execution without borrowing conflicts: [`World::step`]
//! returns control events to the caller instead of invoking callbacks.
//!
//! Storage and dispatch are built for scale. The ring is partitioned
//! into contiguous ID ranges ([`ShardMap`]), each owned
//! by a shard with its own generational [`NodeSlab`] (nodes colocated
//! with their RNG streams, `O(1)` slot take/restore dispatch) and its
//! own event queue; per-event outbox/timer/control buffers behind a
//! [`Ctx`] are pooled and reused instead of allocated per event.
//!
//! Sharding never changes results. Every event carries a `(time, seq)`
//! key from one global counter; execution always pops the globally
//! smallest key across all shard queues, so the event order — and
//! therefore every simulation result — is byte-identical for any shard
//! count, and a 1-shard world *is* the classic single-queue engine.
//! Cross-shard messages park in a [`CrossShardBus`]
//! and are flushed at conservative barriers bounded by the latency
//! model's guaranteed floor ([`LatencyModel::min_latency`], the
//! lookahead of [`octopus_sim::LookaheadWindow`]): a message sent at
//! `t` cannot arrive before `t + lookahead`, so parking it until the
//! window closes can never deliver it late.

use octopus_id::NodeId;
use octopus_sim::{derive_rng, Duration, EventQueue, LookaheadWindow, SchedulerKind, SimTime};
use rand::rngs::StdRng;

use crate::latency::LatencyModel;
use crate::shard::{CrossShardBus, Envelope, ShardMap};
use crate::slab::NodeSlab;
use crate::wire::{BandwidthLedger, WireMsg};

/// Overlay address. Octopus identifies peers by ring id; the simulated
/// transport maps ids directly to "IP addresses".
pub type Addr = NodeId;

/// A protocol node hosted in a [`World`].
pub trait NodeBehavior {
    /// Message type exchanged between nodes.
    type Msg: WireMsg;
    /// Per-node timer kinds.
    type Timer;
    /// Control events surfaced to the simulation driver.
    type Control;

    /// Handle a delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>,
        from: Addr,
        msg: Self::Msg,
    );

    /// Handle an expired timer.
    fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>,
        timer: Self::Timer,
    );

    /// Called once when the node is inserted into the world (schedule
    /// initial timers here).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>) {
        let _ = ctx;
    }
}

/// Handler context: lets a node send messages, set timers, emit control
/// events, and draw randomness — all without direct access to the world.
///
/// The buffers behind a `Ctx` are owned by the world's buffer pool and
/// reused across events; handlers only ever see them empty.
pub struct Ctx<'a, M, T, C> {
    now: SimTime,
    self_addr: Addr,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(Addr, M, Duration)>,
    timers: &'a mut Vec<(Duration, T)>,
    controls: &'a mut Vec<C>,
}

impl<M, T, C> Ctx<'_, M, T, C> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's own address.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.self_addr
    }

    /// Send `msg` to `to` (latency sampled by the world).
    pub fn send(&mut self, to: Addr, msg: M) {
        self.outbox.push((to, msg, Duration::ZERO));
    }

    /// Send with an *additional* artificial delay before transmission —
    /// used by the middle relay B, which delays forwarded messages by a
    /// random amount to defeat timing analysis (paper §4.7).
    pub fn send_delayed(&mut self, to: Addr, msg: M, extra: Duration) {
        self.outbox.push((to, msg, extra));
    }

    /// Arm a timer to fire after `delay`.
    pub fn set_timer(&mut self, delay: Duration, timer: T) {
        self.timers.push((delay, timer));
    }

    /// Emit a control event to the simulation driver.
    pub fn emit(&mut self, control: C) {
        self.controls.push(control);
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

enum Event<M, T, C> {
    Deliver { from: Addr, to: Addr, msg: M },
    Timer { node: Addr, timer: T },
    Control(C),
}

/// The event type of a [`NodeBehavior`]'s world, spelled once.
type EventOf<B> =
    Event<<B as NodeBehavior>::Msg, <B as NodeBehavior>::Timer, <B as NodeBehavior>::Control>;

/// What a single [`World::step`] produced.
pub enum StepOutcome<C> {
    /// A protocol event (message or timer) was processed; control events
    /// it emitted are included.
    Protocol(Vec<C>),
    /// A driver-scheduled control event came due.
    Control(C),
    /// The event queue is exhausted.
    Idle,
}

/// A hosted node plus its deterministic RNG stream, colocated in one
/// slab slot so event dispatch touches a single entry.
struct Hosted<B> {
    node: B,
    rng: StdRng,
}

/// Reusable per-event scratch buffers (the backing store of [`Ctx`]).
struct BufferPool<M, T, C> {
    outbox: Vec<(Addr, M, Duration)>,
    timers: Vec<(Duration, T)>,
    controls: Vec<C>,
}

impl<M, T, C> Default for BufferPool<M, T, C> {
    fn default() -> Self {
        BufferPool {
            outbox: Vec::new(),
            timers: Vec::new(),
            controls: Vec::new(),
        }
    }
}

/// One partition of the world: the nodes in a contiguous ID range plus
/// the event queue for everything addressed to them.
struct Shard<B: NodeBehavior> {
    nodes: NodeSlab<Hosted<B>>,
    queue: EventQueue<Event<B::Msg, B::Timer, B::Control>>,
}

/// The simulated network world, partitioned into one or more shards.
pub struct World<B: NodeBehavior, L: LatencyModel> {
    shards: Vec<Shard<B>>,
    map: ShardMap,
    bus: CrossShardBus<B::Msg>,
    window: LookaheadWindow,
    /// Global insertion counter: the second half of every event's
    /// `(time, seq)` ordering key, shared by all shards.
    seq: u64,
    /// Timestamp of the last event popped from any shard.
    now: SimTime,
    pool: BufferPool<B::Msg, B::Timer, B::Control>,
    latency: L,
    ledger: BandwidthLedger,
    master_seed: u64,
    transport_rng: StdRng,
    dropped_to_dead: u64,
}

impl<B: NodeBehavior, L: LatencyModel> World<B, L> {
    /// New single-shard world with the given latency model and master
    /// seed, on the default event-queue backend.
    #[must_use]
    pub fn new(latency: L, master_seed: u64) -> Self {
        Self::with_scheduler(latency, master_seed, SchedulerKind::default())
    }

    /// New single-shard world on an explicit event-queue backend. All
    /// backends are observationally identical (the
    /// [`octopus_sim::Scheduler`] determinism contract); they differ
    /// only in speed.
    #[must_use]
    pub fn with_scheduler(latency: L, master_seed: u64, scheduler: SchedulerKind) -> Self {
        Self::with_shards(latency, master_seed, scheduler, 1)
    }

    /// New world partitioned into `shards` contiguous ID-range shards
    /// (clamped to at least 1), each with its own node slab and event
    /// queue on the chosen backend.
    ///
    /// Sharding is observationally identical too: a fixed-seed run
    /// produces byte-identical results at every shard count, because
    /// events execute in one global `(time, seq)` order regardless of
    /// which shard's queue holds them.
    #[must_use]
    pub fn with_shards(
        latency: L,
        master_seed: u64,
        scheduler: SchedulerKind,
        shards: usize,
    ) -> Self {
        let map = ShardMap::new(shards);
        let lookahead = latency.min_latency();
        World {
            shards: (0..map.count())
                .map(|_| Shard {
                    nodes: NodeSlab::new(),
                    queue: EventQueue::with_scheduler(scheduler),
                })
                .collect(),
            bus: CrossShardBus::new(map.count()),
            map,
            window: LookaheadWindow::new(lookahead),
            seq: 0,
            now: SimTime::ZERO,
            pool: BufferPool::default(),
            latency,
            ledger: BandwidthLedger::new(),
            master_seed,
            transport_rng: derive_rng(master_seed, b"transport", 0),
            dropped_to_dead: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards the ID space is partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.map.count()
    }

    /// The ID-range partition in use.
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// The bandwidth ledger.
    #[must_use]
    pub fn ledger(&self) -> &BandwidthLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (e.g. to reset after warm-up).
    pub fn ledger_mut(&mut self) -> &mut BandwidthLedger {
        &mut self.ledger
    }

    /// Messages dropped because their destination had left the overlay.
    #[must_use]
    pub fn dropped_to_dead(&self) -> u64 {
        self.dropped_to_dead
    }

    /// Number of live nodes across all shards.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.len()).sum()
    }

    /// Is `addr` currently alive in the world?
    #[must_use]
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.shard(addr).nodes.contains(addr)
    }

    /// Iterate over live node addresses (deterministic shard-major,
    /// slot-minor order).
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.shards.iter().flat_map(|s| s.nodes.addrs())
    }

    /// Immutable access to a node's state (driver-side measurement).
    #[must_use]
    pub fn node(&self, addr: Addr) -> Option<&B> {
        self.shard(addr).nodes.get(addr).map(|h| &h.node)
    }

    /// Mutable access to a node's state (driver-side mutation between
    /// steps; protocol code should use messages instead).
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut B> {
        self.shard_mut(addr)
            .nodes
            .get_mut(addr)
            .map(|h| &mut h.node)
    }

    /// Insert a node into its ID range's shard and run its `on_start`
    /// hook.
    pub fn insert_node(&mut self, addr: Addr, node: B) {
        let rng = derive_rng(self.master_seed, b"node", addr.0);
        let mut hosted = Hosted { node, rng };
        self.dispatch(addr, &mut hosted, |node, ctx| node.on_start(ctx));
        self.shard_mut(addr).nodes.insert(addr, hosted);
    }

    /// Remove a node (churn). Its pending timers and in-flight messages
    /// to it are silently dropped, as for a crashed peer.
    pub fn remove_node(&mut self, addr: Addr) -> Option<B> {
        self.shard_mut(addr).nodes.remove(addr).map(|h| h.node)
    }

    /// Driver-side: schedule a control event at absolute time `at`.
    ///
    /// Control events live on shard 0's queue (the driver lane), but —
    /// like every event — pop in global `(time, seq)` order.
    pub fn schedule_control(&mut self, at: SimTime, control: B::Control) {
        let seq = self.next_seq();
        self.shards[0]
            .queue
            .push_with_seq(at, seq, Event::Control(control));
    }

    /// Driver-side: inject a message from outside the overlay (used by
    /// test harnesses; latency still applies).
    pub fn inject_message(&mut self, from: Addr, to: Addr, msg: B::Msg) {
        self.route(from, to, msg, Duration::ZERO);
    }

    /// Driver-side: invoke a closure against one node with a full
    /// handler context — the entry point for "the application asks the
    /// node to start a lookup".
    pub fn with_node<F>(&mut self, addr: Addr, f: F) -> bool
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let Some((key, mut hosted)) = self.shard_mut(addr).nodes.take(addr) else {
            return false;
        };
        self.dispatch(addr, &mut hosted, f);
        self.shard_mut(addr).nodes.restore(addr, key, hosted);
        true
    }

    fn shard(&self, addr: Addr) -> &Shard<B> {
        &self.shards[self.map.shard_of(addr)]
    }

    fn shard_mut(&mut self, addr: Addr) -> &mut Shard<B> {
        &mut self.shards[self.map.shard_of(addr)]
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Run `f` against `hosted` with a pooled context, then flush what
    /// it produced (messages, timers, controls) into the queues.
    fn dispatch<F>(&mut self, addr: Addr, hosted: &mut Hosted<B>, f: F)
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let controls = self.dispatch_buffered(addr, hosted, f);
        if let Some(mut controls) = controls {
            let now = self.now;
            for c in controls.drain(..) {
                let seq = self.next_seq();
                self.shards[0]
                    .queue
                    .push_with_seq(now, seq, Event::Control(c));
            }
            self.pool.controls = controls;
        }
    }

    /// Core of event dispatch: run `f`, flush messages and timers, and
    /// hand back the control buffer — `None` when no controls were
    /// emitted (the pooled buffer was returned untouched), `Some(vec)`
    /// when the caller now owns the drained-or-forwarded buffer.
    fn dispatch_buffered<F>(
        &mut self,
        addr: Addr,
        hosted: &mut Hosted<B>,
        f: F,
    ) -> Option<Vec<B::Control>>
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let mut outbox = std::mem::take(&mut self.pool.outbox);
        let mut timers = std::mem::take(&mut self.pool.timers);
        let mut controls = std::mem::take(&mut self.pool.controls);
        debug_assert!(outbox.is_empty() && timers.is_empty() && controls.is_empty());
        let mut ctx = Ctx {
            now: self.now,
            self_addr: addr,
            rng: &mut hosted.rng,
            outbox: &mut outbox,
            timers: &mut timers,
            controls: &mut controls,
        };
        f(&mut hosted.node, &mut ctx);
        for (to, msg, extra) in outbox.drain(..) {
            self.route(addr, to, msg, extra);
        }
        let now = self.now;
        let sh = self.map.shard_of(addr);
        for (delay, timer) in timers.drain(..) {
            let seq = self.next_seq();
            self.shards[sh].queue.push_with_seq(
                now + delay,
                seq,
                Event::Timer { node: addr, timer },
            );
        }
        self.pool.outbox = outbox;
        self.pool.timers = timers;
        if controls.is_empty() {
            self.pool.controls = controls;
            None
        } else {
            Some(controls)
        }
    }

    fn route(&mut self, from: Addr, to: Addr, msg: B::Msg, extra: Duration) {
        let bytes = msg.wire_bytes();
        self.ledger.record(from, to, bytes);
        let lat = self.latency.sample(from, to, &mut self.transport_rng);
        let at = self.now + extra + lat;
        let seq = self.next_seq();
        let dest = self.map.shard_of(to);
        if dest == self.map.shard_of(from) {
            self.shards[dest]
                .queue
                .push_with_seq(at, seq, Event::Deliver { from, to, msg });
        } else {
            // Conservative-sync soundness: the window's end never
            // exceeds now + lookahead, and lat >= lookahead, so a
            // parked message is always due at or beyond the window. A
            // violation means the latency model's min_latency() lied
            // about its floor — fail loudly rather than let release
            // builds silently produce shard-count-dependent results.
            assert!(
                at >= self.window.end(),
                "cross-shard message due inside the lookahead window: \
                 the latency model's min_latency() exceeds an actual sample"
            );
            self.bus.park(
                dest,
                Envelope {
                    at,
                    seq,
                    from,
                    to,
                    msg,
                },
            );
        }
    }

    /// Barrier: move every parked cross-shard message into its
    /// destination shard's queue, keyed by its send-time `(time, seq)`.
    fn flush_bus(&mut self) {
        let shards = &mut self.shards;
        self.bus.flush(|dest, e| {
            shards[dest].queue.push_with_seq(
                e.at,
                e.seq,
                Event::Deliver {
                    from: e.from,
                    to: e.to,
                    msg: e.msg,
                },
            );
        });
    }

    /// Pop the globally earliest event across all shards, flushing the
    /// bus at lookahead barriers so parked messages become visible
    /// before they are due.
    fn pop_due(&mut self) -> Option<(SimTime, EventOf<B>)> {
        loop {
            let head = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.queue.peek_key().map(|k| (k, i)))
                .min();
            let Some(((t, _), idx)) = head else {
                if self.bus.is_empty() {
                    return None;
                }
                self.flush_bus();
                continue;
            };
            if !self.bus.is_empty() && !self.window.covers(t) {
                // barrier: in-flight messages could be due at or before
                // the window's edge — deliver them before advancing
                self.flush_bus();
                continue;
            }
            if self.bus.is_empty() {
                self.window.open(t);
            }
            let popped = self.shards[idx].queue.pop();
            debug_assert!(popped.is_some(), "peeked head exists");
            let (at, ev) = popped?;
            self.now = at;
            return Some((at, ev));
        }
    }

    /// The timestamp of the next pending event (queued or in flight on
    /// the bus), if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        let queued = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
        match (queued, self.bus.earliest()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Process the next event. Returns what happened so the driver can
    /// react to control events.
    pub fn step(&mut self) -> StepOutcome<B::Control> {
        loop {
            let Some((_, ev)) = self.pop_due() else {
                return StepOutcome::Idle;
            };
            match ev {
                Event::Control(c) => return StepOutcome::Control(c),
                Event::Deliver { from, to, msg } => {
                    let sh = self.map.shard_of(to);
                    let Some((key, mut hosted)) = self.shards[sh].nodes.take(to) else {
                        self.dropped_to_dead += 1;
                        continue;
                    };
                    let controls = self.dispatch_buffered(to, &mut hosted, |node, ctx| {
                        node.on_message(ctx, from, msg);
                    });
                    self.shards[sh].nodes.restore(to, key, hosted);
                    if let Some(controls) = controls {
                        return StepOutcome::Protocol(controls);
                    }
                }
                Event::Timer { node: addr, timer } => {
                    let sh = self.map.shard_of(addr);
                    let Some((key, mut hosted)) = self.shards[sh].nodes.take(addr) else {
                        continue; // timer of a dead node
                    };
                    let controls = self.dispatch_buffered(addr, &mut hosted, |node, ctx| {
                        node.on_timer(ctx, timer);
                    });
                    self.shards[sh].nodes.restore(addr, key, hosted);
                    if let Some(controls) = controls {
                        return StepOutcome::Protocol(controls);
                    }
                }
            }
        }
    }

    /// Run the protocol until `deadline` or queue exhaustion, returning
    /// emitted control events tagged with their emission time.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<(SimTime, B::Control)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|t| t <= deadline) {
            match self.step() {
                StepOutcome::Idle => break,
                StepOutcome::Control(c) => out.push((self.now(), c)),
                StepOutcome::Protocol(cs) => out.extend(cs.into_iter().map(|c| (self.now(), c))),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    /// A ping-pong node: replies to Ping with Pong, counts pongs.
    struct PingPong {
        pongs: u32,
        peer: Option<Addr>,
    }

    #[derive(Debug, PartialEq)]
    enum Pm {
        Ping,
        Pong,
    }

    impl WireMsg for Pm {
        fn wire_bytes(&self) -> u32 {
            8
        }
    }

    impl NodeBehavior for PingPong {
        type Msg = Pm;
        type Timer = ();
        type Control = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Pm, (), u32>) {
            if let Some(p) = self.peer {
                ctx.send(p, Pm::Ping);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Pm, (), u32>, from: Addr, msg: Pm) {
            match msg {
                Pm::Ping => ctx.send(from, Pm::Pong),
                Pm::Pong => {
                    self.pongs += 1;
                    ctx.emit(self.pongs);
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Pm, (), u32>, _t: ()) {}
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1, 1);
        // RTT with 10ms one-way latency
        assert_eq!(ctrl[0].0, SimTime::from_millis(20));
        assert_eq!(w.node(NodeId(1)).unwrap().pongs, 1);
    }

    #[test]
    fn message_to_dead_node_dropped() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert!(ctrl.is_empty());
        assert_eq!(w.dropped_to_dead(), 1);
    }

    #[test]
    fn bandwidth_accounted() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        w.run_until(SimTime::from_secs(1));
        // two 8-byte messages + 28B UDP headers each
        assert_eq!(w.ledger().total_bytes(), 2 * (8 + 28));
    }

    #[test]
    fn control_events_scheduled_by_driver() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.schedule_control(SimTime::from_secs(5), 42);
        let ctrl = w.run_until(SimTime::from_secs(10));
        assert_eq!(ctrl, vec![(SimTime::from_secs(5), 42)]);
    }

    #[test]
    fn with_node_drives_protocol() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        assert!(w.with_node(NodeId(1), |_n, ctx| ctx.send(NodeId(2), Pm::Ping)));
        assert!(!w.with_node(NodeId(9), |_n, _ctx| {}));
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
    }

    #[test]
    fn remove_node_kills_timers_silently() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.with_node(NodeId(1), |_n, ctx| {
            ctx.set_timer(Duration::from_secs(1), ())
        });
        w.remove_node(NodeId(1));
        let ctrl = w.run_until(SimTime::from_secs(5));
        assert!(ctrl.is_empty());
    }

    #[test]
    fn identical_on_both_scheduler_backends() {
        let run = |kind: SchedulerKind| {
            let mut w: World<PingPong, _> =
                World::with_scheduler(ConstantLatency(Duration::from_millis(7)), 3, kind);
            w.insert_node(
                NodeId(2),
                PingPong {
                    pongs: 0,
                    peer: Some(NodeId(1)),
                },
            );
            w.insert_node(
                NodeId(1),
                PingPong {
                    pongs: 0,
                    peer: Some(NodeId(2)),
                },
            );
            w.schedule_control(SimTime::from_millis(9), 7);
            w.run_until(SimTime::from_secs(1))
        };
        assert_eq!(
            run(SchedulerKind::BinaryHeap),
            run(SchedulerKind::TimingWheel)
        );
    }

    /// Fixed latency that *reports* no guaranteed floor (inherits the
    /// default `min_latency` of zero), forcing the degenerate
    /// flush-before-every-pop path of a zero-lookahead shard set.
    struct NoFloor(Duration);

    impl LatencyModel for NoFloor {
        fn sample<R: rand::Rng + ?Sized>(&self, _: Addr, _: Addr, _: &mut R) -> Duration {
            self.0
        }
        fn base(&self, _: Addr, _: Addr) -> Duration {
            self.0
        }
    }

    /// A gossip workload whose control trace captures the full event
    /// order: every pong emits the receiver's running count.
    fn gossip_trace<L: LatencyModel>(shards: usize, latency: L) -> Vec<(SimTime, u32)> {
        // ids spread across the whole u64 space so every shard count
        // actually splits them
        let ids: Vec<Addr> = (0..16)
            .map(|i| NodeId((i as u64) << 60 | (i as u64 * 0x9E37_79B9)))
            .collect();
        let mut w: World<PingPong, _> =
            World::with_shards(latency, 11, SchedulerKind::default(), shards);
        assert_eq!(w.shard_count(), shards.max(1));
        for (i, &id) in ids.iter().enumerate() {
            w.insert_node(
                id,
                PingPong {
                    pongs: 0,
                    peer: Some(ids[(i + 5) % ids.len()]),
                },
            );
        }
        // keep the network busy: every pong re-pings a different peer
        let mut out = Vec::new();
        let deadline = SimTime::from_millis(400);
        while w.peek_time().is_some_and(|t| t <= deadline) {
            match w.step() {
                StepOutcome::Idle => break,
                StepOutcome::Control(c) => out.push((w.now(), c)),
                StepOutcome::Protocol(cs) => {
                    out.extend(cs.into_iter().map(|c| (w.now(), c)));
                    // ping a rotating peer to generate cross-shard load
                    let k = out.len() % ids.len();
                    w.with_node(ids[k], |_n, ctx| {
                        ctx.send(ids[(k + 7) % 16], Pm::Ping);
                    });
                }
            }
        }
        assert_eq!(w.node_count(), 16);
        out
    }

    #[test]
    fn shard_count_never_changes_results() {
        let one = gossip_trace(1, ConstantLatency(Duration::from_millis(7)));
        assert!(one.len() > 40, "workload must generate traffic");
        for shards in [2usize, 3, 4, 8] {
            assert_eq!(
                gossip_trace(shards, ConstantLatency(Duration::from_millis(7))),
                one,
                "{shards}-shard run diverged from the single-queue engine"
            );
        }
    }

    #[test]
    fn zero_lookahead_still_deterministic() {
        // a model with no guaranteed floor gives a zero lookahead: the
        // window covers nothing and the engine degenerates to flushing
        // the bus before every pop — slower, never wrong
        let one = gossip_trace(1, NoFloor(Duration::from_millis(7)));
        assert!(!one.is_empty());
        for shards in [2usize, 4] {
            assert_eq!(gossip_trace(shards, NoFloor(Duration::from_millis(7))), one);
        }
    }

    #[test]
    fn cross_shard_messages_deliver_through_the_bus() {
        // two nodes at opposite ends of the ID space: with 2 shards the
        // ping and pong must both cross the bus
        let mut w: World<PingPong, _> = World::with_shards(
            ConstantLatency(Duration::from_millis(10)),
            1,
            SchedulerKind::default(),
            2,
        );
        let (a, b) = (NodeId(1), NodeId(u64::MAX - 1));
        assert_ne!(w.shard_map().shard_of(a), w.shard_map().shard_of(b));
        w.insert_node(
            b,
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            a,
            PingPong {
                pongs: 0,
                peer: Some(b),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl, vec![(SimTime::from_millis(20), 1)]);
        assert_eq!(w.node(a).unwrap().pongs, 1);
    }

    #[test]
    fn churn_works_across_shards() {
        let mut w: World<PingPong, _> = World::with_shards(
            ConstantLatency(Duration::from_millis(10)),
            1,
            SchedulerKind::default(),
            4,
        );
        let far = NodeId(u64::MAX / 2);
        w.insert_node(
            far,
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        assert!(w.is_alive(far));
        assert_eq!(w.node_count(), 1);
        // a message racing a removal is dropped, not misdelivered
        w.insert_node(
            NodeId(3),
            PingPong {
                pongs: 0,
                peer: Some(far),
            },
        );
        w.remove_node(far);
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert!(ctrl.is_empty());
        assert_eq!(w.dropped_to_dead(), 1);
        assert_eq!(w.node_count(), 1);
    }
}
