//! A deterministic message-passing world over the event queue.
//!
//! Protocol nodes implement [`NodeBehavior`]; the [`World`] owns them,
//! routes typed messages through the latency model, delivers timers, and
//! accounts bandwidth. Control events let a driver (e.g. the security
//! simulator in `octopus-core::simnet`) interleave churn and measurement
//! with protocol execution without borrowing conflicts: [`World::step`]
//! returns control events to the caller instead of invoking callbacks.
//!
//! Storage and dispatch are built for scale: nodes (with their RNG
//! streams) live in a generational [`NodeSlab`], so delivering an event
//! costs one address lookup plus an `O(1)` slot take/restore instead of
//! four hash-map operations, and the per-event outbox/timer/control
//! buffers a [`Ctx`] writes into are pooled and reused instead of
//! allocated per event.

use octopus_id::NodeId;
use octopus_sim::{derive_rng, Duration, EventQueue, SchedulerKind, SimTime};
use rand::rngs::StdRng;

use crate::latency::LatencyModel;
use crate::slab::NodeSlab;
use crate::wire::{BandwidthLedger, WireMsg};

/// Overlay address. Octopus identifies peers by ring id; the simulated
/// transport maps ids directly to "IP addresses".
pub type Addr = NodeId;

/// A protocol node hosted in a [`World`].
pub trait NodeBehavior {
    /// Message type exchanged between nodes.
    type Msg: WireMsg;
    /// Per-node timer kinds.
    type Timer;
    /// Control events surfaced to the simulation driver.
    type Control;

    /// Handle a delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>,
        from: Addr,
        msg: Self::Msg,
    );

    /// Handle an expired timer.
    fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>,
        timer: Self::Timer,
    );

    /// Called once when the node is inserted into the world (schedule
    /// initial timers here).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>) {
        let _ = ctx;
    }
}

/// Handler context: lets a node send messages, set timers, emit control
/// events, and draw randomness — all without direct access to the world.
///
/// The buffers behind a `Ctx` are owned by the world's buffer pool and
/// reused across events; handlers only ever see them empty.
pub struct Ctx<'a, M, T, C> {
    now: SimTime,
    self_addr: Addr,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(Addr, M, Duration)>,
    timers: &'a mut Vec<(Duration, T)>,
    controls: &'a mut Vec<C>,
}

impl<M, T, C> Ctx<'_, M, T, C> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's own address.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.self_addr
    }

    /// Send `msg` to `to` (latency sampled by the world).
    pub fn send(&mut self, to: Addr, msg: M) {
        self.outbox.push((to, msg, Duration::ZERO));
    }

    /// Send with an *additional* artificial delay before transmission —
    /// used by the middle relay B, which delays forwarded messages by a
    /// random amount to defeat timing analysis (paper §4.7).
    pub fn send_delayed(&mut self, to: Addr, msg: M, extra: Duration) {
        self.outbox.push((to, msg, extra));
    }

    /// Arm a timer to fire after `delay`.
    pub fn set_timer(&mut self, delay: Duration, timer: T) {
        self.timers.push((delay, timer));
    }

    /// Emit a control event to the simulation driver.
    pub fn emit(&mut self, control: C) {
        self.controls.push(control);
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

enum Event<M, T, C> {
    Deliver { from: Addr, to: Addr, msg: M },
    Timer { node: Addr, timer: T },
    Control(C),
}

/// What a single [`World::step`] produced.
pub enum StepOutcome<C> {
    /// A protocol event (message or timer) was processed; control events
    /// it emitted are included.
    Protocol(Vec<C>),
    /// A driver-scheduled control event came due.
    Control(C),
    /// The event queue is exhausted.
    Idle,
}

/// A hosted node plus its deterministic RNG stream, colocated in one
/// slab slot so event dispatch touches a single entry.
struct Hosted<B> {
    node: B,
    rng: StdRng,
}

/// Reusable per-event scratch buffers (the backing store of [`Ctx`]).
struct BufferPool<M, T, C> {
    outbox: Vec<(Addr, M, Duration)>,
    timers: Vec<(Duration, T)>,
    controls: Vec<C>,
}

impl<M, T, C> Default for BufferPool<M, T, C> {
    fn default() -> Self {
        BufferPool {
            outbox: Vec::new(),
            timers: Vec::new(),
            controls: Vec::new(),
        }
    }
}

/// The simulated network world.
pub struct World<B: NodeBehavior, L: LatencyModel> {
    nodes: NodeSlab<Hosted<B>>,
    queue: EventQueue<Event<B::Msg, B::Timer, B::Control>>,
    pool: BufferPool<B::Msg, B::Timer, B::Control>,
    latency: L,
    ledger: BandwidthLedger,
    master_seed: u64,
    transport_rng: StdRng,
    dropped_to_dead: u64,
}

impl<B: NodeBehavior, L: LatencyModel> World<B, L> {
    /// New world with the given latency model and master seed, on the
    /// default event-queue backend.
    #[must_use]
    pub fn new(latency: L, master_seed: u64) -> Self {
        Self::with_scheduler(latency, master_seed, SchedulerKind::default())
    }

    /// New world on an explicit event-queue backend. All backends are
    /// observationally identical (the [`octopus_sim::Scheduler`]
    /// determinism contract); they differ only in speed.
    #[must_use]
    pub fn with_scheduler(latency: L, master_seed: u64, scheduler: SchedulerKind) -> Self {
        World {
            nodes: NodeSlab::new(),
            queue: EventQueue::with_scheduler(scheduler),
            pool: BufferPool::default(),
            latency,
            ledger: BandwidthLedger::new(),
            master_seed,
            transport_rng: derive_rng(master_seed, b"transport", 0),
            dropped_to_dead: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The bandwidth ledger.
    #[must_use]
    pub fn ledger(&self) -> &BandwidthLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (e.g. to reset after warm-up).
    pub fn ledger_mut(&mut self) -> &mut BandwidthLedger {
        &mut self.ledger
    }

    /// Messages dropped because their destination had left the overlay.
    #[must_use]
    pub fn dropped_to_dead(&self) -> u64 {
        self.dropped_to_dead
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Is `addr` currently alive in the world?
    #[must_use]
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.nodes.contains(addr)
    }

    /// Iterate over live node addresses (deterministic slot order).
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.nodes.addrs()
    }

    /// Immutable access to a node's state (driver-side measurement).
    #[must_use]
    pub fn node(&self, addr: Addr) -> Option<&B> {
        self.nodes.get(addr).map(|h| &h.node)
    }

    /// Mutable access to a node's state (driver-side mutation between
    /// steps; protocol code should use messages instead).
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut B> {
        self.nodes.get_mut(addr).map(|h| &mut h.node)
    }

    /// Insert a node and run its `on_start` hook.
    pub fn insert_node(&mut self, addr: Addr, node: B) {
        let rng = derive_rng(self.master_seed, b"node", addr.0);
        let mut hosted = Hosted { node, rng };
        self.dispatch(addr, &mut hosted, |node, ctx| node.on_start(ctx));
        self.nodes.insert(addr, hosted);
    }

    /// Remove a node (churn). Its pending timers and in-flight messages
    /// to it are silently dropped, as for a crashed peer.
    pub fn remove_node(&mut self, addr: Addr) -> Option<B> {
        self.nodes.remove(addr).map(|h| h.node)
    }

    /// Driver-side: schedule a control event at absolute time `at`.
    pub fn schedule_control(&mut self, at: SimTime, control: B::Control) {
        self.queue.push(at, Event::Control(control));
    }

    /// Driver-side: inject a message from outside the overlay (used by
    /// test harnesses; latency still applies).
    pub fn inject_message(&mut self, from: Addr, to: Addr, msg: B::Msg) {
        self.route(from, to, msg, Duration::ZERO);
    }

    /// Driver-side: invoke a closure against one node with a full
    /// handler context — the entry point for "the application asks the
    /// node to start a lookup".
    pub fn with_node<F>(&mut self, addr: Addr, f: F) -> bool
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let Some((key, mut hosted)) = self.nodes.take(addr) else {
            return false;
        };
        self.dispatch(addr, &mut hosted, f);
        self.nodes.restore(addr, key, hosted);
        true
    }

    /// Run `f` against `hosted` with a pooled context, then flush what
    /// it produced (messages, timers, controls) into the queue.
    fn dispatch<F>(&mut self, addr: Addr, hosted: &mut Hosted<B>, f: F)
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let controls = self.dispatch_buffered(addr, hosted, f);
        if let Some(mut controls) = controls {
            let now = self.queue.now();
            for c in controls.drain(..) {
                self.queue.push(now, Event::Control(c));
            }
            self.pool.controls = controls;
        }
    }

    /// Core of event dispatch: run `f`, flush messages and timers, and
    /// hand back the control buffer — `None` when no controls were
    /// emitted (the pooled buffer was returned untouched), `Some(vec)`
    /// when the caller now owns the drained-or-forwarded buffer.
    fn dispatch_buffered<F>(
        &mut self,
        addr: Addr,
        hosted: &mut Hosted<B>,
        f: F,
    ) -> Option<Vec<B::Control>>
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let mut outbox = std::mem::take(&mut self.pool.outbox);
        let mut timers = std::mem::take(&mut self.pool.timers);
        let mut controls = std::mem::take(&mut self.pool.controls);
        debug_assert!(outbox.is_empty() && timers.is_empty() && controls.is_empty());
        let mut ctx = Ctx {
            now: self.queue.now(),
            self_addr: addr,
            rng: &mut hosted.rng,
            outbox: &mut outbox,
            timers: &mut timers,
            controls: &mut controls,
        };
        f(&mut hosted.node, &mut ctx);
        for (to, msg, extra) in outbox.drain(..) {
            self.route(addr, to, msg, extra);
        }
        let now = self.queue.now();
        for (delay, timer) in timers.drain(..) {
            self.queue
                .push(now + delay, Event::Timer { node: addr, timer });
        }
        self.pool.outbox = outbox;
        self.pool.timers = timers;
        if controls.is_empty() {
            self.pool.controls = controls;
            None
        } else {
            Some(controls)
        }
    }

    fn route(&mut self, from: Addr, to: Addr, msg: B::Msg, extra: Duration) {
        let bytes = msg.wire_bytes();
        self.ledger.record(from, to, bytes);
        let lat = self.latency.sample(from, to, &mut self.transport_rng);
        let at = self.queue.now() + extra + lat;
        self.queue.push(at, Event::Deliver { from, to, msg });
    }

    /// Process the next event. Returns what happened so the driver can
    /// react to control events.
    pub fn step(&mut self) -> StepOutcome<B::Control> {
        loop {
            let Some((_, ev)) = self.queue.pop() else {
                return StepOutcome::Idle;
            };
            match ev {
                Event::Control(c) => return StepOutcome::Control(c),
                Event::Deliver { from, to, msg } => {
                    let Some((key, mut hosted)) = self.nodes.take(to) else {
                        self.dropped_to_dead += 1;
                        continue;
                    };
                    let controls = self.dispatch_buffered(to, &mut hosted, |node, ctx| {
                        node.on_message(ctx, from, msg);
                    });
                    self.nodes.restore(to, key, hosted);
                    if let Some(controls) = controls {
                        return StepOutcome::Protocol(controls);
                    }
                }
                Event::Timer { node: addr, timer } => {
                    let Some((key, mut hosted)) = self.nodes.take(addr) else {
                        continue; // timer of a dead node
                    };
                    let controls = self.dispatch_buffered(addr, &mut hosted, |node, ctx| {
                        node.on_timer(ctx, timer);
                    });
                    self.nodes.restore(addr, key, hosted);
                    if let Some(controls) = controls {
                        return StepOutcome::Protocol(controls);
                    }
                }
            }
        }
    }

    /// Run the protocol until `deadline` or queue exhaustion, returning
    /// emitted control events tagged with their emission time.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<(SimTime, B::Control)> {
        let mut out = Vec::new();
        while self.queue.peek_time().is_some_and(|t| t <= deadline) {
            match self.step() {
                StepOutcome::Idle => break,
                StepOutcome::Control(c) => out.push((self.now(), c)),
                StepOutcome::Protocol(cs) => out.extend(cs.into_iter().map(|c| (self.now(), c))),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    /// A ping-pong node: replies to Ping with Pong, counts pongs.
    struct PingPong {
        pongs: u32,
        peer: Option<Addr>,
    }

    #[derive(Debug, PartialEq)]
    enum Pm {
        Ping,
        Pong,
    }

    impl WireMsg for Pm {
        fn wire_bytes(&self) -> u32 {
            8
        }
    }

    impl NodeBehavior for PingPong {
        type Msg = Pm;
        type Timer = ();
        type Control = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Pm, (), u32>) {
            if let Some(p) = self.peer {
                ctx.send(p, Pm::Ping);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Pm, (), u32>, from: Addr, msg: Pm) {
            match msg {
                Pm::Ping => ctx.send(from, Pm::Pong),
                Pm::Pong => {
                    self.pongs += 1;
                    ctx.emit(self.pongs);
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Pm, (), u32>, _t: ()) {}
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1, 1);
        // RTT with 10ms one-way latency
        assert_eq!(ctrl[0].0, SimTime::from_millis(20));
        assert_eq!(w.node(NodeId(1)).unwrap().pongs, 1);
    }

    #[test]
    fn message_to_dead_node_dropped() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert!(ctrl.is_empty());
        assert_eq!(w.dropped_to_dead(), 1);
    }

    #[test]
    fn bandwidth_accounted() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        w.run_until(SimTime::from_secs(1));
        // two 8-byte messages + 28B UDP headers each
        assert_eq!(w.ledger().total_bytes(), 2 * (8 + 28));
    }

    #[test]
    fn control_events_scheduled_by_driver() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.schedule_control(SimTime::from_secs(5), 42);
        let ctrl = w.run_until(SimTime::from_secs(10));
        assert_eq!(ctrl, vec![(SimTime::from_secs(5), 42)]);
    }

    #[test]
    fn with_node_drives_protocol() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        assert!(w.with_node(NodeId(1), |_n, ctx| ctx.send(NodeId(2), Pm::Ping)));
        assert!(!w.with_node(NodeId(9), |_n, _ctx| {}));
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
    }

    #[test]
    fn remove_node_kills_timers_silently() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.with_node(NodeId(1), |_n, ctx| {
            ctx.set_timer(Duration::from_secs(1), ())
        });
        w.remove_node(NodeId(1));
        let ctrl = w.run_until(SimTime::from_secs(5));
        assert!(ctrl.is_empty());
    }

    #[test]
    fn identical_on_both_scheduler_backends() {
        let run = |kind: SchedulerKind| {
            let mut w: World<PingPong, _> =
                World::with_scheduler(ConstantLatency(Duration::from_millis(7)), 3, kind);
            w.insert_node(
                NodeId(2),
                PingPong {
                    pongs: 0,
                    peer: Some(NodeId(1)),
                },
            );
            w.insert_node(
                NodeId(1),
                PingPong {
                    pongs: 0,
                    peer: Some(NodeId(2)),
                },
            );
            w.schedule_control(SimTime::from_millis(9), 7);
            w.run_until(SimTime::from_secs(1))
        };
        assert_eq!(
            run(SchedulerKind::BinaryHeap),
            run(SchedulerKind::TimingWheel)
        );
    }
}
