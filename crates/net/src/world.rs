//! A deterministic message-passing world over sharded event queues.
//!
//! Protocol nodes implement [`NodeBehavior`]; the [`World`] owns them,
//! routes typed messages through the latency model, delivers timers, and
//! accounts bandwidth. Control events let a driver (e.g. the security
//! simulator in `octopus-core::simnet`) interleave churn and measurement
//! with protocol execution without borrowing conflicts: the world hands
//! control events back to the caller instead of invoking callbacks.
//!
//! Storage and dispatch are built for scale. The ring is partitioned
//! into contiguous ID ranges ([`ShardMap`]), each owned
//! by a shard with its own generational [`NodeSlab`] (nodes colocated
//! with their RNG streams and event counters, `O(1)` slot take/restore
//! dispatch), its own event queue, its own pooled [`Ctx`] scratch
//! buffers, and its own slice of the bandwidth ledger — a shard shares
//! *nothing* mutable with its siblings, which is what lets
//! [`World::run_window`] execute shard batches on the persistent
//! worker pool ([`crate::pool`]).
//!
//! Sharding never changes results. Every event carries a
//! `(time, key)` ordering key whose tie-break packs
//! `(lane, origin, counter)`: the address of the node that created the
//! event plus that node's own monotone counter (driver events ride a
//! lane that sorts first). Keys are therefore assignable with no
//! cross-shard coordination, yet identical for every shard count —
//! a node's counter advances with its own execution, which the
//! conservative synchronization below keeps shard-count-independent.
//! Per-message latency jitter is equally coordination-free: each send
//! draws from a stateless RNG stream keyed by `(sender, counter)`
//! instead of a shared sequential transport RNG, so the draw depends
//! only on *which* message is sent, never on global execution order.
//!
//! Cross-shard messages park in a [`CrossShardBus`]
//! and are flushed at conservative barriers bounded by the latency
//! model's guaranteed floor ([`LatencyModel::min_latency`], the
//! lookahead of [`octopus_sim::LookaheadWindow`]): a message sent at
//! `t` cannot arrive before `t + lookahead`, so parking it until the
//! window closes can never deliver it late.
//!
//! Two drive styles share all of that machinery:
//!
//! * [`World::step`] / [`World::run_until`] — the classic sequential
//!   engine: pop the globally smallest `(time, key)` across all shard
//!   queues, one event at a time.
//! * [`World::run_window`] — windowed execution: open a lookahead
//!   window, run *every* shard's in-window batch (fanned across the
//!   persistent worker pool when [`World::set_parallel`] is on), then
//!   merge envelopes and emitted control events by key at the barrier.
//!   Sequential and parallel windows are byte-identical by
//!   construction — threads change wall-clock time, never state.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use octopus_sim::{
    derive_rng, split_seed, Duration, EventQueue, LookaheadWindow, SchedulerKind, SimTime,
};
use rand::rngs::StdRng;

use crate::latency::LatencyModel;
use crate::pool::{self, ShardPool};
use crate::shard::{CrossShardBus, Envelope, ShardMap};
use crate::slab::NodeSlab;
use crate::wire::{BandwidthLedger, FrameHeader, WireMsg};

pub use crate::runtime::{Addr, Ctx, NodeBehavior, Runtime, Transport};

/// A protocol event on a shard queue (driver controls live on their own
/// world-level queue).
enum Event<M, T> {
    Deliver { from: Addr, to: Addr, msg: M },
    Timer { node: Addr, timer: T },
}

/// What a single [`World::step`] produced.
pub enum StepOutcome<C> {
    /// A protocol event (message or timer) was processed; control events
    /// it emitted are included.
    Protocol(Vec<C>),
    /// A driver-scheduled control event came due.
    Control(C),
    /// The event queue is exhausted (or, for
    /// [`World::run_until`], drained up to the deadline).
    Idle,
}

/// Lane bit of an event key: protocol-origin keys sort after driver
/// keys at a timestamp tie.
const PROTO_LANE: u128 = 1 << 127;

/// Pack a protocol event's tie-break key: the creating node's address
/// in the high bits, its per-node event counter in the low bits. Unique
/// (each counter value is consumed once per origin), totally ordered,
/// and — because a node's counter advances with its own deterministic
/// execution — identical for every shard count and execution mode.
fn proto_key(origin: Addr, counter: u64) -> u128 {
    debug_assert!(counter < (1 << 63), "per-origin event counter overflow");
    PROTO_LANE | (u128::from(origin.0) << 63) | u128::from(counter)
}

/// A hosted node plus its deterministic RNG stream and event counter,
/// colocated in one slab slot so event dispatch touches a single entry.
struct Hosted<B> {
    node: B,
    rng: StdRng,
    /// This node's monotone event counter: the tie-break source for
    /// every message, timer and control it creates, and the index of
    /// each sent message's stateless transport-jitter stream.
    counter: u64,
}

impl<B> Hosted<B> {
    fn next_counter(&mut self) -> u64 {
        let c = self.counter;
        self.counter += 1;
        c
    }
}

/// Reusable per-event scratch buffers (the backing store of [`Ctx`]).
struct BufferPool<M, T, C> {
    outbox: Vec<(Addr, M, Duration)>,
    timers: Vec<(Duration, T)>,
    controls: Vec<C>,
}

impl<M, T, C> Default for BufferPool<M, T, C> {
    fn default() -> Self {
        BufferPool {
            outbox: Vec::new(),
            timers: Vec::new(),
            controls: Vec::new(),
        }
    }
}

/// The read-only execution environment a shard batch runs against:
/// everything a shard needs besides its own state, shareable across
/// worker threads.
pub(crate) struct ShardCtx<'a, L> {
    pub(crate) map: ShardMap,
    pub(crate) latency: &'a L,
    pub(crate) master_seed: u64,
    /// The monotone lookahead bound every cross-shard send must respect
    /// (the park-assert obligation).
    pub(crate) window_end: SimTime,
    /// Exclusive execution bound of the current window batch.
    pub(crate) exec_end: SimTime,
}

impl<L> Clone for ShardCtx<'_, L> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<L> Copy for ShardCtx<'_, L> {}

/// One partition of the world: the nodes in a contiguous ID range, the
/// event queue for everything addressed to them, and every mutable
/// resource their execution touches — pooled buffers, a bandwidth
/// ledger slice, drop counters, outgoing envelope lanes and emitted
/// controls. Nothing here is shared with other shards, so a window
/// batch can run on its own thread.
pub(crate) struct Shard<B: NodeBehavior> {
    index: usize,
    nodes: NodeSlab<Hosted<B>>,
    queue: EventQueue<Event<B::Msg, B::Timer>>,
    pool: BufferPool<B::Msg, B::Timer, B::Control>,
    /// Bytes sent by this shard's nodes (merged on demand by
    /// [`World::ledger`]).
    ledger: BandwidthLedger,
    /// Messages dropped because their destination had left the overlay.
    dropped_to_dead: u64,
    /// Cross-shard envelopes produced by the current batch, one lane
    /// per destination shard; moved into the world bus at the barrier.
    outgoing: Vec<Vec<Envelope<B::Msg>>>,
    /// Controls emitted by the current batch, tagged with emission time
    /// and key; sorted into one stream at the barrier.
    emitted: Vec<(SimTime, u128, B::Control)>,
    /// Timestamp of the last event this shard executed.
    last_exec: SimTime,
}

impl<B: NodeBehavior> Shard<B> {
    /// Run `f` against `hosted` with a pooled context, then flush what
    /// it produced: messages are routed (local push or outgoing lane),
    /// timers land on this shard's own queue, controls accumulate in
    /// [`Shard::emitted`] with fresh keys from the node's counter.
    fn dispatch<L: LatencyModel, F>(
        &mut self,
        ctx: &ShardCtx<'_, L>,
        now: SimTime,
        addr: Addr,
        hosted: &mut Hosted<B>,
        f: F,
    ) where
        F: FnOnce(&mut B, &mut dyn Runtime<B::Msg, B::Timer, B::Control>),
    {
        let mut outbox = std::mem::take(&mut self.pool.outbox);
        let mut timers = std::mem::take(&mut self.pool.timers);
        let mut controls = std::mem::take(&mut self.pool.controls);
        debug_assert!(outbox.is_empty() && timers.is_empty() && controls.is_empty());
        let mut cx = Ctx::from_parts(
            now,
            addr,
            &mut hosted.rng,
            &mut outbox,
            &mut timers,
            &mut controls,
        );
        f(&mut hosted.node, &mut cx);
        for send in outbox.drain(..) {
            let counter = hosted.next_counter();
            self.route(ctx, now, (addr, counter), send);
        }
        for (delay, timer) in timers.drain(..) {
            let key = proto_key(addr, hosted.next_counter());
            self.queue
                .push_with_seq(now + delay, key, Event::Timer { node: addr, timer });
        }
        for c in controls.drain(..) {
            let key = proto_key(addr, hosted.next_counter());
            self.emitted.push((now, key, c));
        }
        self.pool.outbox = outbox;
        self.pool.timers = timers;
        self.pool.controls = controls;
    }

    /// Route one message: account bandwidth on this (the sender's)
    /// shard, draw the latency from the message's own stateless jitter
    /// stream, and either push locally or park on the outgoing lane.
    /// `origin` is the sender's `(address, counter)` key source, `send`
    /// the outbox entry `(to, msg, extra delay)`.
    fn route<L: LatencyModel>(
        &mut self,
        ctx: &ShardCtx<'_, L>,
        now: SimTime,
        origin: (Addr, u64),
        send: (Addr, B::Msg, Duration),
    ) {
        let (from, counter) = origin;
        let (to, msg, extra) = send;
        let bytes = msg.wire_bytes();
        self.ledger.record(from, to, bytes);
        // Stateless, order-independent draw: the stream is keyed by
        // (sender, per-sender counter), so the same message gets the
        // same latency no matter which thread routes it or what else
        // happened first.
        let mut rng = derive_rng(split_seed(ctx.master_seed, from.0), b"transport", counter);
        let lat = ctx.latency.sample(from, to, &mut rng);
        let at = now + extra + lat;
        let key = proto_key(from, counter);
        let dest = ctx.map.shard_of(to);
        if dest == self.index {
            self.queue
                .push_with_seq(at, key, Event::Deliver { from, to, msg });
        } else {
            // Conservative-sync soundness: the window's end never
            // exceeds now + lookahead, and lat >= lookahead, so a
            // parked message is always due at or beyond the window. A
            // violation means the latency model's min_latency() lied
            // about its floor — fail loudly rather than let release
            // builds silently produce shard-count-dependent results.
            assert!(
                at >= ctx.window_end,
                "cross-shard message due inside the lookahead window: \
                 the latency model's min_latency() exceeds an actual sample"
            );
            self.outgoing[dest].push(Envelope {
                at,
                seq: key,
                header: FrameHeader { from, to },
                msg,
            });
        }
    }

    /// Pop and execute this shard's head event (the caller has
    /// established it is due).
    fn run_one<L: LatencyModel>(&mut self, ctx: &ShardCtx<'_, L>) {
        let Some((at, ev)) = self.queue.pop() else {
            return;
        };
        self.exec_event(ctx, at, ev);
    }

    /// Execute one popped event against its hosted node.
    fn exec_event<L: LatencyModel>(
        &mut self,
        ctx: &ShardCtx<'_, L>,
        at: SimTime,
        ev: Event<B::Msg, B::Timer>,
    ) {
        self.last_exec = at;
        match ev {
            Event::Deliver { from, to, msg } => {
                let Some((key, mut hosted)) = self.nodes.take(to) else {
                    self.dropped_to_dead += 1;
                    return;
                };
                self.dispatch(ctx, at, to, &mut hosted, |node, cx| {
                    node.on_message(cx, from, msg);
                });
                self.nodes.restore(to, key, hosted);
            }
            Event::Timer { node: addr, timer } => {
                let Some((key, mut hosted)) = self.nodes.take(addr) else {
                    return; // timer of a dead node
                };
                self.dispatch(ctx, at, addr, &mut hosted, |node, cx| {
                    node.on_timer(cx, timer);
                });
                self.nodes.restore(addr, key, hosted);
            }
        }
    }

    /// Execute every event strictly before `ctx.exec_end`, in local key
    /// order — the per-shard body of one window. Timers landing inside
    /// the window are picked up; messages cannot land inside it (their
    /// latency floor carries them to `exec_end` or beyond).
    pub(crate) fn run_batch<L: LatencyModel>(&mut self, ctx: &ShardCtx<'_, L>) {
        while let Some((at, ev)) = self.queue.pop_before(ctx.exec_end) {
            self.exec_event(ctx, at, ev);
        }
    }
}

/// The simulated network world, partitioned into one or more shards.
pub struct World<B: NodeBehavior, L: LatencyModel> {
    shards: Vec<Shard<B>>,
    map: ShardMap,
    bus: CrossShardBus<B::Msg>,
    window: LookaheadWindow,
    /// Driver-scheduled and driver-queued control events, on their own
    /// lane so windows know the next driver interruption in `O(1)`.
    controls: EventQueue<B::Control>,
    /// The driver's own event counter (lane-0 keys sort before every
    /// protocol key at a timestamp tie).
    driver_seq: u64,
    /// Event counters of previously removed nodes: a rejoining address
    /// resumes where it left off, so keys from its new life can never
    /// collide with keys its old life left in flight.
    counter_floor: BTreeMap<Addr, u64>,
    /// Timestamp of the last event executed anywhere (monotone).
    now: SimTime,
    /// The latency model, shared with the worker pool's threads.
    latency: Arc<L>,
    master_seed: u64,
    /// Whether [`World::run_window`] fans shard batches across the
    /// persistent worker pool. A pure speed knob: results are
    /// byte-identical.
    parallel: bool,
    /// Worker-thread override for the pool (`0` = auto sizing, see
    /// [`pool::worker_count`]).
    worker_threads: usize,
    /// Resolved pool width for the current `worker_threads` setting
    /// (`0` = not yet resolved; resolved lazily so the env knob is read
    /// once, not per window).
    pool_workers: usize,
    /// The persistent shard worker pool, spawned on the first parallel
    /// window that has more than one effective worker and reused for
    /// every window after it.
    pool: Option<ShardPool<B, L>>,
}

impl<B: NodeBehavior, L: LatencyModel> World<B, L> {
    /// New single-shard world with the given latency model and master
    /// seed, on the default event-queue backend.
    #[must_use]
    pub fn new(latency: L, master_seed: u64) -> Self {
        Self::with_scheduler(latency, master_seed, SchedulerKind::default())
    }

    /// New single-shard world on an explicit event-queue backend. All
    /// backends are observationally identical (the
    /// [`octopus_sim::Scheduler`] determinism contract); they differ
    /// only in speed.
    #[must_use]
    pub fn with_scheduler(latency: L, master_seed: u64, scheduler: SchedulerKind) -> Self {
        Self::with_shards(latency, master_seed, scheduler, 1)
    }

    /// New world partitioned into `shards` contiguous ID-range shards
    /// (clamped to at least 1), each with its own node slab and event
    /// queue on the chosen backend.
    ///
    /// Sharding is observationally identical too: a fixed-seed run
    /// produces byte-identical results at every shard count, because
    /// event keys are derived from their *origin node* — not from any
    /// shard-dependent counter — and conservative synchronization keeps
    /// every node's execution order partition-independent.
    #[must_use]
    pub fn with_shards(
        latency: L,
        master_seed: u64,
        scheduler: SchedulerKind,
        shards: usize,
    ) -> Self {
        let map = ShardMap::new(shards);
        let lookahead = latency.min_latency();
        World {
            shards: (0..map.count())
                .map(|index| Shard {
                    index,
                    nodes: NodeSlab::new(),
                    queue: EventQueue::with_scheduler(scheduler),
                    pool: BufferPool::default(),
                    ledger: BandwidthLedger::new(),
                    dropped_to_dead: 0,
                    outgoing: (0..map.count()).map(|_| Vec::new()).collect(),
                    emitted: Vec::new(),
                    last_exec: SimTime::ZERO,
                })
                .collect(),
            bus: CrossShardBus::new(map.count()),
            map,
            window: LookaheadWindow::new(lookahead),
            controls: EventQueue::with_scheduler(scheduler),
            driver_seq: 0,
            counter_floor: BTreeMap::new(),
            now: SimTime::ZERO,
            latency: Arc::new(latency),
            master_seed,
            parallel: false,
            worker_threads: 0,
            pool_workers: 0,
            pool: None,
        }
    }

    /// Turn parallel window execution on or off (default off). Only
    /// [`World::run_window`] looks at this; with it on, shard batches
    /// are fanned across the persistent worker pool between barriers.
    /// Results are byte-identical either way.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Pin the parallel worker-pool width (`0` restores auto sizing:
    /// `OCTOPUS_POOL_THREADS` if set, else the machine's available
    /// parallelism, capped at the shard count either way). Takes effect
    /// at the next parallel window; an existing pool of a different
    /// width is torn down and respawned. Like [`World::set_parallel`],
    /// a pure speed knob — results are byte-identical at every width.
    pub fn set_worker_threads(&mut self, threads: usize) {
        if self.worker_threads != threads {
            self.worker_threads = threads;
            self.pool_workers = 0;
            self.pool = None;
        }
    }

    /// Whether windowed execution fans out across threads.
    #[must_use]
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards the ID space is partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.map.count()
    }

    /// The ID-range partition in use.
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// The bandwidth ledger, merged across shard slices. Each shard
    /// accounts the traffic its own nodes send; this folds the slices
    /// into one report-ready ledger (an `O(nodes)` copy — call it for
    /// reporting, not per event).
    #[must_use]
    pub fn ledger(&self) -> BandwidthLedger {
        let mut merged = BandwidthLedger::new();
        for shard in &self.shards {
            merged.absorb(&shard.ledger);
        }
        merged
    }

    /// Messages dropped because their destination had left the overlay
    /// (summed across shards).
    #[must_use]
    pub fn dropped_to_dead(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_to_dead).sum()
    }

    /// Number of live nodes across all shards.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.len()).sum()
    }

    /// Is `addr` currently alive in the world?
    #[must_use]
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.shard(addr).nodes.contains(addr)
    }

    /// Iterate over live node addresses (deterministic shard-major,
    /// slot-minor order).
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.shards.iter().flat_map(|s| s.nodes.addrs())
    }

    /// Immutable access to a node's state (driver-side measurement).
    #[must_use]
    pub fn node(&self, addr: Addr) -> Option<&B> {
        self.shard(addr).nodes.get(addr).map(|h| &h.node)
    }

    /// Mutable access to a node's state (driver-side mutation between
    /// steps; protocol code should use messages instead).
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut B> {
        self.shard_mut(addr)
            .nodes
            .get_mut(addr)
            .map(|h| &mut h.node)
    }

    /// Insert a node into its ID range's shard and run its `on_start`
    /// hook. A previously removed address resumes its event counter, so
    /// rejoin (churn) can never mint keys that collide with events the
    /// old incarnation left pending.
    pub fn insert_node(&mut self, addr: Addr, node: B) {
        let rng = derive_rng(self.master_seed, b"node", addr.0);
        let counter = self.counter_floor.get(&addr).copied().unwrap_or(0);
        let mut hosted = Hosted { node, rng, counter };
        self.driver_dispatch(addr, &mut hosted, |node, ctx| node.on_start(ctx));
        self.shard_mut(addr).nodes.insert(addr, hosted);
    }

    /// Remove a node (churn). Its pending timers and in-flight messages
    /// to it are silently dropped, as for a crashed peer.
    pub fn remove_node(&mut self, addr: Addr) -> Option<B> {
        let hosted = self.shard_mut(addr).nodes.remove(addr)?;
        self.counter_floor.insert(addr, hosted.counter);
        Some(hosted.node)
    }

    /// Driver-side: schedule a control event at absolute time `at`,
    /// clamped to the present — a control scheduled into the past pops
    /// *now* rather than marching the clock backwards.
    pub fn schedule_control(&mut self, at: SimTime, control: B::Control) {
        let at = at.max(self.now);
        let key = u128::from(self.driver_seq);
        self.driver_seq += 1;
        self.controls.push_with_seq(at, key, control);
    }

    /// Driver-side: inject a message from outside the overlay (used by
    /// test harnesses; latency still applies, drawn from a
    /// driver-indexed stateless stream).
    pub fn inject_message(&mut self, from: Addr, to: Addr, msg: B::Msg) {
        let bytes = msg.wire_bytes();
        let from_shard = self.map.shard_of(from);
        self.shards[from_shard].ledger.record(from, to, bytes);
        let mut rng = derive_rng(
            split_seed(self.master_seed, from.0),
            b"inject",
            self.driver_seq,
        );
        let lat = self.latency.sample(from, to, &mut rng);
        let at = self.now + lat;
        let key = u128::from(self.driver_seq);
        self.driver_seq += 1;
        let dest = self.map.shard_of(to);
        self.shards[dest]
            .queue
            .push_with_seq(at, key, Event::Deliver { from, to, msg });
    }

    /// Driver-side: invoke a closure against one node with a full
    /// handler context — the entry point for "the application asks the
    /// node to start a lookup".
    pub fn with_node<F>(&mut self, addr: Addr, f: F) -> bool
    where
        F: FnOnce(&mut B, &mut dyn Runtime<B::Msg, B::Timer, B::Control>),
    {
        let Some((key, mut hosted)) = self.shard_mut(addr).nodes.take(addr) else {
            return false;
        };
        self.driver_dispatch(addr, &mut hosted, f);
        self.shard_mut(addr).nodes.restore(addr, key, hosted);
        true
    }

    fn shard(&self, addr: Addr) -> &Shard<B> {
        &self.shards[self.map.shard_of(addr)]
    }

    fn shard_mut(&mut self, addr: Addr) -> &mut Shard<B> {
        &mut self.shards[self.map.shard_of(addr)]
    }

    /// Dispatch on behalf of the driver (insert/with_node): run the
    /// handler on the node's shard, then immediately publish what it
    /// produced — envelopes to the bus, emitted controls to the driver
    /// queue (they pop in key order like everything else).
    fn driver_dispatch<F>(&mut self, addr: Addr, hosted: &mut Hosted<B>, f: F)
    where
        F: FnOnce(&mut B, &mut dyn Runtime<B::Msg, B::Timer, B::Control>),
    {
        let now = self.now;
        let ctx = ShardCtx {
            map: self.map,
            latency: &*self.latency,
            master_seed: self.master_seed,
            window_end: self.window.end(),
            exec_end: now,
        };
        let sh = self.map.shard_of(addr);
        self.shards[sh].dispatch(&ctx, now, addr, hosted, f);
        let shard = &mut self.shards[sh];
        for (t, key, c) in shard.emitted.drain(..) {
            self.controls.push_with_seq(t, key, c);
        }
        Self::park_outgoing(&mut self.bus, shard);
    }

    /// Publish a shard's outgoing envelope lanes onto the bus — the one
    /// place every drive path (driver dispatch, sequential stepping,
    /// window barriers) parks a batch's cross-shard sends.
    fn park_outgoing(bus: &mut CrossShardBus<B::Msg>, shard: &mut Shard<B>) {
        for (dest, lane) in shard.outgoing.iter_mut().enumerate() {
            for e in lane.drain(..) {
                bus.park(dest, e);
            }
        }
    }

    /// Barrier: move every parked cross-shard message into its
    /// destination shard's queue, keyed by its send-time `(time, key)`.
    fn flush_bus(&mut self) {
        let shards = &mut self.shards;
        self.bus.flush(|dest, e| {
            shards[dest].queue.push_with_seq(
                e.at,
                e.seq,
                Event::Deliver {
                    from: e.header.from,
                    to: e.header.to,
                    msg: e.msg,
                },
            );
        });
    }

    /// The head of the shard queues: the smallest `(time, key)` and its
    /// shard index.
    fn shard_head(&self) -> Option<((SimTime, u128), usize)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.queue.peek_key().map(|k| (k, i)))
            .min()
    }

    /// Locate the globally earliest due event (flushing the bus at
    /// lookahead barriers so parked messages become visible before they
    /// are due), without popping it. `None` when nothing remains at or
    /// before `deadline`.
    fn pop_source(&mut self, deadline: SimTime) -> Option<StepSource> {
        loop {
            let shard_head = self.shard_head();
            let ctrl_head = self.controls.peek_key();
            let head = match (shard_head, ctrl_head) {
                (Some((sk, _)), Some(ck)) if ck < sk => Some((ck, StepSource::Control)),
                (Some((sk, i)), _) => Some((sk, StepSource::Shard(i))),
                (None, Some(ck)) => Some((ck, StepSource::Control)),
                (None, None) => None,
            };
            let Some(((t, _), src)) = head else {
                if self.bus.is_empty() {
                    return None;
                }
                self.flush_bus();
                continue;
            };
            if !self.bus.is_empty() && !self.window.covers(t) {
                // barrier: in-flight messages could be due at or before
                // the window's edge — deliver them before advancing
                self.flush_bus();
                continue;
            }
            if t > deadline {
                return None;
            }
            if self.bus.is_empty() {
                self.window.open(t);
            }
            return Some(src);
        }
    }

    /// The timestamp of the next pending event (queued, in flight on
    /// the bus, or a scheduled control), if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        let queued = self.shards.iter().filter_map(|s| s.queue.peek_time()).min();
        [queued, self.controls.peek_time(), self.bus.earliest()]
            .into_iter()
            .flatten()
            .min()
    }

    /// Process the next event. Returns what happened so the driver can
    /// react to control events.
    pub fn step(&mut self) -> StepOutcome<B::Control> {
        self.step_bounded(SimTime(u64::MAX))
    }

    /// Process events one at a time until something driver-visible
    /// happens, but never past `deadline`: every internal skip (a
    /// delivery to a dead node, a dead timer, a quiet protocol event
    /// that emits no controls) re-checks the bound, so a single call
    /// can no longer run protocol work arbitrarily far beyond it.
    fn step_bounded(&mut self, deadline: SimTime) -> StepOutcome<B::Control> {
        loop {
            let Some(src) = self.pop_source(deadline) else {
                return StepOutcome::Idle;
            };
            match src {
                StepSource::Control => {
                    let (t, c) = self.controls.pop().expect("peeked control exists");
                    self.now = t;
                    return StepOutcome::Control(c);
                }
                StepSource::Shard(idx) => {
                    let ctx = ShardCtx {
                        map: self.map,
                        latency: &*self.latency,
                        master_seed: self.master_seed,
                        window_end: self.window.end(),
                        exec_end: self.now,
                    };
                    self.shards[idx].run_one(&ctx);
                    self.now = self.now.max(self.shards[idx].last_exec);
                    let shard = &mut self.shards[idx];
                    let controls: Vec<B::Control> =
                        shard.emitted.drain(..).map(|(_, _, c)| c).collect();
                    Self::park_outgoing(&mut self.bus, shard);
                    if !controls.is_empty() {
                        return StepOutcome::Protocol(controls);
                    }
                }
            }
        }
    }

    /// Run the protocol until `deadline` or queue exhaustion, returning
    /// emitted control events tagged with their emission time. Events
    /// strictly after `deadline` are left pending — the clock never
    /// overshoots.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<(SimTime, B::Control)> {
        let mut out = Vec::new();
        loop {
            match self.step_bounded(deadline) {
                StepOutcome::Idle => break,
                StepOutcome::Control(c) => out.push((self.now, c)),
                StepOutcome::Protocol(cs) => out.extend(cs.into_iter().map(|c| (self.now, c))),
            }
        }
        out
    }

    /// Execute one conservative window and return the control events it
    /// produced, tagged with their emission times and sorted in global
    /// `(time, key)` order. Returns `None` when nothing remains at or
    /// before `deadline`.
    ///
    /// One call does one of three things:
    ///
    /// 1. If the globally earliest pending event is a driver control,
    ///    pop just it — the driver reacts (possibly mutating the world)
    ///    before any later event runs, exactly as in sequential
    ///    stepping.
    /// 2. Otherwise open the lookahead window from the earliest pending
    ///    time, cap it at the next scheduled control and the deadline,
    ///    and run **every shard's in-window batch** — fanned across the
    ///    persistent worker pool when [`World::set_parallel`] is on,
    ///    inline otherwise. Shards share nothing during the batch; the
    ///    barrier then parks their outgoing envelopes, merges their
    ///    emitted controls by key, and advances the clock.
    /// 3. With zero lookahead (or a control due at the window start)
    ///    the window degenerates to one sequential event — always
    ///    correct, never fast.
    ///
    /// Sequential and parallel windowed runs are byte-identical by
    /// construction: threads only change *when* a shard's batch runs on
    /// the wall clock, never what it computes or how the barrier orders
    /// the results.
    ///
    /// # Panics
    ///
    /// A panic inside a node handler is re-raised on the calling
    /// thread — with its original payload, regardless of pool width —
    /// but only *after* the window's barrier merge, so a driver that
    /// catches it holds a consistent world: every completed event's
    /// effects (messages, timers, clock) are visible, every shard has
    /// been reclaimed from the worker pool, and only the panicking
    /// node (which died mid-handler) has left the overlay. Subsequent
    /// windows, and dropping the world, behave normally.
    pub fn run_window(&mut self, deadline: SimTime) -> Option<Vec<(SimTime, B::Control)>>
    where
        B: Send + 'static,
        B::Msg: Send + 'static,
        B::Timer: Send + 'static,
        B::Control: Send + 'static,
        L: Send + Sync + 'static,
    {
        // Barrier: every in-flight cross-shard message becomes visible
        // before the window's extent is decided.
        self.flush_bus();
        let shard_head = self.shard_head();
        let ctrl_head = self.controls.peek_key();
        let ctrl_first = match (ctrl_head, shard_head) {
            (Some(ck), Some((sk, _))) => ck < sk,
            (Some(_), None) => true,
            _ => false,
        };
        if ctrl_first {
            let (t, _) = ctrl_head.expect("control head exists");
            if t > deadline {
                return None;
            }
            let (t, c) = self.controls.pop().expect("peeked control exists");
            self.now = t;
            return Some(vec![(t, c)]);
        }
        let ((t0, _), head_idx) = shard_head?;
        if t0 > deadline {
            return None;
        }
        let window_end = self.window.open(t0);
        let mut exec_end = window_end;
        if let Some(ct) = self.controls.peek_time() {
            exec_end = exec_end.min(ct);
        }
        exec_end = exec_end.min(SimTime(deadline.0.saturating_add(1)));
        let ctx = ShardCtx {
            map: self.map,
            latency: &*self.latency,
            master_seed: self.master_seed,
            window_end,
            exec_end,
        };
        // A handler panic must not skip the barrier merge below: the
        // batches that *did* complete have outgoing envelopes and an
        // advanced clock that later windows (or a caught-and-resumed
        // driver) depend on. Batch-phase panics are therefore caught
        // here (the pool catches its own workers' panics and hands the
        // first payload back) and re-raised only after the merge, so a
        // caught panic leaves the world consistent: every completed
        // event's effects are visible, and only the panicking node —
        // which died mid-handler — is gone from its slab.
        let batch_panic: Option<Box<dyn std::any::Any + Send>> = if exec_end <= t0 {
            // Zero lookahead (or a control due right at t0): degenerate
            // to one sequential event — the flush-per-pop classic
            // engine. Slower, never wrong.
            let shard = &mut self.shards[head_idx];
            catch_unwind(AssertUnwindSafe(|| shard.run_one(&ctx))).err()
        } else if self.parallel && self.shards.len() > 1 {
            if self.pool_workers == 0 {
                self.pool_workers = pool::worker_count(self.worker_threads, self.shards.len());
            }
            if self.pool_workers <= 1 {
                // One effective worker: the pool would only add barrier
                // crossings. Run the batches inline.
                Self::run_batches_inline(&mut self.shards, &ctx)
            } else {
                if self.pool.is_none() {
                    self.pool = Some(ShardPool::new(
                        self.shards.len(),
                        self.pool_workers,
                        self.map,
                        self.master_seed,
                        Arc::clone(&self.latency),
                    ));
                }
                let pool = self.pool.as_ref().expect("pool just ensured");
                pool.run_window(&mut self.shards, window_end, exec_end)
            }
        } else {
            Self::run_batches_inline(&mut self.shards, &ctx)
        };
        // Barrier merge: park envelopes, order controls, advance time.
        // Everything here is key-driven or commutative, so the merge is
        // independent of which thread finished first.
        let mut emitted: Vec<(SimTime, u128, B::Control)> = Vec::new();
        let mut now = self.now;
        for shard in &mut self.shards {
            emitted.append(&mut shard.emitted);
            now = now.max(shard.last_exec);
            Self::park_outgoing(&mut self.bus, shard);
        }
        self.now = now;
        if let Some(payload) = batch_panic {
            resume_unwind(payload);
        }
        emitted.sort_unstable_by_key(|&(t, k, _)| (t, k));
        Some(emitted.into_iter().map(|(t, _, c)| (t, c)).collect())
    }

    /// Run every shard's window batch on the calling thread, stopping
    /// at (and returning) the first handler panic. Remaining shards are
    /// left unexecuted — their events are still queued, exactly as if
    /// the window had opened later.
    fn run_batches_inline(
        shards: &mut [Shard<B>],
        ctx: &ShardCtx<'_, L>,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        for shard in shards {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| shard.run_batch(ctx))) {
                return Some(payload);
            }
        }
        None
    }
}

impl<B: NodeBehavior, L: LatencyModel> Transport<B> for World<B, L> {
    fn inject(&mut self, from: Addr, to: Addr, msg: B::Msg) {
        self.inject_message(from, to, msg);
    }

    /// Advance *virtual* time by `budget`: the simulator's clock moves
    /// as fast as its event queues drain, wall-clock free.
    fn drive(&mut self, budget: Duration) -> Vec<B::Control> {
        let deadline = self.now + budget;
        self.run_until(deadline)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    }
}

/// Where [`World::pop_source`] found the globally earliest event.
enum StepSource {
    /// The driver control queue holds the head.
    Control,
    /// The indexed shard's queue holds the head.
    Shard(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use octopus_id::NodeId;

    /// A ping-pong node: replies to Ping with Pong, counts pongs.
    struct PingPong {
        pongs: u32,
        peer: Option<Addr>,
    }

    #[derive(Debug, PartialEq)]
    enum Pm {
        Ping,
        Pong,
    }

    impl WireMsg for Pm {
        fn wire_bytes(&self) -> u32 {
            8
        }
    }

    impl NodeBehavior for PingPong {
        type Msg = Pm;
        type Timer = ();
        type Control = u32;

        fn on_start(&mut self, ctx: &mut dyn Runtime<Pm, (), u32>) {
            if let Some(p) = self.peer {
                ctx.send(p, Pm::Ping);
            }
        }

        fn on_message(&mut self, ctx: &mut dyn Runtime<Pm, (), u32>, from: Addr, msg: Pm) {
            match msg {
                Pm::Ping => ctx.send(from, Pm::Pong),
                Pm::Pong => {
                    self.pongs += 1;
                    ctx.emit(self.pongs);
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut dyn Runtime<Pm, (), u32>, _t: ()) {}
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1, 1);
        // RTT with 10ms one-way latency
        assert_eq!(ctrl[0].0, SimTime::from_millis(20));
        assert_eq!(w.node(NodeId(1)).unwrap().pongs, 1);
    }

    #[test]
    fn message_to_dead_node_dropped() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert!(ctrl.is_empty());
        assert_eq!(w.dropped_to_dead(), 1);
    }

    #[test]
    fn bandwidth_accounted() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        w.run_until(SimTime::from_secs(1));
        // two 8-byte messages + 28B UDP headers each
        assert_eq!(w.ledger().total_bytes(), 2 * (8 + 28));
    }

    #[test]
    fn control_events_scheduled_by_driver() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.schedule_control(SimTime::from_secs(5), 42);
        let ctrl = w.run_until(SimTime::from_secs(10));
        assert_eq!(ctrl, vec![(SimTime::from_secs(5), 42)]);
    }

    #[test]
    fn with_node_drives_protocol() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        assert!(w.with_node(NodeId(1), |_n, ctx| ctx.send(NodeId(2), Pm::Ping)));
        assert!(!w.with_node(NodeId(9), |_n, _ctx| {}));
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
    }

    #[test]
    fn remove_node_kills_timers_silently() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.with_node(NodeId(1), |_n, ctx| {
            ctx.set_timer(Duration::from_secs(1), ())
        });
        w.remove_node(NodeId(1));
        let ctrl = w.run_until(SimTime::from_secs(5));
        assert!(ctrl.is_empty());
    }

    #[test]
    fn identical_on_both_scheduler_backends() {
        let run = |kind: SchedulerKind| {
            let mut w: World<PingPong, _> =
                World::with_scheduler(ConstantLatency(Duration::from_millis(7)), 3, kind);
            w.insert_node(
                NodeId(2),
                PingPong {
                    pongs: 0,
                    peer: Some(NodeId(1)),
                },
            );
            w.insert_node(
                NodeId(1),
                PingPong {
                    pongs: 0,
                    peer: Some(NodeId(2)),
                },
            );
            w.schedule_control(SimTime::from_millis(9), 7);
            w.run_until(SimTime::from_secs(1))
        };
        assert_eq!(
            run(SchedulerKind::BinaryHeap),
            run(SchedulerKind::TimingWheel)
        );
    }

    /// Fixed latency that *reports* no guaranteed floor (inherits the
    /// default `min_latency` of zero), forcing the degenerate
    /// flush-before-every-pop path of a zero-lookahead shard set.
    struct NoFloor(Duration);

    impl LatencyModel for NoFloor {
        fn sample<R: rand::Rng + ?Sized>(&self, _: Addr, _: Addr, _: &mut R) -> Duration {
            self.0
        }
        fn base(&self, _: Addr, _: Addr) -> Duration {
            self.0
        }
    }

    /// ids spread across the whole u64 space so every shard count
    /// actually splits them
    fn gossip_ids() -> Vec<Addr> {
        (0..16)
            .map(|i| NodeId((i as u64) << 60 | (i as u64 * 0x9E37_79B9)))
            .collect()
    }

    fn gossip_world<L: LatencyModel>(shards: usize, latency: L) -> World<PingPong, L> {
        let ids = gossip_ids();
        let mut w: World<PingPong, _> =
            World::with_shards(latency, 11, SchedulerKind::default(), shards);
        assert_eq!(w.shard_count(), shards.max(1));
        for (i, &id) in ids.iter().enumerate() {
            w.insert_node(
                id,
                PingPong {
                    pongs: 0,
                    peer: Some(ids[(i + 5) % ids.len()]),
                },
            );
        }
        w
    }

    /// A gossip workload whose control trace captures the full event
    /// order: every pong emits the receiver's running count.
    fn gossip_trace<L: LatencyModel>(shards: usize, latency: L) -> Vec<(SimTime, u32)> {
        let ids = gossip_ids();
        let mut w = gossip_world(shards, latency);
        // keep the network busy: every pong re-pings a different peer
        let mut out = Vec::new();
        let deadline = SimTime::from_millis(400);
        while w.peek_time().is_some_and(|t| t <= deadline) {
            match w.step() {
                StepOutcome::Idle => break,
                StepOutcome::Control(c) => out.push((w.now(), c)),
                StepOutcome::Protocol(cs) => {
                    out.extend(cs.into_iter().map(|c| (w.now(), c)));
                    // ping a rotating peer to generate cross-shard load
                    let k = out.len() % ids.len();
                    w.with_node(ids[k], |_n, ctx| {
                        ctx.send(ids[(k + 7) % 16], Pm::Ping);
                    });
                }
            }
        }
        assert_eq!(w.node_count(), 16);
        out
    }

    /// The same workload driven through the windowed executor.
    fn gossip_trace_windowed<L: LatencyModel + Send + Sync + 'static>(
        shards: usize,
        parallel: bool,
        latency: L,
    ) -> Vec<(SimTime, u32)> {
        let ids = gossip_ids();
        let mut w = gossip_world(shards, latency);
        w.set_parallel(parallel);
        let mut out = Vec::new();
        while let Some(controls) = w.run_window(SimTime::from_millis(400)) {
            for (t, c) in controls {
                out.push((t, c));
                let k = out.len() % ids.len();
                w.with_node(ids[k], |_n, ctx| {
                    ctx.send(ids[(k + 7) % 16], Pm::Ping);
                });
            }
        }
        assert_eq!(w.node_count(), 16);
        out
    }

    #[test]
    fn shard_count_never_changes_results() {
        let one = gossip_trace(1, ConstantLatency(Duration::from_millis(7)));
        assert!(one.len() > 40, "workload must generate traffic");
        for shards in [2usize, 3, 4, 8] {
            assert_eq!(
                gossip_trace(shards, ConstantLatency(Duration::from_millis(7))),
                one,
                "{shards}-shard run diverged from the single-queue engine"
            );
        }
    }

    #[test]
    fn windowed_execution_identical_across_shards_and_modes() {
        let base = gossip_trace_windowed(1, false, ConstantLatency(Duration::from_millis(7)));
        assert!(base.len() > 40, "workload must generate traffic");
        for shards in [1usize, 2, 4, 8] {
            for parallel in [false, true] {
                assert_eq!(
                    gossip_trace_windowed(
                        shards,
                        parallel,
                        ConstantLatency(Duration::from_millis(7))
                    ),
                    base,
                    "{shards}-shard parallel={parallel} windowed run diverged"
                );
            }
        }
    }

    #[test]
    fn zero_lookahead_still_deterministic() {
        // a model with no guaranteed floor gives a zero lookahead: the
        // window covers nothing and the engine degenerates to flushing
        // the bus before every pop — slower, never wrong
        let one = gossip_trace(1, NoFloor(Duration::from_millis(7)));
        assert!(!one.is_empty());
        for shards in [2usize, 4] {
            assert_eq!(gossip_trace(shards, NoFloor(Duration::from_millis(7))), one);
        }
        // the windowed executor degenerates identically (its windows
        // collapse to single events)
        let windowed = gossip_trace_windowed(1, false, NoFloor(Duration::from_millis(7)));
        for shards in [2usize, 4] {
            for parallel in [false, true] {
                assert_eq!(
                    gossip_trace_windowed(shards, parallel, NoFloor(Duration::from_millis(7))),
                    windowed
                );
            }
        }
    }

    #[test]
    fn cross_shard_messages_deliver_through_the_bus() {
        // two nodes at opposite ends of the ID space: with 2 shards the
        // ping and pong must both cross the bus
        let mut w: World<PingPong, _> = World::with_shards(
            ConstantLatency(Duration::from_millis(10)),
            1,
            SchedulerKind::default(),
            2,
        );
        let (a, b) = (NodeId(1), NodeId(u64::MAX - 1));
        assert_ne!(w.shard_map().shard_of(a), w.shard_map().shard_of(b));
        w.insert_node(
            b,
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            a,
            PingPong {
                pongs: 0,
                peer: Some(b),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl, vec![(SimTime::from_millis(20), 1)]);
        assert_eq!(w.node(a).unwrap().pongs, 1);
    }

    #[test]
    fn churn_works_across_shards() {
        let mut w: World<PingPong, _> = World::with_shards(
            ConstantLatency(Duration::from_millis(10)),
            1,
            SchedulerKind::default(),
            4,
        );
        let far = NodeId(u64::MAX / 2);
        w.insert_node(
            far,
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        assert!(w.is_alive(far));
        assert_eq!(w.node_count(), 1);
        // a message racing a removal is dropped, not misdelivered
        w.insert_node(
            NodeId(3),
            PingPong {
                pongs: 0,
                peer: Some(far),
            },
        );
        w.remove_node(far);
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert!(ctrl.is_empty());
        assert_eq!(w.dropped_to_dead(), 1);
        assert_eq!(w.node_count(), 1);
    }

    /// A node that re-arms a quiet timer forever and never emits a
    /// control: the workload on which an unbounded internal step loop
    /// would run away past any deadline.
    struct QuietTicker;

    impl NodeBehavior for QuietTicker {
        type Msg = Pm;
        type Timer = ();
        type Control = u32;

        fn on_start(&mut self, ctx: &mut dyn Runtime<Pm, (), u32>) {
            ctx.set_timer(Duration::from_millis(10), ());
        }

        fn on_message(&mut self, _ctx: &mut dyn Runtime<Pm, (), u32>, _from: Addr, _msg: Pm) {}

        fn on_timer(&mut self, ctx: &mut dyn Runtime<Pm, (), u32>, (): ()) {
            ctx.set_timer(Duration::from_millis(10), ());
        }
    }

    #[test]
    fn run_until_stops_exactly_at_the_deadline() {
        let mut w: World<QuietTicker, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(NodeId(1), QuietTicker);
        let ctrl = w.run_until(SimTime::from_millis(95));
        assert!(ctrl.is_empty());
        // events at 10..=90 ms ran; the 100 ms tick must still be
        // pending and the clock must not have overshot
        assert_eq!(w.now(), SimTime::from_millis(90), "clock overshot");
        assert_eq!(w.peek_time(), Some(SimTime::from_millis(100)));
        // a second call makes no progress (nothing due before 95 ms)
        assert!(w.run_until(SimTime::from_millis(95)).is_empty());
        assert_eq!(w.now(), SimTime::from_millis(90));
        // the windowed executor honors the same bound
        assert!(w.run_window(SimTime::from_millis(95)).is_none());
        assert_eq!(w.now(), SimTime::from_millis(90));
    }

    #[test]
    fn past_due_control_clamps_to_now() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.schedule_control(SimTime::from_secs(5), 1);
        let ctrl = w.run_until(SimTime::from_secs(10));
        assert_eq!(ctrl, vec![(SimTime::from_secs(5), 1)]);
        assert_eq!(w.now(), SimTime::from_secs(5));
        // a control scheduled into the past pops immediately, at `now`
        w.schedule_control(SimTime::from_secs(1), 2);
        let ctrl = w.run_until(SimTime::from_secs(10));
        assert_eq!(ctrl, vec![(SimTime::from_secs(5), 2)], "clamped to now");
        assert_eq!(w.now(), SimTime::from_secs(5), "time moved backwards");
    }

    /// A latency model that lies about its floor: `min_latency` claims
    /// 10 ms but samples are 1 ms.
    struct LyingFloor;

    impl LatencyModel for LyingFloor {
        fn sample<R: rand::Rng + ?Sized>(&self, _: Addr, _: Addr, _: &mut R) -> Duration {
            Duration::from_millis(1)
        }
        fn base(&self, _: Addr, _: Addr) -> Duration {
            Duration::from_millis(1)
        }
        fn min_latency(&self) -> Duration {
            Duration::from_millis(10)
        }
    }

    #[test]
    #[should_panic(expected = "cross-shard message due inside the lookahead window")]
    fn lying_min_latency_trips_the_soundness_assert() {
        let mut w: World<PingPong, _> =
            World::with_shards(LyingFloor, 1, SchedulerKind::default(), 2);
        let (a, b) = (NodeId(1), NodeId(u64::MAX - 1));
        assert_ne!(w.shard_map().shard_of(a), w.shard_map().shard_of(b));
        w.insert_node(
            b,
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            a,
            PingPong {
                pongs: 0,
                peer: Some(b),
            },
        );
        // b's reply is sampled at 1 ms inside a 10 ms-lookahead window:
        // the cross-shard park must fail loudly, not corrupt the run
        w.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn rejoining_node_resumes_its_event_counter() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.with_node(NodeId(1), |_n, ctx| {
            ctx.set_timer(Duration::from_secs(1), ())
        });
        let counter_after_timer = w.shard(NodeId(1)).nodes.get(NodeId(1)).unwrap().counter;
        assert!(counter_after_timer > 0);
        w.remove_node(NodeId(1));
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        let counter_after_rejoin = w.shard(NodeId(1)).nodes.get(NodeId(1)).unwrap().counter;
        assert!(
            counter_after_rejoin >= counter_after_timer,
            "rejoin must never reuse keys of its previous life"
        );
    }
}
