//! A deterministic message-passing world over the event queue.
//!
//! Protocol nodes implement [`NodeBehavior`]; the [`World`] owns them,
//! routes typed messages through the latency model, delivers timers, and
//! accounts bandwidth. Control events let a driver (e.g. the security
//! simulator in `octopus-core::simnet`) interleave churn and measurement
//! with protocol execution without borrowing conflicts: [`World::step`]
//! returns control events to the caller instead of invoking callbacks.

use std::collections::HashMap;

use octopus_id::NodeId;
use octopus_sim::{derive_rng, Duration, EventQueue, SimTime};
use rand::rngs::StdRng;

use crate::latency::LatencyModel;
use crate::wire::{BandwidthLedger, WireMsg};

/// Overlay address. Octopus identifies peers by ring id; the simulated
/// transport maps ids directly to "IP addresses".
pub type Addr = NodeId;

/// A protocol node hosted in a [`World`].
pub trait NodeBehavior {
    /// Message type exchanged between nodes.
    type Msg: WireMsg;
    /// Per-node timer kinds.
    type Timer;
    /// Control events surfaced to the simulation driver.
    type Control;

    /// Handle a delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>,
        from: Addr,
        msg: Self::Msg,
    );

    /// Handle an expired timer.
    fn on_timer(
        &mut self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>,
        timer: Self::Timer,
    );

    /// Called once when the node is inserted into the world (schedule
    /// initial timers here).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Timer, Self::Control>) {
        let _ = ctx;
    }
}

/// Handler context: lets a node send messages, set timers, emit control
/// events, and draw randomness — all without direct access to the world.
pub struct Ctx<'a, M, T, C> {
    now: SimTime,
    self_addr: Addr,
    rng: &'a mut StdRng,
    outbox: Vec<(Addr, M, Duration)>,
    timers: Vec<(Duration, T)>,
    controls: Vec<C>,
}

impl<M, T, C> Ctx<'_, M, T, C> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's own address.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.self_addr
    }

    /// Send `msg` to `to` (latency sampled by the world).
    pub fn send(&mut self, to: Addr, msg: M) {
        self.outbox.push((to, msg, Duration::ZERO));
    }

    /// Send with an *additional* artificial delay before transmission —
    /// used by the middle relay B, which delays forwarded messages by a
    /// random amount to defeat timing analysis (paper §4.7).
    pub fn send_delayed(&mut self, to: Addr, msg: M, extra: Duration) {
        self.outbox.push((to, msg, extra));
    }

    /// Arm a timer to fire after `delay`.
    pub fn set_timer(&mut self, delay: Duration, timer: T) {
        self.timers.push((delay, timer));
    }

    /// Emit a control event to the simulation driver.
    pub fn emit(&mut self, control: C) {
        self.controls.push(control);
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

enum Event<M, T, C> {
    Deliver { from: Addr, to: Addr, msg: M },
    Timer { node: Addr, timer: T },
    Control(C),
}

/// What a single [`World::step`] produced.
pub enum StepOutcome<C> {
    /// A protocol event (message or timer) was processed; control events
    /// it emitted are included.
    Protocol(Vec<C>),
    /// A driver-scheduled control event came due.
    Control(C),
    /// The event queue is exhausted.
    Idle,
}

/// The simulated network world.
pub struct World<B: NodeBehavior, L: LatencyModel> {
    nodes: HashMap<Addr, B>,
    rngs: HashMap<Addr, StdRng>,
    queue: EventQueue<Event<B::Msg, B::Timer, B::Control>>,
    latency: L,
    ledger: BandwidthLedger,
    master_seed: u64,
    transport_rng: StdRng,
    dropped_to_dead: u64,
}

impl<B: NodeBehavior, L: LatencyModel> World<B, L> {
    /// New world with the given latency model and master seed.
    #[must_use]
    pub fn new(latency: L, master_seed: u64) -> Self {
        World {
            nodes: HashMap::new(),
            rngs: HashMap::new(),
            queue: EventQueue::new(),
            latency,
            ledger: BandwidthLedger::new(),
            master_seed,
            transport_rng: derive_rng(master_seed, b"transport", 0),
            dropped_to_dead: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The bandwidth ledger.
    #[must_use]
    pub fn ledger(&self) -> &BandwidthLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (e.g. to reset after warm-up).
    pub fn ledger_mut(&mut self) -> &mut BandwidthLedger {
        &mut self.ledger
    }

    /// Messages dropped because their destination had left the overlay.
    #[must_use]
    pub fn dropped_to_dead(&self) -> u64 {
        self.dropped_to_dead
    }

    /// Number of live nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Is `addr` currently alive in the world?
    #[must_use]
    pub fn is_alive(&self, addr: Addr) -> bool {
        self.nodes.contains_key(&addr)
    }

    /// Iterate over live node addresses.
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.nodes.keys().copied()
    }

    /// Immutable access to a node's state (driver-side measurement).
    #[must_use]
    pub fn node(&self, addr: Addr) -> Option<&B> {
        self.nodes.get(&addr)
    }

    /// Mutable access to a node's state (driver-side mutation between
    /// steps; protocol code should use messages instead).
    pub fn node_mut(&mut self, addr: Addr) -> Option<&mut B> {
        self.nodes.get_mut(&addr)
    }

    /// Insert a node and run its `on_start` hook.
    pub fn insert_node(&mut self, addr: Addr, node: B) {
        let mut rng = derive_rng(self.master_seed, b"node", addr.0);
        let mut node = node;
        let mut ctx = Ctx {
            now: self.queue.now(),
            self_addr: addr,
            rng: &mut rng,
            outbox: Vec::new(),
            timers: Vec::new(),
            controls: Vec::new(),
        };
        node.on_start(&mut ctx);
        let Ctx {
            outbox,
            timers,
            controls,
            ..
        } = ctx;
        self.nodes.insert(addr, node);
        self.rngs.insert(addr, rng);
        self.flush(addr, outbox, timers);
        for c in controls {
            self.queue.push(self.queue.now(), Event::Control(c));
        }
    }

    /// Remove a node (churn). Its pending timers and in-flight messages
    /// to it are silently dropped, as for a crashed peer.
    pub fn remove_node(&mut self, addr: Addr) -> Option<B> {
        self.rngs.remove(&addr);
        self.nodes.remove(&addr)
    }

    /// Driver-side: schedule a control event at absolute time `at`.
    pub fn schedule_control(&mut self, at: SimTime, control: B::Control) {
        self.queue.push(at, Event::Control(control));
    }

    /// Driver-side: inject a message from outside the overlay (used by
    /// test harnesses; latency still applies).
    pub fn inject_message(&mut self, from: Addr, to: Addr, msg: B::Msg) {
        self.route(from, to, msg, Duration::ZERO);
    }

    /// Driver-side: invoke a closure against one node with a full
    /// handler context — the entry point for "the application asks the
    /// node to start a lookup".
    pub fn with_node<F>(&mut self, addr: Addr, f: F) -> bool
    where
        F: FnOnce(&mut B, &mut Ctx<'_, B::Msg, B::Timer, B::Control>),
    {
        let Some(mut node) = self.nodes.remove(&addr) else {
            return false;
        };
        let mut rng = self.rngs.remove(&addr).expect("rng exists for node");
        let mut ctx = Ctx {
            now: self.queue.now(),
            self_addr: addr,
            rng: &mut rng,
            outbox: Vec::new(),
            timers: Vec::new(),
            controls: Vec::new(),
        };
        f(&mut node, &mut ctx);
        let Ctx {
            outbox,
            timers,
            controls,
            ..
        } = ctx;
        self.nodes.insert(addr, node);
        self.rngs.insert(addr, rng);
        self.flush(addr, outbox, timers);
        for c in controls {
            self.queue.push(self.queue.now(), Event::Control(c));
        }
        true
    }

    fn route(&mut self, from: Addr, to: Addr, msg: B::Msg, extra: Duration) {
        let bytes = msg.wire_bytes();
        self.ledger.record(from, to, bytes);
        let lat = self.latency.sample(from, to, &mut self.transport_rng);
        let at = self.queue.now() + extra + lat;
        self.queue.push(at, Event::Deliver { from, to, msg });
    }

    fn flush(
        &mut self,
        from: Addr,
        outbox: Vec<(Addr, B::Msg, Duration)>,
        timers: Vec<(Duration, B::Timer)>,
    ) {
        for (to, msg, extra) in outbox {
            self.route(from, to, msg, extra);
        }
        for (delay, timer) in timers {
            self.queue
                .push(self.queue.now() + delay, Event::Timer { node: from, timer });
        }
    }

    /// Process the next event. Returns what happened so the driver can
    /// react to control events.
    pub fn step(&mut self) -> StepOutcome<B::Control> {
        loop {
            let Some((_, ev)) = self.queue.pop() else {
                return StepOutcome::Idle;
            };
            match ev {
                Event::Control(c) => return StepOutcome::Control(c),
                Event::Deliver { from, to, msg } => {
                    let Some(mut node) = self.nodes.remove(&to) else {
                        self.dropped_to_dead += 1;
                        continue;
                    };
                    let mut rng = self.rngs.remove(&to).expect("rng exists");
                    let mut ctx = Ctx {
                        now: self.queue.now(),
                        self_addr: to,
                        rng: &mut rng,
                        outbox: Vec::new(),
                        timers: Vec::new(),
                        controls: Vec::new(),
                    };
                    node.on_message(&mut ctx, from, msg);
                    let Ctx {
                        outbox,
                        timers,
                        controls,
                        ..
                    } = ctx;
                    self.nodes.insert(to, node);
                    self.rngs.insert(to, rng);
                    self.flush(to, outbox, timers);
                    if controls.is_empty() {
                        continue;
                    }
                    return StepOutcome::Protocol(controls);
                }
                Event::Timer { node: addr, timer } => {
                    let Some(mut node) = self.nodes.remove(&addr) else {
                        continue; // timer of a dead node
                    };
                    let mut rng = self.rngs.remove(&addr).expect("rng exists");
                    let mut ctx = Ctx {
                        now: self.queue.now(),
                        self_addr: addr,
                        rng: &mut rng,
                        outbox: Vec::new(),
                        timers: Vec::new(),
                        controls: Vec::new(),
                    };
                    node.on_timer(&mut ctx, timer);
                    let Ctx {
                        outbox,
                        timers,
                        controls,
                        ..
                    } = ctx;
                    self.nodes.insert(addr, node);
                    self.rngs.insert(addr, rng);
                    self.flush(addr, outbox, timers);
                    if controls.is_empty() {
                        continue;
                    }
                    return StepOutcome::Protocol(controls);
                }
            }
        }
    }

    /// Run the protocol until `deadline` or queue exhaustion, returning
    /// emitted control events tagged with their emission time.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<(SimTime, B::Control)> {
        let mut out = Vec::new();
        while self.queue.next_time().is_some_and(|t| t <= deadline) {
            match self.step() {
                StepOutcome::Idle => break,
                StepOutcome::Control(c) => out.push((self.now(), c)),
                StepOutcome::Protocol(cs) => out.extend(cs.into_iter().map(|c| (self.now(), c))),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;

    /// A ping-pong node: replies to Ping with Pong, counts pongs.
    struct PingPong {
        pongs: u32,
        peer: Option<Addr>,
    }

    #[derive(Debug, PartialEq)]
    enum Pm {
        Ping,
        Pong,
    }

    impl WireMsg for Pm {
        fn wire_bytes(&self) -> u32 {
            8
        }
    }

    impl NodeBehavior for PingPong {
        type Msg = Pm;
        type Timer = ();
        type Control = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Pm, (), u32>) {
            if let Some(p) = self.peer {
                ctx.send(p, Pm::Ping);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Pm, (), u32>, from: Addr, msg: Pm) {
            match msg {
                Pm::Ping => ctx.send(from, Pm::Pong),
                Pm::Pong => {
                    self.pongs += 1;
                    ctx.emit(self.pongs);
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Pm, (), u32>, _t: ()) {}
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
        assert_eq!(ctrl[0].1, 1);
        // RTT with 10ms one-way latency
        assert_eq!(ctrl[0].0, SimTime::from_millis(20));
        assert_eq!(w.node(NodeId(1)).unwrap().pongs, 1);
    }

    #[test]
    fn message_to_dead_node_dropped() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert!(ctrl.is_empty());
        assert_eq!(w.dropped_to_dead(), 1);
    }

    #[test]
    fn bandwidth_accounted() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: Some(NodeId(2)),
            },
        );
        w.run_until(SimTime::from_secs(1));
        // two 8-byte messages + 28B UDP headers each
        assert_eq!(w.ledger().total_bytes(), 2 * (8 + 28));
    }

    #[test]
    fn control_events_scheduled_by_driver() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(10)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.schedule_control(SimTime::from_secs(5), 42);
        let ctrl = w.run_until(SimTime::from_secs(10));
        assert_eq!(ctrl, vec![(SimTime::from_secs(5), 42)]);
    }

    #[test]
    fn with_node_drives_protocol() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.insert_node(
            NodeId(2),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        assert!(w.with_node(NodeId(1), |_n, ctx| ctx.send(NodeId(2), Pm::Ping)));
        assert!(!w.with_node(NodeId(9), |_n, _ctx| {}));
        let ctrl = w.run_until(SimTime::from_secs(1));
        assert_eq!(ctrl.len(), 1);
    }

    #[test]
    fn remove_node_kills_timers_silently() {
        let mut w: World<PingPong, _> = World::new(ConstantLatency(Duration::from_millis(5)), 1);
        w.insert_node(
            NodeId(1),
            PingPong {
                pongs: 0,
                peer: None,
            },
        );
        w.with_node(NodeId(1), |_n, ctx| {
            ctx.set_timer(Duration::from_secs(1), ())
        });
        w.remove_node(NodeId(1));
        let ctrl = w.run_until(SimTime::from_secs(5));
        assert!(ctrl.is_empty());
    }
}
