//! Ring partitioning for sharded worlds: ID-range ownership and the
//! cross-shard message bus.
//!
//! A sharded [`World`](crate::World) splits the Chord ring into
//! contiguous ID ranges, one per shard; each shard owns the
//! [`NodeSlab`](crate::NodeSlab) and event queue for its range.
//! [`ShardMap`] is the ownership function (`Addr → shard`, `O(1)`,
//! allocation-free), and [`CrossShardBus`] holds messages in flight
//! between shards until the next conservative synchronization barrier
//! (see [`octopus_sim::LookaheadWindow`]).

use octopus_sim::SimTime;

use crate::wire::FrameHeader;
use crate::world::Addr;

/// Contiguous-range ownership of the 64-bit ID space by `count` shards.
///
/// Shard `s` owns ids in `[range(s).0, range(s).1]`; ranges tile the
/// whole space, so every address — including out-of-population driver
/// addresses like a CA at `u64::MAX` — has exactly one owner. The map
/// is pure arithmetic (`shard_of(id) = ⌊id · count / 2⁶⁴⌋`), identical
/// for every shard count on every run.
///
/// ```
/// use octopus_net::ShardMap;
///
/// let map = ShardMap::new(4);
/// assert_eq!(map.count(), 4);
/// assert_eq!(map.shard_of(octopus_id::NodeId(0)), 0);
/// assert_eq!(map.shard_of(octopus_id::NodeId(u64::MAX)), 3);
/// // ranges are contiguous and cover the space
/// let (lo, hi) = map.range(1);
/// assert_eq!(map.shard_of(octopus_id::NodeId(lo)), 1);
/// assert_eq!(map.shard_of(octopus_id::NodeId(hi)), 1);
/// assert_eq!(map.shard_of(octopus_id::NodeId(hi + 1)), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    count: usize,
}

impl ShardMap {
    /// A map over `count` shards (clamped to at least 1).
    #[must_use]
    pub fn new(count: usize) -> Self {
        ShardMap {
            count: count.max(1),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The shard owning `addr`.
    #[must_use]
    pub fn shard_of(&self, addr: Addr) -> usize {
        ((u128::from(addr.0) * self.count as u128) >> 64) as usize
    }

    /// The inclusive `[lo, hi]` ID range shard `s` owns.
    ///
    /// # Panics
    /// Panics when `s >= count()`.
    #[must_use]
    pub fn range(&self, s: usize) -> (u64, u64) {
        assert!(s < self.count, "shard index {s} out of {}", self.count);
        let lo = Self::range_start(self.count, s);
        let hi = if s + 1 == self.count {
            u64::MAX
        } else {
            Self::range_start(self.count, s + 1) - 1
        };
        (lo, hi)
    }

    /// First id owned by shard `s`: the smallest `id` with
    /// `id · count ≥ s · 2⁶⁴`.
    fn range_start(count: usize, s: usize) -> u64 {
        let num = (s as u128) << 64;
        let count = count as u128;
        (num.div_ceil(count)) as u64
    }
}

/// A message parked between shards, carrying the full global ordering
/// key it was assigned at send time.
///
/// Addressing lives in the embedded [`FrameHeader`] — the same header
/// type [`crate::wire::encode_frame`] serializes for the UDP transport,
/// so the simulator's in-memory framing and the on-the-wire framing are
/// one representation and can never drift apart.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Delivery time (send time + link latency + artificial delay).
    pub at: SimTime,
    /// Packed `(lane, origin, counter)` tie-break key, assigned from the
    /// sender's own counter when the send was routed — no cross-shard
    /// coordination needed.
    pub seq: u128,
    /// Sender and destination addresses (the codec-owned frame header).
    pub header: FrameHeader,
    /// The message itself.
    pub msg: M,
}

/// In-flight cross-shard messages, bucketed by destination shard.
///
/// The bus is append-only between barriers and fully drained at each
/// one; because every envelope's arrival time provably lies at or
/// beyond the current lookahead window's end, draining at barriers can
/// never deliver an event late. Envelopes keep their send-time sequence
/// numbers, so after a flush the destination queue still pops them in
/// exact global `(time, seq)` order.
#[derive(Debug)]
pub struct CrossShardBus<M> {
    lanes: Vec<Vec<Envelope<M>>>,
    len: usize,
    /// Running minimum arrival time of the parked envelopes, kept on
    /// `park` so [`CrossShardBus::earliest`] is `O(1)` (the driver
    /// polls it every step between barriers).
    earliest: Option<SimTime>,
}

impl<M> CrossShardBus<M> {
    /// An empty bus with one lane per destination shard.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        CrossShardBus {
            lanes: (0..shards.max(1)).map(|_| Vec::new()).collect(),
            len: 0,
            earliest: None,
        }
    }

    /// Number of parked envelopes across all lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Park an envelope on its destination lane.
    ///
    /// # Panics
    /// Panics when `dest` is not a valid shard index.
    pub fn park(&mut self, dest: usize, envelope: Envelope<M>) {
        self.earliest = Some(match self.earliest {
            Some(t) => t.min(envelope.at),
            None => envelope.at,
        });
        self.lanes[dest].push(envelope);
        self.len += 1;
    }

    /// The earliest arrival time of any parked envelope (`O(1)`).
    #[must_use]
    pub fn earliest(&self) -> Option<SimTime> {
        self.earliest
    }

    /// Drain every lane at a barrier, handing each envelope to
    /// `deliver(dest_shard, envelope)`. Lanes drain in shard order and
    /// envelopes within a lane in park (send) order, so delivery is
    /// deterministic; ordering correctness does not depend on it (the
    /// envelopes' own `(time, seq)` keys restore the global order).
    pub fn flush(&mut self, mut deliver: impl FnMut(usize, Envelope<M>)) {
        for (dest, lane) in self.lanes.iter_mut().enumerate() {
            for e in lane.drain(..) {
                deliver(dest, e);
            }
        }
        self.len = 0;
        self.earliest = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_id::NodeId;

    #[test]
    fn ranges_tile_the_space() {
        for count in [1usize, 2, 3, 4, 7, 8, 64] {
            let map = ShardMap::new(count);
            let mut next = 0u64;
            for s in 0..count {
                let (lo, hi) = map.range(s);
                assert_eq!(lo, next, "shard {s}/{count} range is contiguous");
                assert!(hi >= lo);
                assert_eq!(map.shard_of(NodeId(lo)), s);
                assert_eq!(map.shard_of(NodeId(hi)), s);
                if s + 1 < count {
                    assert_eq!(map.shard_of(NodeId(hi + 1)), s + 1);
                    next = hi + 1;
                }
            }
            assert_eq!(map.range(count - 1).1, u64::MAX);
        }
    }

    #[test]
    fn zero_count_clamps_to_one() {
        let map = ShardMap::new(0);
        assert_eq!(map.count(), 1);
        assert_eq!(map.range(0), (0, u64::MAX));
    }

    #[test]
    fn ca_address_lands_in_last_shard() {
        // the security sim parks its CA at u64::MAX, outside the ring
        // population; it must still have exactly one owner
        for count in [1usize, 2, 4, 8] {
            let map = ShardMap::new(count);
            assert_eq!(map.shard_of(NodeId(u64::MAX)), count - 1);
        }
    }

    #[test]
    fn balanced_partition() {
        // contiguous ranges should be near-equal in width
        let map = ShardMap::new(8);
        let widths: Vec<u128> = (0..8)
            .map(|s| {
                let (lo, hi) = map.range(s);
                u128::from(hi) - u128::from(lo) + 1
            })
            .collect();
        let min = widths.iter().min().unwrap();
        let max = widths.iter().max().unwrap();
        assert!(max - min <= 1, "ranges differ by more than one id");
    }

    #[test]
    fn bus_parks_and_flushes_in_lane_order() {
        let mut bus: CrossShardBus<&str> = CrossShardBus::new(3);
        assert!(bus.is_empty());
        assert_eq!(bus.earliest(), None);
        bus.park(
            2,
            Envelope {
                at: SimTime::from_millis(30),
                seq: 5,
                header: FrameHeader {
                    from: NodeId(1),
                    to: NodeId(9),
                },
                msg: "b",
            },
        );
        bus.park(
            0,
            Envelope {
                at: SimTime::from_millis(10),
                seq: 6,
                header: FrameHeader {
                    from: NodeId(2),
                    to: NodeId(3),
                },
                msg: "a",
            },
        );
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.earliest(), Some(SimTime::from_millis(10)));
        let mut seen = Vec::new();
        bus.flush(|dest, e| seen.push((dest, e.msg, e.seq)));
        assert_eq!(seen, vec![(0, "a", 6), (2, "b", 5)]);
        assert!(bus.is_empty());
    }
}
