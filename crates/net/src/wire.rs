//! Wire-size model and bandwidth accounting.
//!
//! The paper's bandwidth numbers (Table 3) are computed from a byte model
//! given in footnote 4: each routing-state item (finger or successor) is
//! 10 bytes, signatures are 40-byte ECDSA with a 4-byte timestamp,
//! certificates are 50 bytes, and onion encryption is AES-128 (16-byte
//! blocks). We adopt exactly those constants so our bandwidth estimates
//! are comparable with the paper's, independent of our toy crypto's real
//! sizes.

use std::collections::HashMap;

use octopus_id::NodeId;

/// Byte-size constants from paper footnote 4.
pub mod sizes {
    /// One routing-state item (a finger or successor entry): id + address.
    pub const ROUTING_ITEM: u32 = 10;
    /// An ECDSA signature.
    pub const SIGNATURE: u32 = 40;
    /// Timestamp attached to signed routing tables.
    pub const TIMESTAMP: u32 = 4;
    /// An identity certificate (IP 6 + pubkey 20 + expiry 4 + CA sig 20).
    pub const CERTIFICATE: u32 = 50;
    /// AES block size used for onion layers.
    pub const AES_BLOCK: u32 = 16;
    /// UDP/IP header overhead per datagram.
    pub const UDP_HEADER: u32 = 28;
    /// A bare request (opcode + request id + key/target).
    pub const REQUEST: u32 = 24;

    /// A signed routing table of `items` entries: items + signature +
    /// timestamp + the owner's certificate.
    #[must_use]
    pub const fn signed_table(items: u32) -> u32 {
        items * ROUTING_ITEM + SIGNATURE + TIMESTAMP + CERTIFICATE
    }

    /// One onion layer of overhead on a payload (per-hop header rounded
    /// to AES blocks).
    #[must_use]
    pub const fn onion_layer(payload: u32) -> u32 {
        // next-hop item + padding to the next AES block boundary
        let raw = payload + ROUTING_ITEM;
        raw.div_ceil(AES_BLOCK) * AES_BLOCK
    }
}

/// Messages that know their size on the wire.
pub trait WireMsg {
    /// Bytes this message occupies on the wire (excluding UDP headers,
    /// which the ledger adds per datagram).
    fn wire_bytes(&self) -> u32;
}

/// Per-node sent/received byte counters.
#[derive(Clone, Debug, Default)]
pub struct BandwidthLedger {
    sent: HashMap<NodeId, u64>,
    received: HashMap<NodeId, u64>,
    total: u64,
}

impl BandwidthLedger {
    /// Fresh ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one datagram of `bytes` payload from `from` to `to`.
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: u32) {
        let total = u64::from(bytes) + u64::from(sizes::UDP_HEADER);
        *self.sent.entry(from).or_default() += total;
        *self.received.entry(to).or_default() += total;
        self.total += total;
    }

    /// Bytes sent by `node`.
    #[must_use]
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.sent.get(&node).copied().unwrap_or(0)
    }

    /// Bytes received by `node`.
    #[must_use]
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.received.get(&node).copied().unwrap_or(0)
    }

    /// Total bytes moved across the network.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Average per-node consumed bandwidth in kbps over `secs` seconds,
    /// counting each node's sent + received bytes (the "bandwidth
    /// consumption" of Table 3).
    #[must_use]
    pub fn mean_node_kbps(&self, n_nodes: usize, secs: f64) -> f64 {
        if n_nodes == 0 || secs <= 0.0 {
            return 0.0;
        }
        // every byte is counted once as sent and once as received
        let per_node_bytes = (2.0 * self.total as f64) / n_nodes as f64;
        per_node_bytes * 8.0 / 1000.0 / secs
    }

    /// Fold another ledger's counters into this one. A sharded world
    /// keeps one ledger slice per shard (each accounts the traffic its
    /// own nodes send) and absorbs the slices into one ledger for
    /// reporting; addition is commutative, so the merge order can never
    /// change the result.
    pub fn absorb(&mut self, other: &BandwidthLedger) {
        for (&node, &bytes) in &other.sent {
            *self.sent.entry(node).or_default() += bytes; // octolint: allow(OCT-LINT-006) -- u64 += keyed by node: commutative and associative, so visit order cannot change any counter
        }
        for (&node, &bytes) in &other.received {
            *self.received.entry(node).or_default() += bytes; // octolint: allow(OCT-LINT-006) -- same argument as `sent`: per-key commutative u64 merge
        }
        self.total += other.total;
    }

    /// Reset all counters (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_table_size_matches_model() {
        // 12 fingers + 6 successors = 18 items → 180 + 40 + 4 + 50
        assert_eq!(sizes::signed_table(18), 274);
    }

    #[test]
    fn onion_layer_rounds_to_block() {
        assert_eq!(sizes::onion_layer(1) % sizes::AES_BLOCK, 0);
        assert!(sizes::onion_layer(10) >= 10 + sizes::ROUTING_ITEM);
        assert_eq!(sizes::onion_layer(6), 16);
        assert_eq!(sizes::onion_layer(22), 32);
    }

    #[test]
    fn ledger_accounts_both_ends() {
        let mut l = BandwidthLedger::new();
        l.record(NodeId(1), NodeId(2), 100);
        assert_eq!(l.sent_by(NodeId(1)), 128);
        assert_eq!(l.received_by(NodeId(2)), 128);
        assert_eq!(l.sent_by(NodeId(2)), 0);
        assert_eq!(l.total_bytes(), 128);
    }

    #[test]
    fn kbps_computation() {
        let mut l = BandwidthLedger::new();
        // 2 nodes, 1000 bytes payload over 10 s
        l.record(NodeId(1), NodeId(2), 1000 - sizes::UDP_HEADER);
        // per-node bytes = 2*1000/2 = 1000 → 8000 bits / 10 s = 0.8 kbps
        let kbps = l.mean_node_kbps(2, 10.0);
        assert!((kbps - 0.8).abs() < 1e-9, "got {kbps}");
    }

    #[test]
    fn kbps_degenerate() {
        let l = BandwidthLedger::new();
        assert_eq!(l.mean_node_kbps(0, 10.0), 0.0);
        assert_eq!(l.mean_node_kbps(10, 0.0), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut l = BandwidthLedger::new();
        l.record(NodeId(1), NodeId(2), 10);
        l.reset();
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.sent_by(NodeId(1)), 0);
    }
}
