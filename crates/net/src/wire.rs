//! Wire-size model, bandwidth accounting, and the versioned frame codec.
//!
//! The paper's bandwidth numbers (Table 3) are computed from a byte model
//! given in footnote 4: each routing-state item (finger or successor) is
//! 10 bytes, signatures are 40-byte ECDSA with a 4-byte timestamp,
//! certificates are 50 bytes, and onion encryption is AES-128 (16-byte
//! blocks). We adopt exactly those constants so our bandwidth estimates
//! are comparable with the paper's, independent of our toy crypto's real
//! sizes.
//!
//! The frame codec ([`encode_frame`] / [`decode_frame`]) is the *real*
//! byte format the UDP transport ships: a length-prefixed frame carrying
//! magic, schema version, a checksum, the [`FrameHeader`] (sender and
//! destination overlay addresses) and a [`WireCodec`]-encoded payload.
//! Malformed input of any kind is rejected with a [`FrameError`] — the
//! decoder never panics, no matter the bytes. The simulator carries the
//! same [`FrameHeader`] in-memory inside [`crate::shard::Envelope`], so
//! there is exactly one place that says what a frame's addressing means.

use std::collections::HashMap;

use octopus_id::NodeId;

/// Byte-size constants from paper footnote 4.
pub mod sizes {
    /// One routing-state item (a finger or successor entry): id + address.
    pub const ROUTING_ITEM: u32 = 10;
    /// An ECDSA signature.
    pub const SIGNATURE: u32 = 40;
    /// Timestamp attached to signed routing tables.
    pub const TIMESTAMP: u32 = 4;
    /// An identity certificate (IP 6 + pubkey 20 + expiry 4 + CA sig 20).
    pub const CERTIFICATE: u32 = 50;
    /// AES block size used for onion layers.
    pub const AES_BLOCK: u32 = 16;
    /// UDP/IP header overhead per datagram.
    pub const UDP_HEADER: u32 = 28;
    /// A bare request (opcode + request id + key/target).
    pub const REQUEST: u32 = 24;

    /// A signed routing table of `items` entries: items + signature +
    /// timestamp + the owner's certificate.
    #[must_use]
    pub const fn signed_table(items: u32) -> u32 {
        items * ROUTING_ITEM + SIGNATURE + TIMESTAMP + CERTIFICATE
    }

    /// One onion layer of overhead on a payload (per-hop header rounded
    /// to AES blocks).
    #[must_use]
    pub const fn onion_layer(payload: u32) -> u32 {
        // next-hop item + padding to the next AES block boundary
        let raw = payload + ROUTING_ITEM;
        raw.div_ceil(AES_BLOCK) * AES_BLOCK
    }
}

/// Messages that know their size on the wire.
pub trait WireMsg {
    /// Bytes this message occupies on the wire (excluding UDP headers,
    /// which the ledger adds per datagram).
    fn wire_bytes(&self) -> u32;
}

/// Frame magic: the first four bytes of every Octopus datagram.
pub const FRAME_MAGIC: [u8; 4] = *b"OCT0";

/// Schema version carried in every frame. Bump on any incompatible
/// payload-encoding change; decoders reject mismatches outright rather
/// than guessing.
pub const SCHEMA_VERSION: u16 = 1;

/// Hard ceiling on a frame's payload length. Anything larger than a
/// UDP datagram can carry is rejected before allocation, so a forged
/// length field cannot make the decoder reserve memory.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Bytes of frame overhead before the payload: magic (4) + version (2)
/// + payload length (4) + checksum (4) + from (8) + to (8).
pub const FRAME_OVERHEAD: usize = 30;

/// The addressing header every frame carries — and the same header the
/// simulator's [`crate::shard::Envelope`] embeds, so the in-memory and
/// on-the-wire representations can never drift apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sender overlay address.
    pub from: NodeId,
    /// Destination overlay address.
    pub to: NodeId,
}

/// Why a payload failed to decode. Carried inside
/// [`FrameError::BadPayload`]; payload decoders return it instead of
/// panicking on adversarial bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a field was complete.
    Truncated,
    /// An enum discriminant byte had no meaning.
    BadTag(u8),
    /// A length prefix was inconsistent with the bytes that remain.
    BadLength,
    /// Recursive payloads nested deeper than any honest encoder emits.
    TooDeep,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated mid-field"),
            DecodeError::BadTag(t) => write!(f, "unknown discriminant {t}"),
            DecodeError::BadLength => write!(f, "length prefix exceeds remaining bytes"),
            DecodeError::TooDeep => write!(f, "nested payload exceeds depth bound"),
        }
    }
}

/// Why a frame was rejected. Every malformed input maps to one of
/// these; none of them panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed frame overhead.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The schema version did not match [`SCHEMA_VERSION`].
    BadVersion(u16),
    /// The length prefix disagreed with the datagram size or exceeded
    /// [`MAX_PAYLOAD`].
    BadLength {
        /// Payload length the prefix claimed.
        claimed: usize,
        /// Payload bytes actually present.
        have: usize,
    },
    /// The checksum over header addresses + payload did not verify.
    BadChecksum {
        /// Checksum carried by the frame.
        got: u32,
        /// Checksum recomputed from the bytes.
        want: u32,
    },
    /// The payload failed structural decoding.
    BadPayload(DecodeError),
    /// The payload decoded but left unconsumed trailing bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "frame truncated: need {need} bytes, have {have}")
            }
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(f, "schema version {v} (this build speaks {SCHEMA_VERSION})")
            }
            FrameError::BadLength { claimed, have } => {
                write!(
                    f,
                    "length prefix claims {claimed} payload bytes, have {have}"
                )
            }
            FrameError::BadChecksum { got, want } => {
                write!(f, "checksum {got:#010x}, recomputed {want:#010x}")
            }
            FrameError::BadPayload(e) => write!(f, "payload: {e}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Bounds-checked cursor over a payload slice. Every read returns
/// `Err(DecodeError::Truncated)` past the end instead of panicking.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Read a `u32` element count and sanity-check it against the bytes
    /// that remain (each element occupies at least `min_elem_bytes`),
    /// so a forged count cannot drive allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(DecodeError::BadLength);
        }
        Ok(n)
    }
}

/// Payload encoding: the schema-versioned byte representation framed by
/// [`encode_frame`] / [`decode_frame`]. Implemented by the protocol
/// message enum in `octopus-core`; any change to an implementation is a
/// [`SCHEMA_VERSION`] bump.
pub trait WireCodec: Sized {
    /// Append this value's canonical bytes to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader. Must consume exactly the bytes
    /// [`WireCodec::encode_payload`] produced and reject (never panic
    /// on) anything else.
    fn decode_payload(r: &mut PayloadReader<'_>) -> Result<Self, DecodeError>;
}

/// FNV-1a over the checksum-covered region (addresses + payload).
/// Detects corruption, not tampering — authenticity comes from the
/// protocol's signatures, not the frame.
fn fnv1a(chunks: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Encode one frame: `magic ∥ version ∥ payload_len ∥ checksum ∥ from ∥
/// to ∥ payload`.
///
/// # Panics
///
/// If the encoded payload exceeds [`MAX_PAYLOAD`] — honest encoders
/// never produce such a message, so this is a programming error, not an
/// input error.
#[must_use]
pub fn encode_frame<M: WireCodec>(header: FrameHeader, msg: &M) -> Vec<u8> {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload);
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "frame payload {} exceeds MAX_PAYLOAD",
        payload.len()
    );
    let from = header.from.0.to_be_bytes();
    let to = header.to.0.to_be_bytes();
    let checksum = fnv1a(&[&from, &to, &payload]);
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum.to_be_bytes());
    out.extend_from_slice(&from);
    out.extend_from_slice(&to);
    out.extend_from_slice(&payload);
    out
}

/// Decode one frame produced by [`encode_frame`]. Rejects — never
/// panics on — truncation, bad magic, version skew, length lies,
/// checksum mismatches, undecodable payloads and trailing garbage.
pub fn decode_frame<M: WireCodec>(bytes: &[u8]) -> Result<(FrameHeader, M), FrameError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(FrameError::Truncated {
            need: FRAME_OVERHEAD,
            have: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_be_bytes([bytes[4], bytes[5]]);
    if version != SCHEMA_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let claimed = u32::from_be_bytes(bytes[6..10].try_into().expect("4-byte slice")) as usize;
    let have = bytes.len() - FRAME_OVERHEAD;
    if claimed != have || claimed > MAX_PAYLOAD {
        return Err(FrameError::BadLength { claimed, have });
    }
    let got = u32::from_be_bytes(bytes[10..14].try_into().expect("4-byte slice"));
    let from_bytes = &bytes[14..22];
    let to_bytes = &bytes[22..30];
    let payload = &bytes[FRAME_OVERHEAD..];
    let want = fnv1a(&[from_bytes, to_bytes, payload]);
    if got != want {
        return Err(FrameError::BadChecksum { got, want });
    }
    let header = FrameHeader {
        from: NodeId(u64::from_be_bytes(
            from_bytes.try_into().expect("8-byte slice"),
        )),
        to: NodeId(u64::from_be_bytes(
            to_bytes.try_into().expect("8-byte slice"),
        )),
    };
    let mut r = PayloadReader::new(payload);
    let msg = M::decode_payload(&mut r).map_err(FrameError::BadPayload)?;
    if r.remaining() != 0 {
        return Err(FrameError::TrailingBytes(r.remaining()));
    }
    Ok((header, msg))
}

/// Per-node sent/received byte counters.
#[derive(Clone, Debug, Default)]
pub struct BandwidthLedger {
    sent: HashMap<NodeId, u64>,
    received: HashMap<NodeId, u64>,
    total: u64,
}

impl BandwidthLedger {
    /// Fresh ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one datagram of `bytes` payload from `from` to `to`.
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: u32) {
        let total = u64::from(bytes) + u64::from(sizes::UDP_HEADER);
        *self.sent.entry(from).or_default() += total;
        *self.received.entry(to).or_default() += total;
        self.total += total;
    }

    /// Bytes sent by `node`.
    #[must_use]
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.sent.get(&node).copied().unwrap_or(0)
    }

    /// Bytes received by `node`.
    #[must_use]
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.received.get(&node).copied().unwrap_or(0)
    }

    /// Total bytes moved across the network.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Average per-node consumed bandwidth in kbps over `secs` seconds,
    /// counting each node's sent + received bytes (the "bandwidth
    /// consumption" of Table 3).
    #[must_use]
    pub fn mean_node_kbps(&self, n_nodes: usize, secs: f64) -> f64 {
        if n_nodes == 0 || secs <= 0.0 {
            return 0.0;
        }
        // every byte is counted once as sent and once as received
        let per_node_bytes = (2.0 * self.total as f64) / n_nodes as f64;
        per_node_bytes * 8.0 / 1000.0 / secs
    }

    /// Fold another ledger's counters into this one. A sharded world
    /// keeps one ledger slice per shard (each accounts the traffic its
    /// own nodes send) and absorbs the slices into one ledger for
    /// reporting; addition is commutative, so the merge order can never
    /// change the result.
    pub fn absorb(&mut self, other: &BandwidthLedger) {
        for (&node, &bytes) in &other.sent {
            *self.sent.entry(node).or_default() += bytes; // octolint: allow(OCT-LINT-006) -- u64 += keyed by node: commutative and associative, so visit order cannot change any counter
        }
        for (&node, &bytes) in &other.received {
            *self.received.entry(node).or_default() += bytes; // octolint: allow(OCT-LINT-006) -- same argument as `sent`: per-key commutative u64 merge
        }
        self.total += other.total;
    }

    /// Reset all counters (e.g. after a warm-up phase).
    pub fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_table_size_matches_model() {
        // 12 fingers + 6 successors = 18 items → 180 + 40 + 4 + 50
        assert_eq!(sizes::signed_table(18), 274);
    }

    #[test]
    fn onion_layer_rounds_to_block() {
        assert_eq!(sizes::onion_layer(1) % sizes::AES_BLOCK, 0);
        assert!(sizes::onion_layer(10) >= 10 + sizes::ROUTING_ITEM);
        assert_eq!(sizes::onion_layer(6), 16);
        assert_eq!(sizes::onion_layer(22), 32);
    }

    #[test]
    fn ledger_accounts_both_ends() {
        let mut l = BandwidthLedger::new();
        l.record(NodeId(1), NodeId(2), 100);
        assert_eq!(l.sent_by(NodeId(1)), 128);
        assert_eq!(l.received_by(NodeId(2)), 128);
        assert_eq!(l.sent_by(NodeId(2)), 0);
        assert_eq!(l.total_bytes(), 128);
    }

    #[test]
    fn kbps_computation() {
        let mut l = BandwidthLedger::new();
        // 2 nodes, 1000 bytes payload over 10 s
        l.record(NodeId(1), NodeId(2), 1000 - sizes::UDP_HEADER);
        // per-node bytes = 2*1000/2 = 1000 → 8000 bits / 10 s = 0.8 kbps
        let kbps = l.mean_node_kbps(2, 10.0);
        assert!((kbps - 0.8).abs() < 1e-9, "got {kbps}");
    }

    #[test]
    fn kbps_degenerate() {
        let l = BandwidthLedger::new();
        assert_eq!(l.mean_node_kbps(0, 10.0), 0.0);
        assert_eq!(l.mean_node_kbps(10, 0.0), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut l = BandwidthLedger::new();
        l.record(NodeId(1), NodeId(2), 10);
        l.reset();
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.sent_by(NodeId(1)), 0);
    }

    /// Minimal payload codec for exercising the framing layer alone.
    #[derive(Debug, PartialEq, Eq)]
    struct Ping(u64);

    impl WireCodec for Ping {
        fn encode_payload(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0.to_be_bytes());
        }
        fn decode_payload(r: &mut PayloadReader<'_>) -> Result<Self, DecodeError> {
            Ok(Ping(r.u64()?))
        }
    }

    fn header() -> FrameHeader {
        FrameHeader {
            from: NodeId(3),
            to: NodeId(u64::MAX),
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(header(), &Ping(0xdead_beef));
        assert_eq!(frame.len(), FRAME_OVERHEAD + 8);
        let (h, msg) = decode_frame::<Ping>(&frame).expect("roundtrip");
        assert_eq!(h, header());
        assert_eq!(msg, Ping(0xdead_beef));
    }

    #[test]
    fn frame_rejects_every_truncation() {
        let frame = encode_frame(header(), &Ping(7));
        for cut in 0..frame.len() {
            let r = decode_frame::<Ping>(&frame[..cut]);
            assert!(r.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn frame_rejects_bad_magic() {
        let mut frame = encode_frame(header(), &Ping(7));
        frame[0] ^= 0xff;
        assert!(matches!(
            decode_frame::<Ping>(&frame),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn frame_rejects_version_skew() {
        let mut frame = encode_frame(header(), &Ping(7));
        frame[5] = frame[5].wrapping_add(1);
        assert!(matches!(
            decode_frame::<Ping>(&frame),
            Err(FrameError::BadVersion(_))
        ));
    }

    #[test]
    fn frame_rejects_flipped_checksum_and_payload_corruption() {
        let mut frame = encode_frame(header(), &Ping(7));
        frame[10] ^= 0x01; // checksum field itself
        assert!(matches!(
            decode_frame::<Ping>(&frame),
            Err(FrameError::BadChecksum { .. })
        ));
        let mut frame = encode_frame(header(), &Ping(7));
        let last = frame.len() - 1;
        frame[last] ^= 0x80; // payload byte: checksum must catch it
        assert!(matches!(
            decode_frame::<Ping>(&frame),
            Err(FrameError::BadChecksum { .. })
        ));
        let mut frame = encode_frame(header(), &Ping(7));
        frame[20] ^= 0x04; // header address byte: also covered
        assert!(matches!(
            decode_frame::<Ping>(&frame),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn frame_rejects_length_lies_and_trailing_bytes() {
        let mut frame = encode_frame(header(), &Ping(7));
        frame[9] = frame[9].wrapping_add(1); // length prefix no longer matches
        assert!(matches!(
            decode_frame::<Ping>(&frame),
            Err(FrameError::BadLength { .. })
        ));
        // a frame whose payload is longer than the codec consumes
        let inner = encode_frame(header(), &Ping(7));
        let mut padded = inner[..FRAME_OVERHEAD].to_vec();
        let mut payload = inner[FRAME_OVERHEAD..].to_vec();
        payload.push(0xaa);
        padded[6..10].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        let from = header().from.0.to_be_bytes();
        let to = header().to.0.to_be_bytes();
        let sum = fnv1a(&[&from, &to, &payload]);
        padded[10..14].copy_from_slice(&sum.to_be_bytes());
        padded.extend_from_slice(&payload);
        assert_eq!(
            decode_frame::<Ping>(&padded),
            Err(FrameError::TrailingBytes(1))
        );
    }

    #[test]
    fn seq_len_guards_allocation() {
        let bytes = [0xff, 0xff, 0xff, 0xff, 0, 0];
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.seq_len(8), Err(DecodeError::BadLength));
    }
}
