//! Simulated wide-area network for the Octopus evaluation.
//!
//! The paper measures latency on PlanetLab and models the WAN in its
//! security simulator with the King dataset (measured DNS-to-DNS RTTs,
//! mean ≈ 182 ms, highly heterogeneous; §5.1 footnote 2). We have no
//! King file, so [`latency::KingLikeLatency`] synthesizes an equivalent:
//! nodes are embedded in a 2-D geography, pairwise one-way latency is the
//! embedded distance scaled by a per-node-pair lognormal factor, and the
//! whole distribution is calibrated so the mean RTT is ≈ 182 ms. Packet
//! jitter follows the rule the paper takes from \[2\]: min(10 ms, 10 % of
//! the transmission latency).
//!
//! On top of the latency model, [`world::World`] provides a deterministic
//! message-passing substrate over `octopus-sim` event queues: nodes
//! implement [`world::NodeBehavior`] and exchange typed messages;
//! delivery samples the latency model; every message is byte-accounted
//! against [`wire::BandwidthLedger`] using the paper's wire-size model
//! (footnote 4).
//!
//! For large rings the world is *sharded* ([`shard`]): contiguous ID
//! ranges ([`shard::ShardMap`]) each own a node slab ([`slab`]), an
//! event queue, pooled scratch buffers and a bandwidth-ledger slice,
//! linked by a cross-shard message bus ([`shard::CrossShardBus`]) that
//! synchronizes conservatively at lookahead barriers bounded by
//! [`LatencyModel::min_latency`]. Every event's `(time, key)` ordering
//! key derives from its origin node — no shard-dependent counters — so
//! any shard count, either window execution mode
//! ([`world::World::run_window`] runs shard batches on scoped threads
//! when [`world::World::set_parallel`] is on), and 1 shard in
//! particular (the classic single-queue engine) all produce
//! byte-identical results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod pool;
pub mod runtime;
pub mod shard;
pub mod slab;
pub mod wire;
pub mod world;

pub use latency::{ConstantLatency, KingLikeLatency, LatencyModel};
pub use octopus_sim::SchedulerKind;
pub use runtime::{Addr, Ctx, NodeBehavior, Runtime, Transport};
pub use shard::{CrossShardBus, Envelope, ShardMap};
pub use slab::{NodeSlab, SlotKey};
pub use wire::{
    decode_frame, encode_frame, sizes, BandwidthLedger, DecodeError, FrameError, FrameHeader,
    PayloadReader, WireCodec, WireMsg,
};
pub use world::{StepOutcome, World};
