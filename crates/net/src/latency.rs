//! Pairwise latency models (King-dataset substitute).

use octopus_id::NodeId;
use octopus_sim::Duration;
use rand::Rng;

/// A model of one-way network latency between overlay nodes.
pub trait LatencyModel {
    /// Sample the one-way latency for a packet `from → to`, including
    /// jitter. Deterministic models may ignore `rng`.
    fn sample<R: Rng + ?Sized>(&self, from: NodeId, to: NodeId, rng: &mut R) -> Duration;

    /// The *base* (jitter-free) one-way latency, used by the timing
    /// analysis attack which compares upstream and downstream latencies
    /// (paper §4.7).
    fn base(&self, from: NodeId, to: NodeId) -> Duration;

    /// A lower bound on every latency [`LatencyModel::sample`] can ever
    /// return, for any pair and any jitter draw.
    ///
    /// This is the *lookahead* of a sharded world: cross-shard messages
    /// sent at time `t` provably arrive no earlier than
    /// `t + min_latency()`, which bounds how far shards may run between
    /// synchronization barriers. The default of zero is always sound
    /// but forces a barrier before every event; override it with the
    /// model's true floor to let shards batch.
    fn min_latency(&self) -> Duration {
        Duration::ZERO
    }
}

/// Fixed latency for unit tests.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub Duration);

impl LatencyModel for ConstantLatency {
    fn sample<R: Rng + ?Sized>(&self, _: NodeId, _: NodeId, _: &mut R) -> Duration {
        self.0
    }
    fn base(&self, _: NodeId, _: NodeId) -> Duration {
        self.0
    }
    fn min_latency(&self) -> Duration {
        self.0
    }
}

/// Synthetic King-like latency.
///
/// Each node id is hashed onto a point in a 2-D unit square and given a
/// per-node "access penalty" drawn from a heavy-tailed distribution (the
/// King data mixes well-connected and poorly connected name servers). The
/// base one-way latency `from → to` is
///
/// ```text
/// base = (geo_scale · euclidean(from, to) + penalty(from) + penalty(to)) ms
/// ```
///
/// calibrated so that the mean RTT (2·base) is ≈ 182 ms, matching the
/// published King mean (§5.1 footnote 2). Sampling adds symmetric jitter
/// of up to min(10 ms, 10 % of base), the rule the paper adopts from \[2\].
///
/// The model is deterministic in the node ids, so `base(a,b) == base(b,a)`
/// — the symmetry the end-to-end timing attack exploits — while different
/// pairs get very different latencies (heterogeneity).
#[derive(Clone, Debug)]
pub struct KingLikeLatency {
    seed: u64,
    geo_scale_ms: f64,
    penalty_scale_ms: f64,
}

impl Default for KingLikeLatency {
    fn default() -> Self {
        Self::new(0xD157_AB1E)
    }
}

impl KingLikeLatency {
    /// Model with calibration matching the King mean RTT of ≈ 182 ms.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // E[euclidean distance in unit square] ≈ 0.5214.
        // E[penalty] = penalty_scale · E[lognormal-ish factor] (≈ 1.0 by
        // construction below). Choose scales so
        //   mean one-way ≈ geo_scale·0.5214 + 2·penalty_scale ≈ 91 ms.
        KingLikeLatency {
            seed,
            geo_scale_ms: 105.0,
            penalty_scale_ms: 18.2,
        }
    }

    fn mix(&self, x: u64) -> u64 {
        octopus_sim::split_seed(self.seed, x)
    }

    fn coords(&self, id: NodeId) -> (f64, f64) {
        let h = self.mix(id.0);
        let x = (h >> 32) as f64 / u32::MAX as f64;
        let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
        (x, y)
    }

    /// Heavy-tailed per-node access penalty with mean ≈ 1 (then scaled).
    ///
    /// The King data mixes well-connected name servers with a minority
    /// behind very slow links; the tail below (≈10 % of nodes, penalties
    /// up to ≈10×) reproduces the dataset's mean ≪ max structure that
    /// makes Halo's wait-for-all-32 so expensive (Table 3: mean 6.89 s
    /// vs median 1.79 s).
    fn penalty(&self, id: NodeId) -> f64 {
        let h = self.mix(id.0 ^ 0xACCE_55ED);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform (0,1)
        let u = u.clamp(1e-9, 1.0 - 1e-9);
        // mean ≈ 0.35 + 0.20 + 0.10·5 = 1.05
        0.35 + 0.20 * (-(1.0 - u).ln())
            + if u > 0.90 {
                10.0 * (u - 0.90) / 0.10
            } else {
                0.0
            }
    }

    /// Jitter bound for a given base latency: min(10 ms, 10 % of base).
    #[must_use]
    pub fn jitter_bound(base: Duration) -> Duration {
        Duration::from_millis_f64((base.as_millis_f64() * 0.10).min(10.0))
    }

    fn base_ms(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let geo = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        // order-independent so latency is symmetric
        self.geo_scale_ms * geo + self.penalty_scale_ms * (self.penalty(a) + self.penalty(b))
    }
}

impl LatencyModel for KingLikeLatency {
    fn sample<R: Rng + ?Sized>(&self, from: NodeId, to: NodeId, rng: &mut R) -> Duration {
        let base = self.base(from, to);
        let bound = Self::jitter_bound(base).as_millis_f64();
        let jitter = rng.gen_range(-bound..=bound);
        Duration::from_millis_f64((base.as_millis_f64() + jitter).max(0.1))
    }

    fn base(&self, from: NodeId, to: NodeId) -> Duration {
        Duration::from_millis_f64(self.base_ms(from, to).max(0.1))
    }

    /// `sample` clamps every draw to at least 0.1 ms, so that clamp is
    /// the model's exact floor.
    fn min_latency(&self) -> Duration {
        Duration::from_millis_f64(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(n: usize) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n).map(|_| NodeId(rng.gen())).collect()
    }

    #[test]
    fn symmetric_base() {
        let m = KingLikeLatency::new(1);
        for w in ids(20).windows(2) {
            assert_eq!(m.base(w[0], w[1]), m.base(w[1], w[0]));
        }
    }

    #[test]
    fn mean_rtt_near_king() {
        let m = KingLikeLatency::new(2);
        let nodes = ids(300);
        let mut total = 0.0;
        let mut count = 0u64;
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                total += 2.0 * m.base(nodes[i], nodes[j]).as_millis_f64();
                count += 1;
            }
        }
        let mean_rtt = total / count as f64;
        assert!(
            (140.0..230.0).contains(&mean_rtt),
            "mean RTT {mean_rtt} ms should be near the King mean of 182 ms"
        );
    }

    #[test]
    fn heterogeneous() {
        let m = KingLikeLatency::new(3);
        let nodes = ids(100);
        let mut lats: Vec<f64> = Vec::new();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                lats.push(m.base(nodes[i], nodes[j]).as_millis_f64());
            }
        }
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        let max = lats.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max / min > 4.0,
            "King data is highly heterogeneous (got {min}..{max})"
        );
    }

    #[test]
    fn jitter_within_bound() {
        let m = KingLikeLatency::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b) = (NodeId(1), NodeId(2));
        let base = m.base(a, b);
        let bound = KingLikeLatency::jitter_bound(base);
        for _ in 0..200 {
            let s = m.sample(a, b, &mut rng);
            let dev = if s > base { (s - base).0 } else { (base - s).0 };
            assert!(dev <= bound.0 + 1, "jitter exceeded bound");
        }
    }

    #[test]
    fn jitter_rule_small_latency() {
        // 10% of 40ms = 4ms < 10ms cap
        let b = Duration::from_millis(40);
        assert_eq!(KingLikeLatency::jitter_bound(b), Duration::from_millis(4));
        // 10% of 200ms = 20ms → capped at 10ms
        let b = Duration::from_millis(200);
        assert_eq!(KingLikeLatency::jitter_bound(b), Duration::from_millis(10));
    }

    #[test]
    fn constant_model() {
        let m = ConstantLatency(Duration::from_millis(50));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            m.sample(NodeId(1), NodeId(2), &mut rng),
            Duration::from_millis(50)
        );
        assert_eq!(m.base(NodeId(1), NodeId(2)), Duration::from_millis(50));
    }

    #[test]
    fn deterministic_across_instances() {
        let m1 = KingLikeLatency::new(7);
        let m2 = KingLikeLatency::new(7);
        assert_eq!(
            m1.base(NodeId(10), NodeId(20)),
            m2.base(NodeId(10), NodeId(20))
        );
    }
}
