//! Generational slab storage for world-hosted nodes.
//!
//! An early version of the [`World`](crate::World) kept its nodes in a
//! `HashMap<Addr, Node>`; at N = 10k–100k the per-event hashing and the
//! pointer-chasing iteration dominate. [`NodeSlab`] stores values in a
//! dense `Vec` of slots with an `Addr → slot` index on the side: lookups
//! hash once, the hot take/restore cycle of event dispatch touches only
//! the slot, and iteration is a linear scan. Slots are *generational* —
//! each reuse bumps a generation counter so a stale [`SlotKey`] held
//! across a churn-out can never alias the slot's next occupant. A
//! sharded world keeps one slab per shard, so each stays dense and
//! cache-friendly even as the total ring grows toward millions of ids.

use std::collections::HashMap;

use crate::world::Addr;

/// A stable handle to an occupied slot: index plus the generation at
/// acquisition time. Resolving a key whose slot has since been freed or
/// reused yields `None`, never another node's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<(Addr, T)>,
}

/// Dense generational storage with address lookup.
#[derive(Debug)]
pub struct NodeSlab<T> {
    slots: Vec<Slot<T>>,
    index: HashMap<Addr, u32>, // keyed O(1) lookup on the per-event hot path; never iterated
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for NodeSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> NodeSlab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        NodeSlab {
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `capacity` values before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSlab {
            slots: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `addr` present?
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.index.contains_key(&addr)
    }

    /// Insert `value` under `addr`, returning its key. Replaces (and
    /// returns) any previous value stored under the same address; keys
    /// taken against the replaced occupant go stale.
    ///
    /// # Panics
    /// Panics when the address's slot is reserved by an un-restored
    /// [`NodeSlab::take`] — inserting over a taken value is always a
    /// dispatch-logic bug.
    pub fn insert(&mut self, addr: Addr, value: T) -> (SlotKey, Option<T>) {
        if let Some(&idx) = self.index.get(&addr) {
            let slot = &mut self.slots[idx as usize];
            let old = slot.value.replace((addr, value)).map(|(_, v)| v);
            assert!(
                old.is_some(),
                "insert over a slot reserved by take (restore it first)"
            );
            // the replacement is a new occupant: retire outstanding keys
            slot.generation = slot.generation.wrapping_add(1);
            return (
                SlotKey {
                    index: idx,
                    generation: slot.generation,
                },
                old,
            );
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize].value = Some((addr, value));
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("slab index fits u32");
                self.slots.push(Slot {
                    generation: 0,
                    value: Some((addr, value)),
                });
                idx
            }
        };
        self.index.insert(addr, idx);
        self.len += 1;
        (
            SlotKey {
                index: idx,
                generation: self.slots[idx as usize].generation,
            },
            None,
        )
    }

    /// Remove and return the value under `addr`, bumping the slot's
    /// generation so outstanding keys to it go stale.
    pub fn remove(&mut self, addr: Addr) -> Option<T> {
        let idx = self.index.remove(&addr)?;
        let slot = &mut self.slots[idx as usize];
        let (_, value) = slot.value.take().expect("indexed slot must be occupied");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx);
        self.len -= 1;
        Some(value)
    }

    /// Shared access by address.
    #[must_use]
    pub fn get(&self, addr: Addr) -> Option<&T> {
        let &idx = self.index.get(&addr)?;
        self.slots[idx as usize].value.as_ref().map(|(_, v)| v)
    }

    /// Mutable access by address.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        let &idx = self.index.get(&addr)?;
        self.slots[idx as usize].value.as_mut().map(|(_, v)| v)
    }

    /// The current key for `addr`, for later `O(1)` access via
    /// [`NodeSlab::get_key`].
    #[must_use]
    pub fn key_of(&self, addr: Addr) -> Option<SlotKey> {
        let &idx = self.index.get(&addr)?;
        Some(SlotKey {
            index: idx,
            generation: self.slots[idx as usize].generation,
        })
    }

    /// Shared access by key; `None` when the key went stale.
    #[must_use]
    pub fn get_key(&self, key: SlotKey) -> Option<&T> {
        let slot = self.slots.get(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_ref().map(|(_, v)| v)
    }

    /// Take the value out of its slot for re-entrant processing, leaving
    /// the slot reserved (address still indexed). Pair with
    /// [`NodeSlab::restore`]; the round trip costs one hash lookup and
    /// two `Option` moves — no rehashing, no slot churn.
    pub fn take(&mut self, addr: Addr) -> Option<(SlotKey, T)> {
        let &idx = self.index.get(&addr)?;
        let slot = &mut self.slots[idx as usize];
        let (_, value) = slot.value.take()?;
        Some((
            SlotKey {
                index: idx,
                generation: slot.generation,
            },
            value,
        ))
    }

    /// Put a taken value back into its reserved slot.
    ///
    /// # Panics
    /// Panics when `key` does not name the reserved slot of a preceding
    /// [`NodeSlab::take`] — restoring into a reused or occupied slot is
    /// always a dispatch-logic bug.
    pub fn restore(&mut self, addr: Addr, key: SlotKey, value: T) {
        let slot = &mut self.slots[key.index as usize];
        assert!(
            slot.generation == key.generation && slot.value.is_none(),
            "restore into a slot that was not reserved by take"
        );
        slot.value = Some((addr, value));
    }

    /// Iterate `(addr, &value)` pairs in slot order (a dense scan).
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.value.as_ref().map(|(a, v)| (*a, v)))
    }

    /// Iterate stored addresses in slot order.
    pub fn addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.iter().map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_id::NodeId;

    #[test]
    fn insert_get_remove() {
        let mut s: NodeSlab<u32> = NodeSlab::new();
        assert!(s.is_empty());
        s.insert(NodeId(10), 100);
        s.insert(NodeId(20), 200);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(NodeId(10)), Some(&100));
        *s.get_mut(NodeId(20)).unwrap() += 1;
        assert_eq!(s.get(NodeId(20)), Some(&201));
        assert_eq!(s.remove(NodeId(10)), Some(100));
        assert_eq!(s.get(NodeId(10)), None);
        assert_eq!(s.remove(NodeId(10)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_replaces_same_addr() {
        let mut s: NodeSlab<u32> = NodeSlab::new();
        let (k1, _) = s.insert(NodeId(1), 1);
        let (k2, old) = s.insert(NodeId(1), 2);
        assert_eq!(old, Some(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(NodeId(1)), Some(&2));
        // the replaced occupant's key must not alias the new one
        assert_eq!(s.get_key(k1), None, "stale key after replacement");
        assert_eq!(s.get_key(k2), Some(&2));
    }

    #[test]
    fn slots_are_reused_densely() {
        let mut s: NodeSlab<u32> = NodeSlab::new();
        for i in 0..8u64 {
            s.insert(NodeId(i), i as u32);
        }
        for i in 0..4u64 {
            s.remove(NodeId(i));
        }
        // churn back in: the freed slots are reused, no growth
        for i in 0..4u64 {
            s.insert(NodeId(100 + i), 0);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.slots.len(), 8, "freed slots must be reused");
    }

    #[test]
    fn stale_keys_never_alias() {
        let mut s: NodeSlab<u32> = NodeSlab::new();
        let (k1, _) = s.insert(NodeId(1), 11);
        assert_eq!(s.get_key(k1), Some(&11));
        s.remove(NodeId(1));
        assert_eq!(s.get_key(k1), None, "freed slot");
        // reuse the slot for another node: the old key must stay dead
        s.insert(NodeId(2), 22);
        assert_eq!(s.get_key(k1), None, "reused slot, stale generation");
        let k2 = s.key_of(NodeId(2)).unwrap();
        assert_eq!(s.get_key(k2), Some(&22));
    }

    #[test]
    fn take_restore_roundtrip() {
        let mut s: NodeSlab<String> = NodeSlab::new();
        s.insert(NodeId(5), "five".to_string());
        let (key, mut v) = s.take(NodeId(5)).unwrap();
        assert!(s.take(NodeId(5)).is_none(), "already taken");
        assert!(s.contains(NodeId(5)), "slot stays reserved while taken");
        v.push('!');
        s.restore(NodeId(5), key, v);
        assert_eq!(s.get(NodeId(5)).map(String::as_str), Some("five!"));
    }

    #[test]
    #[should_panic(expected = "restore into a slot that was not reserved")]
    fn restore_into_reused_slot_panics() {
        let mut s: NodeSlab<u32> = NodeSlab::new();
        s.insert(NodeId(1), 1);
        let (key, _) = s.take(NodeId(1)).unwrap();
        s.restore(NodeId(1), key, 1);
        s.remove(NodeId(1));
        s.insert(NodeId(2), 2); // reuses the slot, new generation
        s.restore(NodeId(1), key, 9);
    }

    #[test]
    fn iteration_is_deterministic_slot_order() {
        let mut s: NodeSlab<u32> = NodeSlab::new();
        for i in [5u64, 3, 9, 1] {
            s.insert(NodeId(i), i as u32);
        }
        s.remove(NodeId(3));
        s.insert(NodeId(7), 7); // reuses node 3's slot
        let order: Vec<u64> = s.addrs().map(|a| a.0).collect();
        assert_eq!(order, vec![5, 7, 9, 1]);
    }
}
