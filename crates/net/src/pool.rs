//! Persistent shard worker pool for parallel lookahead windows.
//!
//! [`crate::world::World::run_window`] used to spawn one scoped thread
//! per shard *per window*. With a fine `min_latency` floor windows are
//! tiny (tens of microseconds of work), so per-window thread creation
//! dominated and parallel mode lost to sequential stepping. This module
//! replaces the spawn with a pool of long-lived workers coordinated by
//! an epoch barrier, so dispatching a window costs two barrier
//! crossings instead of N thread spawns.
//!
//! # Barrier protocol
//!
//! The pool and the dispatcher (the thread driving the `World`) share a
//! `PoolShared` allocation:
//!
//! 1. **Dispatch.** The dispatcher moves each shard into its slot
//!    (`Mutex<Option<Shard>>` — a struct move, not a copy of the
//!    shard's storage), publishes the window bounds, resets the done
//!    counter, bumps the epoch counter and unparks every worker.
//! 2. **Execute.** Each worker wakes, observes the new epoch, and runs
//!    `run_batch` for its assigned slots (slot `i` belongs to worker
//!    `i mod workers`), taking the shard out of the slot for the
//!    duration so workers never contend on shard state.
//! 3. **Join.** The last worker to finish signals a condvar the
//!    dispatcher waits on; the dispatcher then moves every shard back
//!    out of its slot, in index order, and the barrier merge proceeds
//!    exactly as in sequential mode.
//!
//! A worker panic is caught, stashed, and handed back to the
//! dispatcher after the barrier completes, which re-raises it only
//! once its own barrier merge has run — so a poisoned window can never
//! hang the driver, strand shards inside the pool, or leave the world
//! inconsistent for the windows (or the drop) that follow.
//!
//! Determinism is untouched by construction: workers only ever run the
//! same `run_batch` bodies the sequential path runs, on disjoint shard
//! state, between the same barriers. The pool width (like shard count
//! and backend choice) is a pure speed knob — the `engine_determinism`
//! suite pins byte-identical reports across pool widths.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{JoinHandle, Thread};

use octopus_sim::SimTime;

use crate::latency::LatencyModel;
use crate::shard::ShardMap;
use crate::world::{NodeBehavior, Shard, ShardCtx};

/// Effective worker count for a parallel window dispatch: the explicit
/// override if non-zero, else `OCTOPUS_POOL_THREADS`, else the
/// machine's available parallelism — always capped at the shard count
/// (more workers than shards would just park). A result of `0` or `1`
/// means the dispatcher should run batches inline: one worker behind a
/// barrier is strictly worse than no barrier.
///
/// Worker count never affects results (the determinism contract); it
/// only sizes the fan-out, which is why reading host parallelism here
/// is sanctioned.
#[must_use]
pub fn worker_count(override_threads: usize, shards: usize) -> usize {
    let width = if override_threads > 0 {
        override_threads
    } else {
        std::env::var("OCTOPUS_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or_else(|| {
                // Sanctioned thread-count site (OCT-LINT-004): sizing
                // the worker pool; execution stays byte-identical at
                // every width.
                #[allow(clippy::disallowed_methods)]
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    };
    width.min(shards)
}

/// State shared between the dispatcher and the pool's worker threads.
struct PoolShared<B: NodeBehavior, L> {
    /// One slot per shard. A shard lives here only while a window is in
    /// flight; the dispatcher owns it otherwise.
    slots: Vec<Mutex<Option<Shard<B>>>>,
    /// Fixed per-world execution environment.
    map: ShardMap,
    master_seed: u64,
    latency: Arc<L>,
    /// Current window's lookahead bound (published before the epoch
    /// bump, read after the epoch observation).
    window_end: AtomicU64,
    /// Current window's exclusive execution bound.
    exec_end: AtomicU64,
    /// Window generation counter: a bump is the "go" signal.
    epoch: AtomicU64,
    /// Workers finished with the current epoch.
    done: Mutex<u64>,
    /// Signalled by the last worker of an epoch.
    done_cv: Condvar,
    /// Tells parked workers to exit instead of waiting for an epoch.
    shutdown: AtomicBool,
    /// First worker panic of the current epoch, re-raised on the
    /// dispatcher after the barrier.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A pool of persistent shard workers (see the module docs for the
/// barrier protocol). Owned by a `World`; dropped with it, which shuts
/// the workers down and joins them.
pub(crate) struct ShardPool<B: NodeBehavior, L> {
    shared: Arc<PoolShared<B, L>>,
    /// Worker join handles, drained (joined) on drop.
    handles: Vec<JoinHandle<()>>,
    /// Unpark handles, one per worker, for the "go" signal.
    threads: Vec<Thread>,
    workers: usize,
}

impl<B: NodeBehavior, L> ShardPool<B, L>
where
    B: Send + 'static,
    B::Msg: Send + 'static,
    B::Timer: Send + 'static,
    B::Control: Send + 'static,
    L: LatencyModel + Send + Sync + 'static,
{
    /// Spawn `workers` persistent worker threads serving `shards` slots.
    pub(crate) fn new(
        shards: usize,
        workers: usize,
        map: ShardMap,
        master_seed: u64,
        latency: Arc<L>,
    ) -> Self {
        let workers = workers.clamp(1, shards.max(1));
        let shared = Arc::new(PoolShared {
            slots: (0..shards).map(|_| Mutex::new(None)).collect(),
            map,
            master_seed,
            latency,
            window_end: AtomicU64::new(0),
            exec_end: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("octopus-shard-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w, workers))
                    .expect("spawn shard worker thread")
            })
            .collect();
        let threads = handles.iter().map(|h| h.thread().clone()).collect();
        ShardPool {
            shared,
            handles,
            threads,
            workers,
        }
    }

    /// Execute one window across the pool: move the shards into their
    /// slots, open the epoch, wait for every worker, and move the
    /// shards back — in index order, so the caller's barrier merge sees
    /// exactly the layout sequential execution leaves behind.
    ///
    /// Returns the first batch-panic payload (if any) instead of
    /// re-raising it here: the caller must finish its barrier merge —
    /// park the completed batches' envelopes, advance the clock — and
    /// only then resume the unwind, or the world would be left with
    /// stale outgoing lanes that later windows park against a newer
    /// clock.
    pub(crate) fn run_window(
        &self,
        shards: &mut Vec<Shard<B>>,
        window_end: SimTime,
        exec_end: SimTime,
    ) -> Option<Box<dyn std::any::Any + Send>> {
        let shared = &self.shared;
        debug_assert_eq!(shards.len(), shared.slots.len());
        for (slot, shard) in shared.slots.iter().zip(shards.drain(..)) {
            *slot.lock().expect("shard slot poisoned") = Some(shard);
        }
        shared.window_end.store(window_end.0, Ordering::Relaxed);
        shared.exec_end.store(exec_end.0, Ordering::Relaxed);
        *shared.done.lock().expect("done counter poisoned") = 0;
        // The Release bump publishes the slot fills and window bounds
        // to every worker whose epoch load Acquires it.
        shared.epoch.fetch_add(1, Ordering::Release);
        for t in &self.threads {
            t.unpark();
        }
        let mut done = shared.done.lock().expect("done counter poisoned");
        while *done < self.workers as u64 {
            done = shared
                .done_cv
                .wait(done)
                .expect("done condvar wait poisoned");
        }
        drop(done);
        shards.extend(shared.slots.iter().map(|slot| {
            slot.lock()
                .expect("shard slot poisoned")
                .take()
                .expect("worker returned its shard")
        }));
        shared.panic.lock().expect("panic slot poisoned").take()
    }
}

impl<B: NodeBehavior, L> Drop for ShardPool<B, L> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in &self.threads {
            t.unpark();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked already stashed its payload; the
            // join error itself carries nothing further.
            let _ = handle.join();
        }
    }
}

/// Body of one persistent worker: wait for an epoch bump, run the
/// batches of every slot assigned to this worker, report done, repeat
/// until shutdown.
fn worker_loop<B, L>(shared: &PoolShared<B, L>, worker: usize, workers: usize)
where
    B: NodeBehavior,
    L: LatencyModel,
{
    let mut seen_epoch = 0u64;
    loop {
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let epoch = shared.epoch.load(Ordering::Acquire);
            if epoch != seen_epoch {
                seen_epoch = epoch;
                break;
            }
            // A leftover unpark token makes this return immediately
            // once; the epoch re-check above absorbs the spurious wake.
            std::thread::park();
        }
        let ctx = ShardCtx {
            map: shared.map,
            latency: &*shared.latency,
            master_seed: shared.master_seed,
            window_end: SimTime(shared.window_end.load(Ordering::Relaxed)),
            exec_end: SimTime(shared.exec_end.load(Ordering::Relaxed)),
        };
        let mut idx = worker;
        while idx < shared.slots.len() {
            let taken = shared.slots[idx]
                .lock()
                .expect("shard slot poisoned")
                .take();
            if let Some(mut shard) = taken {
                let result = catch_unwind(AssertUnwindSafe(|| shard.run_batch(&ctx)));
                // Return the shard even on panic: the dispatcher must
                // be able to reclaim every slot before it re-raises.
                *shared.slots[idx].lock().expect("shard slot poisoned") = Some(shard);
                if let Err(payload) = result {
                    let mut slot = shared.panic.lock().expect("panic slot poisoned");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            idx += workers;
        }
        let mut done = shared.done.lock().expect("done counter poisoned");
        *done += 1;
        if *done == workers as u64 {
            shared.done_cv.notify_one();
        }
    }
}
