//! Executable reference model of the Octopus protocol semantics.
//!
//! Every other correctness check in this workspace compares the engine
//! against another configuration of the same engine (the determinism
//! cube, the pooled-window pins, the ledger counts). A bug shared by
//! every configuration is invisible to all of them. This crate is the
//! independent second implementation that closes that gap: a small,
//! obviously-correct transition system over the protocol decisions the
//! paper's security argument rests on — receipt-chained onion
//! forwarding, certificate-verified routing tables, and CA report
//! intake / revocation.
//!
//! # Shape
//!
//! The model is a pure fold. [`step`] consumes one [`ModelEvent`] — a
//! semantic record of a decision the engine made, carrying the *inputs*
//! the engine saw and the *claim* of what it decided — and returns the
//! next [`ModelState`] plus any [`ModelOutput`]s. The model recomputes
//! every decision from the event inputs and its own tracked state;
//! whenever the engine's claim disagrees, the model emits a
//! [`ModelOutput::Divergence`]. Claims that additionally breach a
//! protocol invariant (a forged receipt accepted, a revoked certificate
//! honoured) are recorded as violations on the state, where
//! [`check_invariants`] reports them.
//!
//! Deliberate non-goals, by design: no slabs, no pooling, no shards, no
//! dependencies. Plain `BTreeMap`s and `u64` identifiers only, so the
//! model stays reviewable end-to-end and cannot share code — or bugs —
//! with the engine crates.
//!
//! # What the model tracks
//!
//! * **Membership** — which nodes are live and which are revoked, from
//!   driver-level join / kill / revocation events.
//! * **Receipt chains** — for each `(node, flow)`, which relay the node
//!   expects a forwarding receipt from; fed by anonymous-send and onion
//!   hop events, drained by receipt acceptance and deadline expiry.
//! * **Lookup targets** — for each `(node, lookup)`, which table owner
//!   the node awaits; checked when the engine judges an incoming
//!   signed routing table.
//! * **CA intake** — the validity gates of the three report kinds and
//!   the CA's receipt verification, cross-checked against the model's
//!   own revocation set.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

/// Which misbehaviour report variant the certificate authority
/// received. Mirrors the engine's `Report` enum by name only — the
/// model never sees wire payloads, just the gate inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReportKind {
    /// A successor/predecessor list omits a node it should contain.
    ListOmission,
    /// A finger entry disagrees with the finger's own neighbourhood.
    FingerManipulation,
    /// An anonymous flow's relay chain dropped the query.
    Dropper,
}

/// One semantic protocol event observed from the engine.
///
/// Each variant records the *inputs* to a protocol decision exactly as
/// the engine saw them, plus the engine's *claim* about the outcome
/// (the `accepted` / `forwarded_to` / `tracked` fields). The model
/// recomputes the outcome independently and flags disagreement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelEvent {
    /// A node joined the ring (genesis population or churn re-join).
    NodeJoined {
        /// The joining node.
        node: u64,
    },
    /// A live node died (churn).
    NodeKilled {
        /// The dying node.
        node: u64,
    },
    /// The CA revoked a node's certificate and the driver removed the
    /// node from the ground truth.
    RevocationApplied {
        /// The revoked node.
        node: u64,
    },
    /// An honest node launched an anonymous action: it built an onion
    /// route and now awaits a receipt from the first relay.
    AnonSent {
        /// The initiator.
        node: u64,
        /// The flow identifier of the onion circuit.
        flow: u64,
        /// The first relay, from which a receipt is expected.
        first: u64,
    },
    /// An honest node processed one onion hop: acknowledged it with a
    /// receipt, then either forwarded the peeled packet or acted as the
    /// exit.
    OnionProcessed {
        /// The relay processing the hop.
        node: u64,
        /// The previous hop the packet arrived from.
        from: u64,
        /// The flow identifier.
        flow: u64,
        /// The next hop named by the packet's remaining route, if any.
        route_next: Option<u64>,
        /// Engine claim: a receipt was sent back to `from`.
        receipt_sent: bool,
        /// Engine claim: the packet was forwarded to this node.
        forwarded_to: Option<u64>,
        /// Engine claim: this node acted as the exit for the flow.
        exited: bool,
    },
    /// An honest node judged an incoming receipt token against its
    /// awaited-receipt table.
    ReceiptChecked {
        /// The node holding the receipt expectation.
        node: u64,
        /// The sender of the receipt message.
        from: u64,
        /// The flow the token covers.
        flow: u64,
        /// The relay the token claims to be signed by.
        signer: u64,
        /// Engine claim: the receipt was accepted and the wait cleared.
        accepted: bool,
    },
    /// An honest node's receipt deadline fired and cleared the wait.
    ReceiptExpired {
        /// The node abandoning the wait.
        node: u64,
        /// The flow whose receipt never arrived in time.
        flow: u64,
    },
    /// An honest node (re-)queried the next hop of a secure lookup; it
    /// now awaits a signed routing table owned by `target`.
    LookupQuery {
        /// The lookup initiator.
        node: u64,
        /// The initiator-local lookup identifier.
        lookup: u64,
        /// The node whose table is awaited.
        target: u64,
    },
    /// An honest node judged an incoming signed routing table for a
    /// pending lookup.
    TableChecked {
        /// The lookup initiator.
        node: u64,
        /// The initiator-local lookup identifier.
        lookup: u64,
        /// The owner named by the table.
        owner: u64,
        /// The owner the engine says it is awaiting.
        awaiting: u64,
        /// Independently recomputed: the table's certificate and
        /// signature verify (not expired, not forged).
        sig_ok: bool,
        /// Engine claim: the table was accepted and the lookup advanced.
        accepted: bool,
    },
    /// An honest node received a CA revocation notice.
    RevocationSeen {
        /// The node receiving the notice.
        node: u64,
        /// The nodes the notice revokes.
        revoked: Vec<u64>,
        /// Engine claim: all listed nodes are now in the node's local
        /// revoked set (purged from its routing state).
        tracked: bool,
    },
    /// The CA ran the validity gate on an incoming misbehaviour report.
    ReportIntake {
        /// Which report variant arrived.
        kind: ReportKind,
        /// The reporting node.
        reporter: u64,
        /// Independently recomputed: the reporter's certificate names
        /// the reporter and verifies against the CA key.
        cert_ok: bool,
        /// Independently recomputed: the CA's authority lists the
        /// reporter as revoked.
        reporter_revoked: bool,
        /// Independently recomputed: the report's signed evidence
        /// verifies (signed lists / non-empty relay chain).
        evidence_ok: bool,
        /// Engine claim: the report passed the gate and a case opened.
        accepted: bool,
    },
    /// The CA verified a receipt token presented as dropper evidence.
    CaReceiptCheck {
        /// The relay the token claims to be signed by.
        signer: u64,
        /// The relay the evidence says should have signed it.
        expected_signer: u64,
        /// Independently recomputed: the token covers the case's flow.
        flow_ok: bool,
        /// Independently recomputed: the signature verifies under the
        /// signer's registered public key.
        sig_ok: bool,
        /// Engine claim: the token was accepted as valid evidence.
        accepted: bool,
    },
}

/// Output of one model step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelOutput {
    /// The engine's claimed outcome disagrees with the model's
    /// independent recomputation of the same decision.
    Divergence(String),
    /// The engine's claimed behaviour breaches a protocol invariant
    /// (also recorded on [`ModelState::violations`]).
    Violation(String),
}

/// The model's tracked protocol state. Plain ordered maps, nothing
/// else — the point is to be obviously correct, not fast.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelState {
    /// Nodes currently live in the ground-truth membership.
    pub live: BTreeSet<u64>,
    /// Nodes whose certificates the CA has revoked.
    pub revoked: BTreeSet<u64>,
    /// `(node, flow)` → the relay that node awaits a receipt from.
    pub awaiting_receipt: BTreeMap<(u64, u64), u64>,
    /// `(node, lookup)` → the table owner that node awaits.
    pub lookup_target: BTreeMap<(u64, u64), u64>,
    /// Invariant breaches recorded so far (engine claims that accepted
    /// what the protocol forbids). Reported by [`check_invariants`].
    pub violations: Vec<String>,
}

/// Drop all per-node protocol obligations of a departed node.
fn clear_node(state: &mut ModelState, node: u64) {
    state.awaiting_receipt.retain(|&(n, _), _| n != node);
    state.lookup_target.retain(|&(n, _), _| n != node);
}

/// Record a divergence between engine claim and model expectation.
fn diverge(out: &mut Vec<ModelOutput>, detail: String) {
    out.push(ModelOutput::Divergence(detail));
}

/// Record an invariant violation (kept on the state for
/// [`check_invariants`], and surfaced as an output).
fn violate(state: &mut ModelState, out: &mut Vec<ModelOutput>, detail: String) {
    state.violations.push(detail.clone());
    out.push(ModelOutput::Violation(detail));
}

/// Advance the model by one event: recompute the decision the engine
/// claims to have made, update tracked state, and report any
/// divergences or invariant violations.
///
/// The fold is pure and total — same state and event always produce the
/// same result, and no event panics.
#[must_use]
#[allow(clippy::too_many_lines)] // one arm per protocol decision; splitting hides the case analysis
pub fn step(mut state: ModelState, event: ModelEvent) -> (ModelState, Vec<ModelOutput>) {
    let mut out = Vec::new();
    match event {
        ModelEvent::NodeJoined { node } => {
            state.live.insert(node);
        }
        ModelEvent::NodeKilled { node } => {
            state.live.remove(&node);
            clear_node(&mut state, node);
        }
        ModelEvent::RevocationApplied { node } => {
            state.revoked.insert(node);
            state.live.remove(&node);
            clear_node(&mut state, node);
        }
        ModelEvent::AnonSent { node, flow, first } => {
            state.awaiting_receipt.insert((node, flow), first);
        }
        ModelEvent::OnionProcessed {
            node,
            from,
            flow,
            route_next,
            receipt_sent,
            forwarded_to,
            exited,
        } => {
            if !receipt_sent {
                diverge(
                    &mut out,
                    format!(
                        "node {node} processed hop of flow {flow:#x} without acknowledging {from}"
                    ),
                );
                violate(
                    &mut state,
                    &mut out,
                    format!(
                        "node {node} forwarded flow {flow:#x} without extending its receipt chain"
                    ),
                );
            }
            match route_next {
                Some(next) => {
                    if exited {
                        diverge(
                            &mut out,
                            format!(
                                "node {node} claims exit on flow {flow:#x} with hops remaining"
                            ),
                        );
                    }
                    if forwarded_to != Some(next) {
                        diverge(
                            &mut out,
                            format!(
                                "node {node} forwarded flow {flow:#x} to {forwarded_to:?}; the route names {next}"
                            ),
                        );
                    }
                    // Track the engine's receipt expectation: the next
                    // hop named by the route, regardless of where a
                    // buggy engine actually sent the packet.
                    state.awaiting_receipt.insert((node, flow), next);
                }
                None => {
                    if !exited {
                        diverge(
                            &mut out,
                            format!("node {node} neither forwarded nor exited flow {flow:#x}"),
                        );
                    }
                    if let Some(to) = forwarded_to {
                        diverge(
                            &mut out,
                            format!("node {node} forwarded exhausted flow {flow:#x} to {to}"),
                        );
                    }
                }
            }
        }
        ModelEvent::ReceiptChecked {
            node,
            from,
            flow,
            signer,
            accepted,
        } => {
            let expected =
                state.awaiting_receipt.get(&(node, flow)) == Some(&signer) && signer == from;
            if accepted != expected {
                diverge(
                    &mut out,
                    format!(
                        "node {node} {} receipt for flow {flow:#x} signed by {signer} (from {from}); model says {}",
                        if accepted { "accepted" } else { "rejected" },
                        if expected { "accept" } else { "reject" },
                    ),
                );
                if accepted {
                    violate(
                        &mut state,
                        &mut out,
                        format!(
                            "node {node} accepted a receipt for flow {flow:#x} whose chain fails verification"
                        ),
                    );
                }
            }
            if expected {
                state.awaiting_receipt.remove(&(node, flow));
            }
        }
        ModelEvent::ReceiptExpired { node, flow } => {
            if state.awaiting_receipt.remove(&(node, flow)).is_none() {
                diverge(
                    &mut out,
                    format!("node {node} expired a receipt wait on flow {flow:#x} the model never saw opened"),
                );
            }
        }
        ModelEvent::LookupQuery {
            node,
            lookup,
            target,
        } => {
            state.lookup_target.insert((node, lookup), target);
        }
        ModelEvent::TableChecked {
            node,
            lookup,
            owner,
            awaiting,
            sig_ok,
            accepted,
        } => {
            match state.lookup_target.get(&(node, lookup)) {
                Some(&tracked) if tracked != awaiting => diverge(
                    &mut out,
                    format!(
                        "lookup {lookup} at node {node}: engine awaits {awaiting}, model tracked {tracked}"
                    ),
                ),
                None => diverge(
                    &mut out,
                    format!(
                        "lookup {lookup} at node {node}: table judged for a lookup the model never saw queried"
                    ),
                ),
                Some(_) => {}
            }
            let expected = owner == awaiting && sig_ok;
            if accepted != expected {
                diverge(
                    &mut out,
                    format!(
                        "node {node} {} table from {owner} for lookup {lookup}; model says {}",
                        if accepted { "accepted" } else { "rejected" },
                        if expected { "accept" } else { "reject" },
                    ),
                );
            }
            if accepted && !sig_ok {
                violate(
                    &mut state,
                    &mut out,
                    format!(
                        "node {node} accepted a routing table from {owner} under a certificate that fails verification"
                    ),
                );
            }
        }
        ModelEvent::RevocationSeen {
            node,
            revoked,
            tracked,
        } => {
            if !tracked {
                diverge(
                    &mut out,
                    format!(
                        "node {node} received revocation notice {revoked:?} but did not track it"
                    ),
                );
            }
        }
        ModelEvent::ReportIntake {
            kind,
            reporter,
            cert_ok,
            reporter_revoked,
            evidence_ok,
            accepted,
        } => {
            if state.revoked.contains(&reporter) != reporter_revoked {
                diverge(
                    &mut out,
                    format!(
                        "CA revocation view of reporter {reporter} drifted from the model ({kind:?})"
                    ),
                );
            }
            // The engine's intake gates are asymmetric on purpose: only
            // ListOmission refuses revoked reporters at the gate. The
            // model mirrors that, and separately flags the invariant
            // when a revoked certificate is honoured anywhere.
            let expected = match kind {
                ReportKind::ListOmission => cert_ok && !reporter_revoked && evidence_ok,
                ReportKind::FingerManipulation | ReportKind::Dropper => cert_ok && evidence_ok,
            };
            if accepted != expected {
                diverge(
                    &mut out,
                    format!(
                        "CA {} a {kind:?} report from {reporter}; model says {}",
                        if accepted { "accepted" } else { "rejected" },
                        if expected { "accept" } else { "reject" },
                    ),
                );
            }
            if accepted && !cert_ok {
                violate(
                    &mut state,
                    &mut out,
                    format!(
                        "CA accepted a {kind:?} report under a certificate that fails verification"
                    ),
                );
            }
            if kind == ReportKind::ListOmission && accepted && reporter_revoked {
                violate(
                    &mut state,
                    &mut out,
                    format!(
                        "revoked certificate of {reporter} accepted after the revocation event"
                    ),
                );
            }
        }
        ModelEvent::CaReceiptCheck {
            signer,
            expected_signer,
            flow_ok,
            sig_ok,
            accepted,
        } => {
            let expected = signer == expected_signer && flow_ok && sig_ok;
            if accepted != expected {
                diverge(
                    &mut out,
                    format!(
                        "CA {} a receipt signed by {signer} (expected signer {expected_signer}); model says {}",
                        if accepted { "accepted" } else { "rejected" },
                        if expected { "accept" } else { "reject" },
                    ),
                );
            }
            if accepted && !sig_ok {
                violate(
                    &mut state,
                    &mut out,
                    format!("CA accepted a forged receipt attributed to {signer}"),
                );
            }
        }
    }
    (state, out)
}

/// Report every invariant breach visible in `state`: violations
/// recorded by [`step`], plus structural impossibilities (a node both
/// live and revoked). Empty means the engine's claimed behaviour never
/// crossed a protocol line.
#[must_use]
pub fn check_invariants(state: &ModelState) -> Vec<String> {
    let mut breaches = state.violations.clone();
    for id in state.live.intersection(&state.revoked) {
        breaches.push(format!("node {id} is simultaneously live and revoked"));
    }
    breaches
}

/// The result of folding [`step`] over an event sequence.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Final model state (feed to [`check_invariants`]).
    pub state: ModelState,
    /// Every divergence, in event order.
    pub divergences: Vec<String>,
}

/// Fold [`step`] over an event sequence, collecting divergences.
/// Violations stay on the returned state where [`check_invariants`]
/// reports them.
pub fn replay(events: impl IntoIterator<Item = ModelEvent>) -> Replay {
    let mut state = ModelState::default();
    let mut divergences = Vec::new();
    for event in events {
        let (next, outputs) = step(state, event);
        state = next;
        for output in outputs {
            if let ModelOutput::Divergence(d) = output {
                divergences.push(d);
            }
        }
    }
    Replay { state, divergences }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faithful_receipt_round() -> Vec<ModelEvent> {
        vec![
            ModelEvent::NodeJoined { node: 1 },
            ModelEvent::NodeJoined { node: 2 },
            ModelEvent::NodeJoined { node: 3 },
            ModelEvent::AnonSent {
                node: 1,
                flow: 7,
                first: 2,
            },
            ModelEvent::OnionProcessed {
                node: 2,
                from: 1,
                flow: 7,
                route_next: Some(3),
                receipt_sent: true,
                forwarded_to: Some(3),
                exited: false,
            },
            ModelEvent::ReceiptChecked {
                node: 1,
                from: 2,
                flow: 7,
                signer: 2,
                accepted: true,
            },
            ModelEvent::OnionProcessed {
                node: 3,
                from: 2,
                flow: 7,
                route_next: None,
                receipt_sent: true,
                forwarded_to: None,
                exited: true,
            },
            ModelEvent::ReceiptChecked {
                node: 2,
                from: 3,
                flow: 7,
                signer: 3,
                accepted: true,
            },
        ]
    }

    #[test]
    fn faithful_trace_is_clean() {
        let replay = replay(faithful_receipt_round());
        assert!(replay.divergences.is_empty(), "{:?}", replay.divergences);
        assert!(check_invariants(&replay.state).is_empty());
        assert!(replay.state.awaiting_receipt.is_empty());
    }

    #[test]
    fn step_is_a_pure_fold() {
        let s0 = ModelState::default();
        let ev = ModelEvent::NodeJoined { node: 9 };
        let (a, _) = step(s0.clone(), ev.clone());
        let (b, _) = step(s0, ev);
        assert_eq!(a, b);
    }

    #[test]
    fn forged_receipt_acceptance_is_a_violation() {
        let mut events = faithful_receipt_round();
        // The initiator accepts a receipt signed by a relay it never
        // asked: wrong signer, claim says accepted.
        events.push(ModelEvent::AnonSent {
            node: 1,
            flow: 8,
            first: 2,
        });
        events.push(ModelEvent::ReceiptChecked {
            node: 1,
            from: 3,
            flow: 8,
            signer: 3,
            accepted: true,
        });
        let replay = replay(events);
        assert_eq!(replay.divergences.len(), 1);
        let breaches = check_invariants(&replay.state);
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].contains("fails verification"), "{breaches:?}");
    }

    #[test]
    fn rejecting_a_valid_receipt_diverges_without_violation() {
        let mut events = faithful_receipt_round();
        events.push(ModelEvent::AnonSent {
            node: 1,
            flow: 9,
            first: 3,
        });
        events.push(ModelEvent::ReceiptChecked {
            node: 1,
            from: 3,
            flow: 9,
            signer: 3,
            accepted: false,
        });
        let replay = replay(events);
        assert_eq!(replay.divergences.len(), 1);
        assert!(check_invariants(&replay.state).is_empty());
    }

    #[test]
    fn misrouted_onion_diverges() {
        let (_, out) = step(
            ModelState::default(),
            ModelEvent::OnionProcessed {
                node: 2,
                from: 1,
                flow: 7,
                route_next: Some(3),
                receipt_sent: true,
                forwarded_to: Some(1), // sent back where it came from
                exited: false,
            },
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], ModelOutput::Divergence(_)));
    }

    #[test]
    fn skipped_receipt_ack_is_a_violation() {
        let (state, out) = step(
            ModelState::default(),
            ModelEvent::OnionProcessed {
                node: 2,
                from: 1,
                flow: 7,
                route_next: None,
                receipt_sent: false,
                forwarded_to: None,
                exited: true,
            },
        );
        assert!(out.iter().any(|o| matches!(o, ModelOutput::Violation(_))));
        assert_eq!(check_invariants(&state).len(), 1);
    }

    #[test]
    fn stale_certificate_table_acceptance_is_a_violation() {
        let events = vec![
            ModelEvent::LookupQuery {
                node: 1,
                lookup: 4,
                target: 5,
            },
            ModelEvent::TableChecked {
                node: 1,
                lookup: 4,
                owner: 5,
                awaiting: 5,
                sig_ok: false, // expired / forged certificate
                accepted: true,
            },
        ];
        let replay = replay(events);
        assert_eq!(replay.divergences.len(), 1);
        assert_eq!(check_invariants(&replay.state).len(), 1);
    }

    #[test]
    fn revoked_reporter_acceptance_is_the_named_invariant() {
        let events = vec![
            ModelEvent::NodeJoined { node: 6 },
            ModelEvent::RevocationApplied { node: 6 },
            ModelEvent::ReportIntake {
                kind: ReportKind::ListOmission,
                reporter: 6,
                cert_ok: true,
                reporter_revoked: true,
                evidence_ok: true,
                accepted: true,
            },
        ];
        let replay = replay(events);
        let breaches = check_invariants(&replay.state);
        assert!(
            breaches
                .iter()
                .any(|b| b.contains("accepted after the revocation event")),
            "{breaches:?}"
        );
    }

    #[test]
    fn dropper_gate_ignores_revocation_by_design() {
        // The engine's Dropper/FingerManipulation gates deliberately do
        // not consult the revocation list; the model mirrors that.
        let (_, out) = step(
            ModelState {
                revoked: [6].into_iter().collect(),
                ..ModelState::default()
            },
            ModelEvent::ReportIntake {
                kind: ReportKind::Dropper,
                reporter: 6,
                cert_ok: true,
                reporter_revoked: true,
                evidence_ok: true,
                accepted: true,
            },
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ca_forged_receipt_acceptance_is_a_violation() {
        let (state, out) = step(
            ModelState::default(),
            ModelEvent::CaReceiptCheck {
                signer: 3,
                expected_signer: 3,
                flow_ok: true,
                sig_ok: false,
                accepted: true,
            },
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(check_invariants(&state).len(), 1);
    }

    #[test]
    fn departure_clears_per_node_obligations() {
        let events = vec![
            ModelEvent::NodeJoined { node: 1 },
            ModelEvent::AnonSent {
                node: 1,
                flow: 7,
                first: 2,
            },
            ModelEvent::LookupQuery {
                node: 1,
                lookup: 3,
                target: 4,
            },
            ModelEvent::NodeKilled { node: 1 },
        ];
        let replay = replay(events);
        assert!(replay.state.awaiting_receipt.is_empty());
        assert!(replay.state.lookup_target.is_empty());
        assert!(replay.divergences.is_empty());
    }

    #[test]
    fn live_and_revoked_overlap_is_caught() {
        let state = ModelState {
            live: [4].into_iter().collect(),
            revoked: [4].into_iter().collect(),
            ..ModelState::default()
        };
        assert_eq!(check_invariants(&state).len(), 1);
    }

    #[test]
    fn untracked_receipt_expiry_diverges() {
        let (_, out) = step(
            ModelState::default(),
            ModelEvent::ReceiptExpired { node: 1, flow: 7 },
        );
        assert_eq!(out.len(), 1);
    }
}
