//! Table 1: error rate of the end-to-end timing-analysis attack.
//!
//! Paper row format: max delay × concurrent lookup rate α, reporting the
//! attack's error rate (≥ 99.35 % everywhere) and the residual
//! information leak in bits.

use octopus_anonymity::timing::{timing_attack_error_rate, timing_leak_bits};
use octopus_anonymity::TimingConfig;
use octopus_bench::RunArgs;
use octopus_metrics::TextTable;

fn main() {
    let args = RunArgs::from_env();
    let trials = args.scale.timing_trials() * args.trials;
    println!("Table 1: error rate of end-to-end timing analysis attack");
    println!("(paper: 99.35%-99.95%; leak at 100ms/α=5%: 0.018 bit)\n");
    let mut table = TextTable::new(["Max. delay", "alpha=0.5%", "alpha=1%", "alpha=5%"]);
    for max_delay_ms in [100.0, 200.0] {
        let mut row = vec![format!("{max_delay_ms:.0} ms")];
        for alpha in [0.005, 0.01, 0.05] {
            let cfg = TimingConfig {
                n: 1_000_000,
                f: 0.2,
                alpha,
                max_delay_ms,
                trials,
                seed: args.seed_or(21),
            };
            let err = timing_attack_error_rate(&cfg);
            row.push(format!("{:.2}%", err * 100.0));
            if (max_delay_ms - 100.0).abs() < f64::EPSILON && (alpha - 0.05).abs() < 1e-9 {
                eprintln!(
                    "  [leak at 100 ms, alpha=5%: {:.3} bit]",
                    timing_leak_bits(&cfg, err)
                );
            }
        }
        table.row(row);
    }
    println!("{}", table.render());
}
