//! Fig. 4: fingertable pollution attack — remaining malicious fraction
//! over time at attack rates 100 % and 50 %.

use octopus_bench::{print_fraction_series, run_merged_sweep, RunArgs};
use octopus_core::AttackKind;

fn main() {
    let args = RunArgs::from_env();
    println!("Fig 4: fingertable pollution attack\n");
    let rates = [1.0, 0.5];
    let points: Vec<_> = rates
        .iter()
        .map(|&rate| args.security_config(AttackKind::FingerPollution, rate, 34))
        .collect();
    for (report, rate) in run_merged_sweep(&args, &points).iter().zip(rates) {
        print_fraction_series(
            &format!("attack rate = {:.0}%", rate * 100.0),
            &report.mean_series(&report.malicious_fraction),
        );
        println!(
            "(FP rate {:.2}%, FN rate {:.2}%)\n",
            report.false_positive_rate() * 100.0,
            report.false_negative_rate() * 100.0
        );
    }
}
