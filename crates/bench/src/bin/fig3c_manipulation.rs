//! Fig. 3(c): fingertable manipulation attack — remaining malicious
//! fraction over time at attack rates 100 % and 50 %.

use octopus_bench::{print_fraction_series, security_config, Scale};
use octopus_core::{AttackKind, SecuritySim};

fn main() {
    let scale = Scale::from_env();
    println!("Fig 3(c): fingertable manipulation attack\n");
    for rate in [1.0, 0.5] {
        let cfg = security_config(scale, AttackKind::FingerManipulation, rate, 33);
        let report = SecuritySim::new(cfg).run();
        print_fraction_series(
            &format!("attack rate = {:.0}%", rate * 100.0),
            &report.malicious_fraction,
        );
        println!(
            "(FP rate {:.2}%, FN rate {:.2}%)\n",
            report.false_positive_rate() * 100.0,
            report.false_negative_rate() * 100.0
        );
    }
}
