//! Figs. 5(a), 5(b), 5(c) and 6: initiator and target anonymity.
//!
//! 5(a): H(I) for Octopus vs fraction of malicious nodes, for 2 and 6
//! dummies and α ∈ {0.5 %, 1 %}. 5(c): H(T) likewise. 5(b)/6: comparison
//! with Chord, NISAN, and Torsk at α = 1 %.

use octopus_anonymity::{
    chord_entropies, initiator_entropy, nisan_entropies, target_entropy, torsk_entropies,
    AnonymityConfig, LookupPresim, PresimConfig,
};
use octopus_bench::Scale;
use octopus_metrics::TextTable;

fn main() {
    let scale = Scale::from_env();
    let n = scale.anon_n();
    let trials = scale.anon_trials();
    println!("pre-simulating lookups on an N = {n} ring…");
    let presim = LookupPresim::run(PresimConfig {
        n,
        samples: 1500,
        seed: 7,
    });
    let ideal = (n as f64).log2();
    println!("ideal entropy: {ideal:.2} bits\n");

    let cfg = |f: f64, alpha: f64, dummies: usize| AnonymityConfig {
        n,
        f,
        alpha,
        dummies,
        trials,
        seed: 42,
    };
    let fs = [0.04, 0.08, 0.12, 0.16, 0.20];

    println!("Fig 5(a): Octopus initiator anonymity H(I) vs f");
    let mut t = TextTable::new(["f", "d=2 a=1%", "d=2 a=0.5%", "d=6 a=1%", "d=6 a=0.5%"]);
    for &f in &fs {
        t.row([
            format!("{f:.2}"),
            format!("{:.2}", initiator_entropy(&cfg(f, 0.01, 2), &presim)),
            format!("{:.2}", initiator_entropy(&cfg(f, 0.005, 2), &presim)),
            format!("{:.2}", initiator_entropy(&cfg(f, 0.01, 6), &presim)),
            format!("{:.2}", initiator_entropy(&cfg(f, 0.005, 6), &presim)),
        ]);
    }
    println!("{}", t.render());

    println!("Fig 5(c): Octopus target anonymity H(T) vs f");
    let mut t = TextTable::new(["f", "d=2 a=1%", "d=6 a=1%", "d=0 a=1% (ablation)"]);
    for &f in &fs {
        t.row([
            format!("{f:.2}"),
            format!("{:.2}", target_entropy(&cfg(f, 0.01, 2), &presim)),
            format!("{:.2}", target_entropy(&cfg(f, 0.01, 6), &presim)),
            format!("{:.2}", target_entropy(&cfg(f, 0.01, 0), &presim)),
        ]);
    }
    println!("{}", t.render());

    println!("Fig 5(b)/Fig 6: comparison at alpha = 1%, d = 6");
    let mut t = TextTable::new([
        "f",
        "Octopus H(I)",
        "NISAN H(I)",
        "Torsk H(I)",
        "Chord H(I)",
        "Octopus H(T)",
        "NISAN H(T)",
        "Torsk H(T)",
        "Chord H(T)",
    ]);
    for &f in &fs {
        let c = cfg(f, 0.01, 6);
        let nis = nisan_entropies(&c, &presim);
        let tor = torsk_entropies(&c, &presim);
        let cho = chord_entropies(&c, &presim);
        t.row([
            format!("{f:.2}"),
            format!("{:.2}", initiator_entropy(&c, &presim)),
            format!("{:.2}", nis.h_i),
            format!("{:.2}", tor.h_i),
            format!("{:.2}", cho.h_i),
            format!("{:.2}", target_entropy(&c, &presim)),
            format!("{:.2}", nis.h_t),
            format!("{:.2}", tor.h_t),
            format!("{:.2}", cho.h_t),
        ]);
    }
    println!("{}", t.render());

    let c = cfg(0.2, 0.01, 6);
    let leak_i = ideal - initiator_entropy(&c, &presim);
    let leak_t = ideal - target_entropy(&c, &presim);
    let leak_nisan = ideal - nisan_entropies(&c, &presim).h_i;
    println!("headline @ f=20%: Octopus leaks {leak_i:.2} bit (I), {leak_t:.2} bit (T);");
    println!(
        "NISAN leaks {leak_nisan:.2} bit (I) — {:.1}x more than Octopus",
        leak_nisan / leak_i.max(0.01)
    );
}
