//! Fig. 3(a)/(b): lookup-bias attack — remaining malicious fraction over
//! time at attack rates 100 % and 50 %, plus cumulative all/biased
//! lookup counts.

use octopus_bench::{print_fraction_series, run_merged_sweep, RunArgs};
use octopus_core::AttackKind;

fn main() {
    let args = RunArgs::from_env();
    println!("Fig 3(a): lookup bias attack — remaining malicious fraction\n");
    let rates = [1.0, 0.5];
    let points: Vec<_> = rates
        .iter()
        .map(|&rate| args.security_config(AttackKind::LookupBias, rate, 31))
        .collect();
    for (report, rate) in run_merged_sweep(&args, &points).iter().zip(rates) {
        print_fraction_series(
            &format!("attack rate = {:.0}%", rate * 100.0),
            &report.mean_series(&report.malicious_fraction),
        );
        println!(
            "(FP rate {:.2}%, {} revocations over {} trial(s))\n",
            report.false_positive_rate() * 100.0,
            report.revocations,
            report.trials
        );
        if (rate - 1.0).abs() < f64::EPSILON {
            println!("Fig 3(b): cumulative lookups (all vs biased, per-trial mean)");
            println!("# time(s)  all  biased");
            let all_series = report.mean_series(&report.lookups_total);
            let biased_series = report.mean_series(&report.lookups_biased);
            for (i, &(t, all)) in all_series.iter().enumerate().step_by(4) {
                let biased = biased_series.get(i).map_or(0.0, |&(_, b)| b);
                println!("{t:7.0}  {all:7.0}  {biased:7.0}");
            }
            println!();
        }
    }
}
