//! Fig. 3(a)/(b): lookup-bias attack — remaining malicious fraction over
//! time at attack rates 100 % and 50 %, plus cumulative all/biased
//! lookup counts.

use octopus_bench::{print_fraction_series, security_config, Scale};
use octopus_core::{AttackKind, SecuritySim};

fn main() {
    let scale = Scale::from_env();
    println!("Fig 3(a): lookup bias attack — remaining malicious fraction\n");
    for rate in [1.0, 0.5] {
        let cfg = security_config(scale, AttackKind::LookupBias, rate, 31);
        let report = SecuritySim::new(cfg).run();
        print_fraction_series(
            &format!("attack rate = {:.0}%", rate * 100.0),
            &report.malicious_fraction,
        );
        println!(
            "(FP rate {:.2}%, {} revocations)\n",
            report.false_positive_rate() * 100.0,
            report.revocations
        );
        if (rate - 1.0).abs() < f64::EPSILON {
            println!("Fig 3(b): cumulative lookups (all vs biased)");
            println!("# time(s)  all  biased");
            for (i, &(t, all)) in report.lookups_total.iter().enumerate().step_by(4) {
                let biased = report.lookups_biased.get(i).map_or(0.0, |&(_, b)| b);
                println!("{t:7.0}  {all:7.0}  {biased:7.0}");
            }
            println!();
        }
    }
}
