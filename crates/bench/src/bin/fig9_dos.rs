//! Fig. 9: selective-DoS attack — remaining malicious fraction over time
//! at attack rates 100 % and 50 % (Appendix II defense).

use octopus_bench::{print_fraction_series, security_config, Scale};
use octopus_core::{AttackKind, SecuritySim};

fn main() {
    let scale = Scale::from_env();
    println!("Fig 9: selective DoS attack\n");
    for rate in [1.0, 0.5] {
        let cfg = security_config(scale, AttackKind::SelectiveDos, rate, 39);
        let report = SecuritySim::new(cfg).run();
        print_fraction_series(
            &format!("attack rate = {:.0}%", rate * 100.0),
            &report.malicious_fraction,
        );
        println!(
            "(FP rate {:.2}%, failed lookups {})\n",
            report.false_positive_rate() * 100.0,
            report.failed_lookups
        );
    }
}
