//! Fig. 9: selective-DoS attack — remaining malicious fraction over time
//! at attack rates 100 % and 50 % (Appendix II defense).

use octopus_bench::{print_fraction_series, run_merged_sweep, RunArgs};
use octopus_core::AttackKind;

fn main() {
    let args = RunArgs::from_env();
    println!("Fig 9: selective DoS attack\n");
    let rates = [1.0, 0.5];
    let points: Vec<_> = rates
        .iter()
        .map(|&rate| args.security_config(AttackKind::SelectiveDos, rate, 39))
        .collect();
    for (report, rate) in run_merged_sweep(&args, &points).iter().zip(rates) {
        print_fraction_series(
            &format!("attack rate = {:.0}%", rate * 100.0),
            &report.mean_series(&report.malicious_fraction),
        );
        println!(
            "(FP rate {:.2}%, failed lookups {})\n",
            report.false_positive_rate() * 100.0,
            report.failed_lookups
        );
    }
}
