//! Table 2: false positive / false negative / false alarm rates of the
//! malicious-node identification mechanisms, with and without heavy
//! churn (λ = 60 min vs λ = 10 min), attack rate 100 %, consistent
//! collusion 50 %.

use octopus_bench::{run_merged_sweep, RunArgs};
use octopus_core::simnet::ReportCat;
use octopus_core::AttackKind;
use octopus_metrics::TextTable;
use octopus_sim::Duration;

fn main() {
    let args = RunArgs::from_env();
    println!("Table 2: identification accuracy (attack rate 100%, collusion 50%)");
    println!("(paper: FP = 0 everywhere; FN <= 0.52% bias / 14-20% finger attacks)\n");
    let mut table = TextTable::new([
        "Attack",
        "FP l=60m",
        "FP l=10m",
        "FN l=60m",
        "FN l=10m",
        "Alarm l=60m",
        "Alarm l=10m",
    ]);
    let attacks = [
        (
            "Lookup Bias",
            AttackKind::LookupBias,
            ReportCat::NeighborSurveillance,
        ),
        (
            "Finger Manipulation",
            AttackKind::FingerManipulation,
            ReportCat::FingerSurveillance,
        ),
        (
            "Finger Pollution",
            AttackKind::FingerPollution,
            ReportCat::FingerUpdate,
        ),
    ];
    const LIFETIMES_MIN: [u64; 2] = [60, 10];
    // all six (attack × churn) cells are independent sims: run them as
    // one parallel batch
    let args_ref = &args;
    let points: Vec<_> = attacks
        .iter()
        .flat_map(|&(_, attack, _)| {
            LIFETIMES_MIN.iter().map(move |&lifetime_min| {
                let mut cfg =
                    args_ref.security_config(attack, 1.0, 100 + lifetime_min + attack as u64);
                cfg.mean_lifetime = Some(Duration::from_secs(lifetime_min * 60));
                cfg
            })
        })
        .collect();
    let reports = run_merged_sweep(&args, &points);
    for (row, (name, _, cat)) in reports.chunks(LIFETIMES_MIN.len()).zip(attacks) {
        let mut cells = vec![name.to_string()];
        let mut fns = Vec::new();
        let mut alarms = Vec::new();
        let mut fps = Vec::new();
        for report in row {
            fps.push(format!("{:.2}%", report.false_positive_rate() * 100.0));
            let fn_rate = match cat {
                ReportCat::NeighborSurveillance => report.neighbor_fn_rate(),
                _ => report.finger_fn_rate(),
            };
            fns.push(format!("{:.2}%", fn_rate * 100.0));
            alarms.push(format!("{:.2}%", report.false_alarm_rate_for(cat) * 100.0));
        }
        cells.extend(fps);
        cells.extend(fns);
        cells.extend(alarms);
        table.row(cells);
    }
    println!("{}", table.render());
}
