//! Emit the `BENCH_sharded_world.json` performance baseline: the
//! `sharded_world` gossip workload timed over the 1/2/4/8-shard ×
//! {step, win, par} grid, at **two populations** (N = 10 000 and
//! N = 100 000), as machine-diffable JSON.
//!
//! The grid matches the criterion bench in `benches/sharded_world.rs`
//! — same shared workload (`octopus_bench::sharded`), same labels — but
//! prints best-of-[`SAMPLES`] times in a stable schema instead of
//! human-oriented rows, so
//! future PRs diff a committed snapshot rather than anecdote (ROADMAP
//! item 1). Progress goes to stderr; the JSON goes to stdout, or to a
//! file with `--out`.
//!
//! Flags (besides the standard `RunArgs` set):
//!
//! - `--out PATH` — write the JSON to `PATH` instead of stdout.
//! - `--assert-par-wins [MIN_SHARDS]` — after timing, assert that the
//!   `par` engine beats the classic 1-shard `step` engine
//!   (events/sec) at every shard count ≥ `MIN_SHARDS` (default 2),
//!   for every population; exits 1 on a regression. CI runs the quick
//!   profile with `--assert-par-wins 4` as a perf tripwire.
//!
//! `OCTOPUS_SCALE=quick` (the default, N ∈ {10 000, 100 000}) is the
//! committed profile; `full` swaps in N ∈ {100 000, 1 000 000} for
//! deeper local runs.

use std::time::Instant;

use octopus_bench::sharded::{approx_events, drive, Mode, SIM_MILLIS};
use octopus_bench::{RunArgs, Scale};

/// Timed rounds per population (plus one untimed warm-up round). Cells
/// are timed **interleaved**: each round times every grid cell once, so
/// a throttling phase of the host hits all cells of a round alike
/// instead of whichever cell happened to run then. A cell's reported
/// time is its fastest round — on a shared, thermally noisy box the
/// minimum is the robust throughput estimator (the sample with the
/// least external interference), where a median of few samples still
/// jitters by double-digit percentages.
const SAMPLES: usize = 5;

/// One timed grid cell.
struct Cell {
    n: usize,
    shards: usize,
    mode: Mode,
    best_ns: u64,
    events_per_sec: u64,
}

/// Best (minimum) wall-clock nanoseconds per grid cell over
/// [`SAMPLES`] interleaved rounds, plus the byte total every cell
/// produced (identical across the whole grid by the determinism
/// contract — asserted here).
// Sanctioned wall-clock site: timing real elapsed time is this bin's
// entire purpose (OCT-LINT-002 exempts crates/bench).
#[allow(clippy::disallowed_methods)]
fn time_grid(n: usize, grid: &[(usize, Mode)]) -> (Vec<u64>, u64) {
    // warm-up round, and the reference byte total
    let mut reference = None;
    for &(shards, mode) in grid {
        let b = drive(n, shards, mode);
        let r = *reference.get_or_insert(b);
        assert_eq!(b, r, "n={n} {shards}-shard {} divergence", mode.name());
    }
    let reference = reference.expect("grid is non-empty");
    let mut best = vec![u64::MAX; grid.len()];
    for round in 0..SAMPLES {
        eprintln!("bench_snapshot: n={n} round {}/{SAMPLES} ...", round + 1);
        for (ci, &(shards, mode)) in grid.iter().enumerate() {
            let t0 = Instant::now();
            let b = drive(n, shards, mode);
            let ns = t0.elapsed().as_nanos() as u64;
            assert_eq!(b, reference, "nondeterministic drive");
            best[ci] = best[ci].min(ns);
        }
    }
    (best, reference)
}

/// bench_snapshot's own flags (everything else is standard `RunArgs`,
/// which skips flags it does not know).
struct SnapshotArgs {
    out: Option<String>,
    assert_par_wins: Option<usize>,
}

fn snapshot_args() -> SnapshotArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = None;
    let mut assert_par_wins = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().cloned(),
            "--assert-par-wins" => {
                let explicit = it.peek().and_then(|v| v.parse::<usize>().ok());
                if explicit.is_some() {
                    it.next();
                }
                assert_par_wins = Some(explicit.unwrap_or(2).max(2));
            }
            _ => {}
        }
    }
    SnapshotArgs {
        out,
        assert_par_wins,
    }
}

fn main() {
    let args = RunArgs::from_env();
    let snap = snapshot_args();
    let (scale_name, populations): (&str, &[usize]) = match args.scale {
        Scale::Quick => ("quick", &[10_000, 100_000]),
        Scale::Full => ("full", &[100_000, 1_000_000]),
    };

    let grid: Vec<(usize, Mode)> = [1usize, 2, 4, 8]
        .iter()
        .flat_map(|&shards| {
            [Mode::Step, Mode::Win, Mode::Par]
                .into_iter()
                .filter(move |&m| !(m == Mode::Par && shards == 1))
                .map(move |m| (shards, m))
        })
        .collect();

    let mut cells: Vec<Cell> = Vec::new();
    let mut blocks = Vec::new();
    for &n in populations {
        let events = approx_events(n);
        let (best, total_bytes) = time_grid(n, &grid);
        let mut rows = Vec::new();
        for (ci, &(shards, mode)) in grid.iter().enumerate() {
            let best_ns = best[ci];
            let events_per_sec = (events as f64 / (best_ns as f64 / 1e9)).round() as u64;
            rows.push(format!(
                "        {{ \"shards\": {shards}, \"mode\": \"{}\", \"best_ns\": {best_ns}, \
                 \"events_per_sec\": {events_per_sec} }}",
                mode.name()
            ));
            cells.push(Cell {
                n,
                shards,
                mode,
                best_ns,
                events_per_sec,
            });
        }
        blocks.push(format!(
            "    {{\n      \"n\": {n},\n      \"approx_events_per_iter\": {events},\n      \
             \"total_bytes\": {total_bytes},\n      \"results\": [\n{}\n      ]\n    }}",
            rows.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sharded_world\",\n  \"scale\": \"{scale_name}\",\n  \
         \"sim_millis\": {SIM_MILLIS},\n  \"samples_per_cell\": {SAMPLES},\n  \
         \"populations\": [\n{}\n  ]\n}}\n",
        blocks.join(",\n")
    );
    match &snap.out {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench_snapshot: wrote {path}");
        }
        None => print!("{json}"),
    }

    if let Some(min_shards) = snap.assert_par_wins {
        // Both sides of every comparison print their raw best-of-round
        // timing next to the derived rate, win or lose — a regression
        // report that only names the loser's events/sec leaves the
        // reader re-deriving the actual measurements from the JSON.
        let mut failures: Vec<String> = Vec::new();
        for &n in populations {
            let step1 = cells
                .iter()
                .find(|c| c.n == n && c.shards == 1 && c.mode == Mode::Step)
                .expect("step@1 is in the grid");
            for c in cells
                .iter()
                .filter(|c| c.n == n && c.mode == Mode::Par && c.shards >= min_shards)
            {
                let ok = c.events_per_sec >= step1.events_per_sec;
                let line = format!(
                    "n={n} par@{}: {} events/s ({:.2} ms) {} step@1: {} events/s ({:.2} ms)",
                    c.shards,
                    c.events_per_sec,
                    c.best_ns as f64 / 1e6,
                    if ok { "beats" } else { "LOSES TO" },
                    step1.events_per_sec,
                    step1.best_ns as f64 / 1e6
                );
                eprintln!("bench_snapshot: {line}");
                if !ok {
                    failures.push(line);
                }
            }
        }
        if !failures.is_empty() {
            eprintln!(
                "bench_snapshot: parallel windows regressed below the sequential engine \
                 at {} grid cell(s), best of {SAMPLES} rounds each:",
                failures.len()
            );
            for line in &failures {
                eprintln!("bench_snapshot:   {line}");
            }
            std::process::exit(1);
        }
    }
}
