//! Emit the `BENCH_sharded_world.json` performance baseline: the
//! `sharded_world` gossip workload timed over the 1/2/4/8-shard ×
//! {step, win, par} grid, as machine-diffable JSON on stdout (progress
//! goes to stderr, so `cargo run --release -p octopus-bench --bin
//! bench_snapshot > BENCH_sharded_world.json` works directly).
//!
//! The grid matches the criterion bench in `benches/sharded_world.rs`
//! — same shared workload (`octopus_bench::sharded`), same labels — but
//! prints medians in a stable schema instead of human-oriented rows, so
//! future PRs diff a committed snapshot rather than anecdote (ROADMAP
//! item 1). `OCTOPUS_SCALE=quick` (the default, N = 10 000) is the
//! committed profile; `full` (N = 100 000) is available for deeper
//! local runs.

use std::time::Instant;

use octopus_bench::sharded::{approx_events, drive, Mode, SIM_MILLIS};
use octopus_bench::{RunArgs, Scale};

/// Timed samples per grid cell (plus one untimed warm-up).
const SAMPLES: usize = 3;

/// Median wall-clock nanoseconds for one `drive(n, shards, mode)` call,
/// and the byte total it produced (identical across the whole grid by
/// the determinism contract — checked by `main`).
// Sanctioned wall-clock site: timing real elapsed time is this bin's
// entire purpose (OCT-LINT-002 exempts crates/bench).
#[allow(clippy::disallowed_methods)]
fn time_cell(n: usize, shards: usize, mode: Mode) -> (u64, u64) {
    let bytes = drive(n, shards, mode); // warm-up, and the sanity value
    let mut samples: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            let b = drive(n, shards, mode);
            assert_eq!(b, bytes, "nondeterministic drive");
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2], bytes)
}

fn main() {
    let args = RunArgs::from_env();
    let (scale_name, n) = match args.scale {
        Scale::Quick => ("quick", 10_000),
        Scale::Full => ("full", 100_000),
    };
    let events = approx_events(n);

    let grid: Vec<(usize, Mode)> = [1usize, 2, 4, 8]
        .iter()
        .flat_map(|&shards| {
            [Mode::Step, Mode::Win, Mode::Par]
                .into_iter()
                .filter(move |&m| !(m == Mode::Par && shards == 1))
                .map(move |m| (shards, m))
        })
        .collect();

    let mut rows = Vec::new();
    let mut reference_bytes = None;
    for &(shards, mode) in &grid {
        eprintln!(
            "bench_snapshot: gossip_n{n}_shards{shards}_{} ...",
            mode.name()
        );
        let (median_ns, bytes) = time_cell(n, shards, mode);
        let reference = *reference_bytes.get_or_insert(bytes);
        assert_eq!(
            bytes,
            reference,
            "{shards}-shard {} divergence",
            mode.name()
        );
        let events_per_sec = (events as f64 / (median_ns as f64 / 1e9)).round() as u64;
        rows.push(format!(
            "    {{ \"shards\": {shards}, \"mode\": \"{}\", \"median_ns\": {median_ns}, \
             \"events_per_sec\": {events_per_sec} }}",
            mode.name()
        ));
    }

    println!("{{");
    println!("  \"bench\": \"sharded_world\",");
    println!("  \"scale\": \"{scale_name}\",");
    println!("  \"n\": {n},");
    println!("  \"sim_millis\": {SIM_MILLIS},");
    println!("  \"approx_events_per_iter\": {events},");
    println!("  \"samples_per_cell\": {SAMPLES},");
    println!(
        "  \"total_bytes\": {},",
        reference_bytes.expect("grid is non-empty")
    );
    println!("  \"results\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
