//! Table 3 + Fig. 7(a): lookup latency (mean/median, CDF) and per-node
//! bandwidth for Octopus vs Chord vs Halo.
//!
//! Octopus runs as the *real protocol* inside the event simulator (207
//! nodes, the paper's PlanetLab population, passive adversary); Chord and
//! Halo replay their message patterns against the same WAN latency model
//! (see `octopus-baselines`). Bandwidth uses the paper's byte model
//! (footnote 4) with lookups every 5 and 10 minutes.

use octopus_baselines::{chord_lookup, halo_lookup};
use octopus_bench::RunArgs;
use octopus_chord::{ChordConfig, GroundTruthView};
use octopus_core::{AttackKind, OctopusConfig, SimConfig};
use octopus_id::{IdSpace, Key};
use octopus_metrics::{Summary, TextTable};
use octopus_net::{sizes, KingLikeLatency};
use octopus_sim::{derive_rng, Duration};
use rand::Rng;

const N: usize = 207; // the paper's PlanetLab deployment size

fn octopus_config(args: &RunArgs, lookup_interval: Duration, secs: u64) -> SimConfig {
    let mut octopus = OctopusConfig::for_network(N);
    octopus.lookup_every = lookup_interval;
    SimConfig {
        n: N,
        malicious_fraction: 0.0,
        attack: AttackKind::Passive,
        attack_rate: 0.0,
        consistent_collusion: 0.0,
        mean_lifetime: None,
        duration: Duration::from_secs(secs),
        seed: args.seed_or(77),
        octopus,
        lookups_enabled: true,
        scheduler: args.scheduler,
        shards: args.shards,
        parallel: args.parallel,
        pool_threads: args.pool_threads,
    }
}

/// Analytic maintenance bandwidth for plain Chord (stabilization every
/// 2 s + finger refresh every 30 s) plus its lookups at the interval.
fn chord_kbps(lookup_interval_s: f64, lookup_bytes: f64) -> f64 {
    let stabilize = (f64::from(sizes::REQUEST)
        + f64::from(sizes::ROUTING_ITEM) * 6.0
        + 2.0 * f64::from(sizes::UDP_HEADER))
        / 2.0;
    let fingers = (f64::from(sizes::REQUEST)
        + f64::from(sizes::ROUTING_ITEM)
        + 2.0 * f64::from(sizes::UDP_HEADER))
        * 12.0
        / 30.0;
    let lookups = lookup_bytes / lookup_interval_s;
    // each byte is sent by one node and received by another
    2.0 * (stabilize + fingers + lookups) * 8.0 / 1000.0
}

fn main() {
    let args = RunArgs::from_env();
    let secs = args.scale.planetlab_secs();
    let trials = args.scale.comparison_trials();
    let mut rng = derive_rng(args.seed_or(99), b"table3", 0);
    let space = IdSpace::random(N, &mut rng);
    let chord_cfg = ChordConfig::for_network(N);
    let view = GroundTruthView::new(&space, chord_cfg);
    let latency = KingLikeLatency::new(123);

    // --- latency ---
    println!("running Octopus ({N} nodes, {secs}s, real protocol in the event sim)…");
    // the two lookup-interval runs (× trials) are independent: one
    // parallel batch, merged per interval
    let octopus_reports = octopus_bench::run_merged_sweep(
        &args,
        &[
            octopus_config(&args, Duration::from_secs(300), secs),
            octopus_config(&args, Duration::from_secs(600), secs),
        ],
    );
    let mut oct_lat = Summary::new();
    oct_lat.extend(
        octopus_reports[0]
            .lookup_latencies_ms
            .iter()
            .map(|&ms| ms / 1000.0),
    );
    let oct_kbps_5m = octopus_reports[0].bandwidth_kbps;
    let oct_kbps_10m = octopus_reports[1].bandwidth_kbps;

    let mut chord_lat = Summary::new();
    let mut halo_lat = Summary::new();
    let mut chord_bytes = 0.0;
    let mut halo_bytes = 0.0;
    for _ in 0..trials {
        let i = space.random_member(&mut rng);
        let key = Key(rng.gen());
        let c = chord_lookup(&view, i, key, &latency, &mut rng);
        chord_lat.add(c.latency.as_secs_f64());
        chord_bytes += c.bytes as f64;
        let h = halo_lookup(&view, i, key, &latency, &mut rng);
        halo_lat.add(h.latency.as_secs_f64());
        halo_bytes += h.bytes as f64;
    }
    chord_bytes /= trials as f64;
    halo_bytes /= trials as f64;

    println!("\nTable 3: efficiency comparison");
    println!("(paper: Octopus 2.15/1.61s, Chord 1.35/0.35s, Halo 6.89/1.79s;");
    println!(" bandwidth Octopus 5.91/4.30, Chord 0.29/0.28, Halo 0.71/0.37 kbps)\n");
    let mut t = TextTable::new([
        "Scheme",
        "Latency mean (s)",
        "Latency median (s)",
        "BW @5min (kbps)",
        "BW @10min (kbps)",
    ]);
    t.row([
        "Octopus".into(),
        format!("{:.2}", oct_lat.mean()),
        format!("{:.2}", oct_lat.median()),
        format!("{oct_kbps_5m:.2}"),
        format!("{oct_kbps_10m:.2}"),
    ]);
    t.row([
        "Chord".into(),
        format!("{:.2}", chord_lat.mean()),
        format!("{:.2}", chord_lat.median()),
        format!("{:.2}", chord_kbps(300.0, chord_bytes)),
        format!("{:.2}", chord_kbps(600.0, chord_bytes)),
    ]);
    t.row([
        "Halo".into(),
        format!("{:.2}", halo_lat.mean()),
        format!("{:.2}", halo_lat.median()),
        format!("{:.2}", chord_kbps(300.0, halo_bytes)),
        format!("{:.2}", chord_kbps(600.0, halo_bytes)),
    ]);
    println!("{}", t.render());

    // --- Fig 7(a): latency CDF ---
    println!("Fig 7(a): CDF of lookup latency (seconds at P10..P100)");
    let mut t = TextTable::new(["P", "Chord", "Octopus", "Halo"]);
    for p in (10..=100).step_by(10) {
        t.row([
            format!("{p}%"),
            format!("{:.2}", chord_lat.percentile(f64::from(p))),
            format!("{:.2}", oct_lat.percentile(f64::from(p))),
            format!("{:.2}", halo_lat.percentile(f64::from(p))),
        ]);
    }
    println!("{}", t.render());
}
