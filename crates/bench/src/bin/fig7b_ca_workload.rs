//! Fig. 7(b): CA workload — messages received by the CA per 10 s bin,
//! for each of the three active attacks. The paper: the peak is at the
//! beginning (most attackers alive), ~2 msgs/s at the busiest, and
//! hardly any new reports after 20 min.

use octopus_bench::{run_merged_sweep, RunArgs};
use octopus_core::AttackKind;

fn main() {
    let args = RunArgs::from_env();
    println!("Fig 7(b): messages received by the CA (per 10s bin)\n");
    let attacks = [
        ("Lookup bias", AttackKind::LookupBias),
        ("FT manipulation", AttackKind::FingerManipulation),
        ("FT pollution", AttackKind::FingerPollution),
    ];
    let points: Vec<_> = attacks
        .iter()
        .map(|&(_, attack)| args.security_config(attack, 1.0, 37))
        .collect();
    for (report, (name, _)) in run_merged_sweep(&args, &points).iter().zip(attacks) {
        let bins = report.mean_series(&report.ca_messages);
        println!("# {name}: time(s)  CA msgs in bin");
        for &(t, v) in bins.iter().step_by(2) {
            println!("{t:7.0}  {v:7.0}");
        }
        let peak = bins.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        println!("(peak {:.1} msgs/s)\n", peak / 10.0);
    }
}
