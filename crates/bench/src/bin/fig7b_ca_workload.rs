//! Fig. 7(b): CA workload — messages received by the CA per 10 s bin,
//! for each of the three active attacks. The paper: the peak is at the
//! beginning (most attackers alive), ~2 msgs/s at the busiest, and
//! hardly any new reports after 20 min.

use octopus_bench::{security_config, Scale};
use octopus_core::{AttackKind, SecuritySim};

fn main() {
    let scale = Scale::from_env();
    println!("Fig 7(b): messages received by the CA (per 10s bin)\n");
    for (name, attack) in [
        ("Lookup bias", AttackKind::LookupBias),
        ("FT manipulation", AttackKind::FingerManipulation),
        ("FT pollution", AttackKind::FingerPollution),
    ] {
        let cfg = security_config(scale, attack, 1.0, 37);
        let report = SecuritySim::new(cfg).run();
        println!("# {name}: time(s)  CA msgs in bin");
        for &(t, v) in report.ca_messages.iter().step_by(2) {
            println!("{t:7.0}  {v:7.0}");
        }
        let peak = report
            .ca_messages
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        println!("(peak {:.1} msgs/s)\n", peak / 10.0);
    }
}
