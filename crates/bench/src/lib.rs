//! The benchmark harness: one runnable target per table and figure of
//! the paper (see DESIGN.md §3 for the full experiment index).
//!
//! Experiment binaries live in `src/bin/` and print rows/series shaped
//! like the paper's tables and figures; `cargo bench` additionally runs
//! Criterion micro-benchmarks of the underlying machinery (`benches/`),
//! including the `sim_engine` bench comparing event-queue backends.
//!
//! Every binary reads one shared [`RunArgs`] configuration, from the
//! environment or CLI flags (flags win):
//!
//! | env | flag | meaning | default |
//! |---|---|---|---|
//! | `OCTOPUS_SCALE` | `--scale` | `quick` or `full` experiment size | `quick` |
//! | `OCTOPUS_SEED` | `--seed` | master seed override | per-bin constant |
//! | `OCTOPUS_THREADS` | `--threads` | trial-runner worker threads | available parallelism |
//! | `OCTOPUS_TRIALS` | `--trials` | independent trials merged per data point | 1 |
//! | `OCTOPUS_SCHEDULER` | `--scheduler` | `timing-wheel` or `binary-heap` backend | `timing-wheel` |
//! | `OCTOPUS_SHARDS` | `--shards` | world shards per simulation (results identical at any count) | 1 |
//! | `OCTOPUS_PAR` | `--par` | parallel window execution across shards (results identical either way) | off |
//! | `OCTOPUS_POOL_THREADS` | `--pool-threads` | worker-pool width for parallel windows, `0` = auto (results identical at any width) | `0` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sharded;

use octopus_core::{AttackKind, OctopusConfig, SchedulerKind, SimConfig, TrialRunner};
use octopus_sim::Duration;

/// Experiment scale (paper-exact vs CI-sized), from `OCTOPUS_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters, same shapes — seconds of CPU.
    Quick,
    /// The paper's exact parameters — minutes of CPU.
    Full,
}

impl Scale {
    /// Read the scale from the environment (`quick` default).
    #[must_use]
    pub fn from_env() -> Self {
        RunArgs::from_env().scale
    }

    /// Parse a scale name (`quick`/`full`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Security-sim network size (paper: 1000).
    #[must_use]
    pub fn sim_n(self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Full => 1000,
        }
    }

    /// Security-sim duration (paper: 1000 s).
    #[must_use]
    pub fn sim_secs(self) -> u64 {
        match self {
            Scale::Quick => 400,
            Scale::Full => 1000,
        }
    }

    /// Anonymity ring size (paper: 100 000).
    #[must_use]
    pub fn anon_n(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Anonymity Monte-Carlo trials.
    #[must_use]
    pub fn anon_trials(self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Full => 1000,
        }
    }

    /// Timing-attack Monte-Carlo trials (Table 1).
    #[must_use]
    pub fn timing_trials(self) -> usize {
        match self {
            Scale::Quick => 200,
            Scale::Full => 1000,
        }
    }

    /// Simulated seconds for the PlanetLab-sized efficiency runs
    /// (Table 3 / Fig. 7a).
    #[must_use]
    pub fn planetlab_secs(self) -> u64 {
        match self {
            Scale::Quick => 240,
            Scale::Full => 600,
        }
    }

    /// Baseline lookup replays for the efficiency comparison (Table 3).
    #[must_use]
    pub fn comparison_trials(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Full => 2000,
        }
    }
}

/// Shared experiment configuration parsed once per binary: scale, seed,
/// trial/thread fan-out and scheduler backend, from environment
/// variables or CLI flags (see the [crate docs](self) for the table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Master-seed override; bins fall back to their per-bin constant
    /// via [`RunArgs::seed_or`] so published outputs stay reproducible.
    pub seed: Option<u64>,
    /// Worker threads for the [`TrialRunner`].
    pub threads: usize,
    /// Independent trials merged per data point.
    pub trials: usize,
    /// Event-queue backend for every simulation in the run.
    pub scheduler: SchedulerKind,
    /// World shards per simulation. Like the scheduler backend, a pure
    /// speed/layout knob: results are identical at any shard count.
    pub shards: usize,
    /// Parallel window execution: fan each shard's in-window event
    /// batch across the persistent worker pool between lookahead
    /// barriers. A pure speed knob too — sequential and parallel runs
    /// are byte-identical.
    pub parallel: bool,
    /// Worker-pool width for parallel windows (`0` = auto: available
    /// parallelism capped at the shard count). Byte-identical at every
    /// width.
    pub pool_threads: usize,
    /// This process's own endpoint for the UDP transport, as
    /// `id@host:port` (`octopus-node` only; simulations ignore it).
    pub addr: Option<String>,
    /// Comma-separated `id@host:port` peer endpoints for the UDP
    /// transport's peer table.
    pub peers: Option<String>,
    /// Path to an `octopus-node` TOML config file; flags and environment
    /// variables override values read from it.
    pub node_config: Option<String>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scale: Scale::Quick,
            seed: None,
            // Sanctioned thread-count site (OCT-LINT-004): RunArgs only
            // sizes the worker pool; results are merge-order-stable.
            #[allow(clippy::disallowed_methods)]
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            trials: 1,
            scheduler: SchedulerKind::default(),
            shards: 1,
            parallel: false,
            pool_threads: 0,
            addr: None,
            peers: None,
            node_config: None,
        }
    }
}

impl RunArgs {
    /// Parse from the process environment and CLI arguments.
    #[must_use]
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args, |k| std::env::var(k).ok())
    }

    /// Pure parsing core (tested without touching the real
    /// environment). Unknown flags and malformed values fall back to
    /// defaults rather than aborting an experiment run.
    #[must_use]
    pub fn parse(args: &[String], env: impl Fn(&str) -> Option<String>) -> Self {
        let mut out = RunArgs::default();
        let mut apply = |key: &str, value: &str| match key {
            "scale" => {
                if let Some(s) = Scale::parse(value) {
                    out.scale = s;
                }
            }
            "seed" => out.seed = value.parse().ok().or(out.seed),
            "threads" => {
                if let Ok(t) = value.parse::<usize>() {
                    out.threads = t.max(1);
                }
            }
            "trials" => {
                if let Ok(t) = value.parse::<usize>() {
                    out.trials = t.max(1);
                }
            }
            "scheduler" => {
                if let Some(k) = SchedulerKind::parse(value) {
                    out.scheduler = k;
                }
            }
            "shards" => {
                if let Ok(s) = value.parse::<usize>() {
                    out.shards = s.max(1);
                }
            }
            "par" => match value {
                "1" | "true" | "yes" | "on" => out.parallel = true,
                "0" | "false" | "no" | "off" => out.parallel = false,
                _ => {}
            },
            "pool-threads" => {
                if let Ok(t) = value.parse::<usize>() {
                    out.pool_threads = t;
                }
            }
            "addr" => out.addr = Some(value.to_string()),
            "peers" => out.peers = Some(value.to_string()),
            "node-config" => out.node_config = Some(value.to_string()),
            _ => {}
        };
        for (env_key, key) in [
            ("OCTOPUS_SCALE", "scale"),
            ("OCTOPUS_SEED", "seed"),
            ("OCTOPUS_THREADS", "threads"),
            ("OCTOPUS_TRIALS", "trials"),
            ("OCTOPUS_SCHEDULER", "scheduler"),
            ("OCTOPUS_SHARDS", "shards"),
            ("OCTOPUS_PAR", "par"),
            ("OCTOPUS_POOL_THREADS", "pool-threads"),
            ("OCTOPUS_ADDR", "addr"),
            ("OCTOPUS_PEERS", "peers"),
            ("OCTOPUS_NODE_CONFIG", "node-config"),
        ] {
            if let Some(v) = env(env_key) {
                apply(key, &v);
            }
        }
        const KNOWN_FLAGS: [&str; 11] = [
            "scale",
            "seed",
            "threads",
            "trials",
            "scheduler",
            "shards",
            "par",
            "pool-threads",
            "addr",
            "peers",
            "node-config",
        ];
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(flag) = arg.strip_prefix("--") else {
                continue;
            };
            match flag.split_once('=') {
                Some((key, value)) => apply(key, value),
                None if flag == "par" => {
                    // `--par` is a switch: consume the next token only
                    // when it is an explicit on/off word, so a bare
                    // `--par <bench-filter>` turns parallel on without
                    // swallowing the filter.
                    const PAR_WORDS: [&str; 8] =
                        ["1", "true", "yes", "on", "0", "false", "no", "off"];
                    if it.peek().is_some_and(|v| PAR_WORDS.contains(&v.as_str())) {
                        let value = it.next().expect("peeked value exists");
                        apply("par", value);
                    } else {
                        apply("par", "1");
                    }
                }
                None => {
                    // Only a known flag may consume the next token as
                    // its value, and never one that is itself a flag —
                    // an unknown `--verbose` must not swallow `--scale`.
                    if KNOWN_FLAGS.contains(&flag)
                        && it.peek().is_some_and(|v| !v.starts_with("--"))
                    {
                        let value = it.next().expect("peeked value exists");
                        apply(flag, value);
                    }
                }
            }
        }
        out
    }

    /// The seed to use: the override, or this bin's published constant.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// A trial runner sized to the requested thread count.
    #[must_use]
    pub fn runner(&self) -> TrialRunner {
        TrialRunner::new(self.threads)
    }

    /// A security-sim configuration matching §5.1 at this run's scale,
    /// seed policy and scheduler backend.
    #[must_use]
    pub fn security_config(&self, attack: AttackKind, attack_rate: f64, seed: u64) -> SimConfig {
        SimConfig {
            n: self.scale.sim_n(),
            malicious_fraction: 0.2,
            attack,
            attack_rate,
            consistent_collusion: 0.5,
            mean_lifetime: None,
            duration: Duration::from_secs(self.scale.sim_secs()),
            seed: self.seed_or(seed),
            octopus: OctopusConfig::for_network(self.scale.sim_n()),
            lookups_enabled: true,
            scheduler: self.scheduler,
            shards: self.shards,
            parallel: self.parallel,
            pool_threads: self.pool_threads,
        }
    }
}

/// A security-sim configuration matching §5.1 at the given scale (the
/// pre-[`RunArgs`] entry point, kept for tests and external callers).
#[must_use]
pub fn security_config(scale: Scale, attack: AttackKind, attack_rate: f64, seed: u64) -> SimConfig {
    RunArgs {
        scale,
        ..RunArgs::default()
    }
    .security_config(attack, attack_rate, seed)
}

/// Run every sweep point — expanded to `args.trials` independent seeded
/// trials each — through one parallel [`TrialRunner`] batch, and return
/// one merged [`SimReport`](octopus_core::SimReport) per point, in
/// order. Points *and* trials share the thread pool, so a six-point
/// sweep saturates the machine even at one trial per point.
#[must_use]
pub fn run_merged_sweep(args: &RunArgs, points: &[SimConfig]) -> Vec<octopus_core::SimReport> {
    let configs: Vec<SimConfig> = points
        .iter()
        .flat_map(|p| octopus_core::trial_configs(p, args.trials))
        .collect();
    let mut reports = args.runner().run(&configs).into_iter();
    points
        .iter()
        .map(|_| {
            reports
                .by_ref()
                .take(args.trials)
                .collect::<octopus_metrics::Accumulator<_>>()
                .into_inner()
                .expect("at least one trial per sweep point")
        })
        .collect()
}

/// Print a malicious-fraction-over-time series as the figures do.
pub fn print_fraction_series(label: &str, series: &[(f64, f64)]) {
    println!("# {label}: time(s)  fraction_of_malicious_nodes");
    for &(t, f) in series.iter().step_by(2) {
        println!("{t:7.0}  {f:.4}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn scale_parses_env_convention() {
        assert_eq!(Scale::Quick.sim_n(), 300);
        assert_eq!(Scale::Full.sim_n(), 1000);
        assert!(Scale::Full.anon_n() > Scale::Quick.anon_n());
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn security_config_matches_paper_shape() {
        let c = security_config(Scale::Full, AttackKind::LookupBias, 1.0, 1);
        assert_eq!(c.n, 1000);
        assert!((c.malicious_fraction - 0.2).abs() < 1e-12);
        assert_eq!(c.duration, Duration::from_secs(1000));
    }

    #[test]
    fn run_args_defaults() {
        let a = RunArgs::parse(&[], no_env);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, None);
        assert_eq!(a.trials, 1);
        assert!(a.threads >= 1);
        assert_eq!(a.scheduler, SchedulerKind::TimingWheel);
        assert_eq!(a.shards, 1);
        assert!(!a.parallel);
        assert_eq!(a.seed_or(31), 31);
    }

    #[test]
    fn par_flag_forms() {
        // bare flag, even as the last token or followed by another flag
        let bare: Vec<String> = ["--par"].iter().map(ToString::to_string).collect();
        assert!(RunArgs::parse(&bare, no_env).parallel);
        let before_flag: Vec<String> = ["--par", "--scale", "full"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = RunArgs::parse(&before_flag, no_env);
        assert!(a.parallel);
        assert_eq!(a.scale, Scale::Full);
        // explicit values, both spellings
        let off: Vec<String> = ["--par=0"].iter().map(ToString::to_string).collect();
        let env_on = |k: &str| (k == "OCTOPUS_PAR").then(|| "1".to_string());
        assert!(!RunArgs::parse(&off, env_on).parallel, "flag overrides env");
        assert!(RunArgs::parse(&[], env_on).parallel);
        let valued: Vec<String> = ["--par", "true"].iter().map(ToString::to_string).collect();
        assert!(RunArgs::parse(&valued, no_env).parallel);
        // a non-boolean token after --par is NOT swallowed: parallel
        // turns on and the token stays available to later flags
        let with_stray: Vec<String> = ["--par", "2", "--scale", "full"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = RunArgs::parse(&with_stray, no_env);
        assert!(a.parallel);
        assert_eq!(a.scale, Scale::Full);
    }

    #[test]
    fn transport_knobs_parse_from_flags_and_env() {
        let flags: Vec<String> = [
            "--addr",
            "1@127.0.0.1:7001",
            "--peers=2@127.0.0.1:7002,3@127.0.0.1:7003",
            "--node-config",
            "node.toml",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let a = RunArgs::parse(&flags, no_env);
        assert_eq!(a.addr.as_deref(), Some("1@127.0.0.1:7001"));
        assert_eq!(
            a.peers.as_deref(),
            Some("2@127.0.0.1:7002,3@127.0.0.1:7003")
        );
        assert_eq!(a.node_config.as_deref(), Some("node.toml"));

        let env = |k: &str| match k {
            "OCTOPUS_ADDR" => Some("9@10.0.0.1:9000".to_string()),
            "OCTOPUS_PEERS" => Some("8@10.0.0.2:9000".to_string()),
            "OCTOPUS_NODE_CONFIG" => Some("/etc/octopus.toml".to_string()),
            _ => None,
        };
        let a = RunArgs::parse(&[], env);
        assert_eq!(a.addr.as_deref(), Some("9@10.0.0.1:9000"));
        assert_eq!(a.peers.as_deref(), Some("8@10.0.0.2:9000"));
        assert_eq!(a.node_config.as_deref(), Some("/etc/octopus.toml"));

        // flags override env, like every other knob
        let a = RunArgs::parse(&flags, env);
        assert_eq!(a.addr.as_deref(), Some("1@127.0.0.1:7001"));
    }

    #[test]
    fn run_args_from_env_map() {
        let env = |k: &str| match k {
            "OCTOPUS_SCALE" => Some("full".to_string()),
            "OCTOPUS_SEED" => Some("99".to_string()),
            "OCTOPUS_THREADS" => Some("2".to_string()),
            "OCTOPUS_TRIALS" => Some("5".to_string()),
            "OCTOPUS_SCHEDULER" => Some("binary-heap".to_string()),
            "OCTOPUS_SHARDS" => Some("4".to_string()),
            "OCTOPUS_PAR" => Some("1".to_string()),
            _ => None,
        };
        let a = RunArgs::parse(&[], env);
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed_or(31), 99);
        assert_eq!(a.threads, 2);
        assert_eq!(a.trials, 5);
        assert_eq!(a.scheduler, SchedulerKind::BinaryHeap);
        assert_eq!(a.shards, 4);
        assert!(a.parallel);
    }

    #[test]
    fn cli_flags_override_env() {
        let env = |k: &str| (k == "OCTOPUS_SCALE").then(|| "full".to_string());
        let args: Vec<String> = ["--scale", "quick", "--seed=7", "--scheduler", "heap"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = RunArgs::parse(&args, env);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.scheduler, SchedulerKind::BinaryHeap);
    }

    #[test]
    fn unknown_flags_do_not_swallow_real_ones() {
        let args: Vec<String> = ["--verbose", "--scale", "full", "--seed", "--trials", "3"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = RunArgs::parse(&args, no_env);
        // --verbose must not eat --scale; --seed without a value must
        // not eat --trials
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed, None);
        assert_eq!(a.trials, 3);
    }

    #[test]
    fn malformed_values_fall_back() {
        let args: Vec<String> = ["--threads", "zero", "--trials=-3", "--scale", "big"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = RunArgs::parse(&args, no_env);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.trials, 1);
        assert!(a.threads >= 1);
    }

    #[test]
    fn run_args_plumb_into_security_config() {
        let args: Vec<String> = [
            "--scale",
            "full",
            "--scheduler",
            "heap",
            "--seed",
            "5",
            "--shards",
            "2",
            "--par",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let a = RunArgs::parse(&args, no_env);
        let c = a.security_config(AttackKind::FingerPollution, 0.5, 34);
        assert_eq!(c.n, 1000);
        assert_eq!(c.seed, 5);
        assert_eq!(c.scheduler, SchedulerKind::BinaryHeap);
        assert_eq!(c.shards, 2);
        assert!(c.parallel);
        assert!((c.attack_rate - 0.5).abs() < 1e-12);
    }
}
