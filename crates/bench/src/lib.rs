//! The benchmark harness: one runnable target per table and figure of
//! the paper (see DESIGN.md §3 for the full experiment index).
//!
//! Experiment binaries live in `src/bin/` and print rows/series shaped
//! like the paper's tables and figures; `cargo bench` additionally runs
//! Criterion micro-benchmarks of the underlying machinery (`benches/`).
//!
//! Scale control: every binary honours the `OCTOPUS_SCALE` environment
//! variable — `full` runs the paper's exact parameters (N = 1000 × 1000 s
//! security sims, N = 100 000 anonymity rings; minutes of CPU), while the
//! default `quick` runs a reduced-but-shape-preserving configuration
//! suitable for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use octopus_core::{AttackKind, OctopusConfig, SimConfig};
use octopus_sim::Duration;

/// Experiment scale, from `OCTOPUS_SCALE` (`quick` default, or `full`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters, same shapes — seconds of CPU.
    Quick,
    /// The paper's exact parameters — minutes of CPU.
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("OCTOPUS_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Security-sim network size (paper: 1000).
    #[must_use]
    pub fn sim_n(self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Full => 1000,
        }
    }

    /// Security-sim duration (paper: 1000 s).
    #[must_use]
    pub fn sim_secs(self) -> u64 {
        match self {
            Scale::Quick => 400,
            Scale::Full => 1000,
        }
    }

    /// Anonymity ring size (paper: 100 000).
    #[must_use]
    pub fn anon_n(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 100_000,
        }
    }

    /// Anonymity Monte-Carlo trials.
    #[must_use]
    pub fn anon_trials(self) -> usize {
        match self {
            Scale::Quick => 300,
            Scale::Full => 1000,
        }
    }
}

/// A security-sim configuration matching §5.1 at the given scale.
#[must_use]
pub fn security_config(scale: Scale, attack: AttackKind, attack_rate: f64, seed: u64) -> SimConfig {
    SimConfig {
        n: scale.sim_n(),
        malicious_fraction: 0.2,
        attack,
        attack_rate,
        consistent_collusion: 0.5,
        mean_lifetime: None,
        duration: Duration::from_secs(scale.sim_secs()),
        seed,
        octopus: OctopusConfig::for_network(scale.sim_n()),
        lookups_enabled: true,
    }
}

/// Print a malicious-fraction-over-time series as the figures do.
pub fn print_fraction_series(label: &str, series: &[(f64, f64)]) {
    println!("# {label}: time(s)  fraction_of_malicious_nodes");
    for &(t, f) in series.iter().step_by(2) {
        println!("{t:7.0}  {f:.4}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_convention() {
        assert_eq!(Scale::Quick.sim_n(), 300);
        assert_eq!(Scale::Full.sim_n(), 1000);
        assert!(Scale::Full.anon_n() > Scale::Quick.anon_n());
    }

    #[test]
    fn security_config_matches_paper_shape() {
        let c = security_config(Scale::Full, AttackKind::LookupBias, 1.0, 1);
        assert_eq!(c.n, 1000);
        assert!((c.malicious_fraction - 0.2).abs() < 1e-12);
        assert_eq!(c.duration, Duration::from_secs(1000));
    }
}
