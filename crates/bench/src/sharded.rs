//! The `sharded_world` gossip workload, shared between the criterion
//! bench (`benches/sharded_world.rs`) and the `bench_snapshot` bin that
//! emits the committed `BENCH_sharded_world.json` baseline.
//!
//! The workload builds an N-node overlay and drives one simulated
//! second of staggered per-node gossip timers, with half the traffic
//! deliberately crossing the ID-space midpoint so multi-shard runs
//! exercise the cross-shard bus and its lookahead barriers. Results are
//! byte-identical across shard counts and drive modes (pinned by the
//! engine_determinism tests and [`drive`]'s ledger return value); what
//! varies — and what the bench and snapshot measure — is events per
//! second.

use octopus_id::NodeId;
use octopus_net::{
    Addr, ConstantLatency, NodeBehavior, Runtime, SchedulerKind, StepOutcome, WireMsg, World,
};
use octopus_sim::{Duration, SimTime};

/// Simulated horizon driven per iteration, in milliseconds.
pub const SIM_MILLIS: u64 = 1000;

/// The engine's real ~72-byte message shape.
#[derive(Clone, Copy)]
pub struct Gossip(#[allow(dead_code)] pub [u64; 9]);

impl WireMsg for Gossip {
    fn wire_bytes(&self) -> u32 {
        72
    }
}

/// A node that gossips to a ring neighbor and to a node across the
/// ID-space midpoint on alternating ~300 ms ticks.
pub struct GossipNode {
    near: Addr,
    far: Addr,
    tick: u64,
}

impl NodeBehavior for GossipNode {
    type Msg = Gossip;
    type Timer = ();
    type Control = ();

    fn on_start(&mut self, ctx: &mut dyn Runtime<Gossip, (), ()>) {
        // stagger the first tick so load spreads over the horizon
        let phase = ctx.addr().0 % 300_000;
        ctx.set_timer(Duration(phase), ());
    }

    fn on_message(&mut self, _ctx: &mut dyn Runtime<Gossip, (), ()>, _from: Addr, _msg: Gossip) {}

    fn on_timer(&mut self, ctx: &mut dyn Runtime<Gossip, (), ()>, (): ()) {
        let dest = if self.tick % 2 == 0 {
            self.near
        } else {
            self.far
        };
        self.tick += 1;
        ctx.send(dest, Gossip([self.tick; 9]));
        // re-arm until the horizon, then let the queue drain to Idle
        if ctx.now() + Duration::from_millis(300) <= SimTime::from_millis(SIM_MILLIS) {
            ctx.set_timer(Duration::from_millis(300), ());
        }
    }
}

/// `n` addresses spread evenly around the ID space.
#[must_use]
pub fn node_ids(n: usize) -> Vec<Addr> {
    let stride = u64::MAX / n as u64;
    (0..n as u64).map(|i| NodeId(i * stride + i)).collect()
}

/// How the world is driven to idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Classic sequential engine: pop one global event at a time.
    Step,
    /// Lookahead windows, each shard's batch run inline.
    Win,
    /// Lookahead windows, each shard's batch on its own thread.
    Par,
}

impl Mode {
    /// Stable short name used in bench labels and the JSON snapshot.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::Step => "step",
            Mode::Win => "win",
            Mode::Par => "par",
        }
    }
}

/// ≈ events per [`drive`] call: one timer + one delivery per node per
/// ~300 ms of the simulated second.
#[must_use]
pub fn approx_events(n: usize) -> u64 {
    (n as u64) * 2 * (SIM_MILLIS / 300)
}

/// Build the overlay and run [`SIM_MILLIS`] of gossip; returns total
/// bytes shipped (for cross-shard/mode sanity checks).
#[must_use]
pub fn drive(n: usize, shards: usize, mode: Mode) -> u64 {
    let ids = node_ids(n);
    let mut w: World<GossipNode, _> = World::with_shards(
        ConstantLatency(Duration::from_millis(40)),
        7,
        SchedulerKind::default(),
        shards,
    );
    w.set_parallel(mode == Mode::Par);
    for (i, &id) in ids.iter().enumerate() {
        w.insert_node(
            id,
            GossipNode {
                near: ids[(i + 1) % n],
                far: ids[(i + n / 2) % n],
                tick: id.0 % 2,
            },
        );
    }
    match mode {
        Mode::Step => while !matches!(w.step(), StepOutcome::Idle) {},
        Mode::Win | Mode::Par => while w.run_window(SimTime(u64::MAX)).is_some() {},
    }
    w.ledger().total_bytes()
}
