//! Criterion bench of the full security simulator: events per second of
//! a small Octopus network under lookup-bias attack.

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_core::{AttackKind, OctopusConfig, SecuritySim, SimConfig};
use octopus_sim::Duration;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10); // one sample is a full 30-simulated-second run
    g.bench_function("security_sim_100n_30s", |b| {
        b.iter(|| {
            let cfg = SimConfig {
                n: 100,
                malicious_fraction: 0.2,
                attack: AttackKind::LookupBias,
                attack_rate: 1.0,
                consistent_collusion: 0.5,
                mean_lifetime: None,
                duration: Duration::from_secs(30),
                seed: 1,
                octopus: OctopusConfig::for_network(100),
                lookups_enabled: true,
                scheduler: Default::default(),
                shards: 1,
                parallel: false,
                pool_threads: 0,
            };
            SecuritySim::new(cfg).run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
