//! Criterion bench of the sharded world at ring sizes the paper never
//! reached: build an N-node overlay (N = 100 000 at `OCTOPUS_SCALE=full`,
//! 10 000 at the default `quick`), drive one simulated second of
//! staggered per-node gossip timers — half the traffic deliberately
//! crossing the ID-space midpoint so multi-shard runs exercise the
//! cross-shard bus and its lookahead barriers — and compare 1/2/4/8
//! shards under three drive modes: the classic one-event-at-a-time
//! `step` engine, sequential lookahead windows (`win`), and parallel
//! windows with each shard's batch on its own thread (`par`). Results
//! are byte-identical across all of it (pinned by the
//! engine_determinism tests and the in-bench sanity sweep); this bench
//! measures what the partition and the threads cost or save in events
//! per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octopus_bench::Scale;
use octopus_id::NodeId;
use octopus_net::{
    Addr, ConstantLatency, Ctx, NodeBehavior, SchedulerKind, StepOutcome, WireMsg, World,
};
use octopus_sim::{Duration, SimTime};

/// Simulated horizon driven per iteration.
const SIM_MILLIS: u64 = 1000;

#[derive(Clone, Copy)]
struct Gossip(#[allow(dead_code)] [u64; 9]); // the engine's real ~72-byte message shape

impl WireMsg for Gossip {
    fn wire_bytes(&self) -> u32 {
        72
    }
}

/// A node that gossips to a ring neighbor and to a node across the
/// ID-space midpoint on alternating ~300 ms ticks.
struct GossipNode {
    near: Addr,
    far: Addr,
    tick: u64,
}

impl NodeBehavior for GossipNode {
    type Msg = Gossip;
    type Timer = ();
    type Control = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Gossip, (), ()>) {
        // stagger the first tick so load spreads over the horizon
        let phase = ctx.addr().0 % 300_000;
        ctx.set_timer(Duration(phase), ());
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Gossip, (), ()>, _from: Addr, _msg: Gossip) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Gossip, (), ()>, (): ()) {
        let dest = if self.tick % 2 == 0 {
            self.near
        } else {
            self.far
        };
        self.tick += 1;
        ctx.send(dest, Gossip([self.tick; 9]));
        // re-arm until the horizon, then let the queue drain to Idle
        if ctx.now() + Duration::from_millis(300) <= SimTime::from_millis(SIM_MILLIS) {
            ctx.set_timer(Duration::from_millis(300), ());
        }
    }
}

fn node_ids(n: usize) -> Vec<Addr> {
    let stride = u64::MAX / n as u64;
    (0..n as u64).map(|i| NodeId(i * stride + i)).collect()
}

/// How the world is driven to idle.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Classic sequential engine: pop one global event at a time.
    Step,
    /// Lookahead windows, each shard's batch run inline.
    Win,
    /// Lookahead windows, each shard's batch on its own thread.
    Par,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Step => "step",
            Mode::Win => "win",
            Mode::Par => "par",
        }
    }
}

/// Build the overlay and run `SIM_MILLIS` of gossip; returns total
/// bytes shipped (for cross-shard/mode sanity checks).
fn drive(n: usize, shards: usize, mode: Mode) -> u64 {
    let ids = node_ids(n);
    let mut w: World<GossipNode, _> = World::with_shards(
        ConstantLatency(Duration::from_millis(40)),
        7,
        SchedulerKind::default(),
        shards,
    );
    w.set_parallel(mode == Mode::Par);
    for (i, &id) in ids.iter().enumerate() {
        w.insert_node(
            id,
            GossipNode {
                near: ids[(i + 1) % n],
                far: ids[(i + n / 2) % n],
                tick: id.0 % 2,
            },
        );
    }
    match mode {
        Mode::Step => while !matches!(w.step(), StepOutcome::Idle) {},
        Mode::Win | Mode::Par => while w.run_window(SimTime(u64::MAX)).is_some() {},
    }
    w.ledger().total_bytes()
}

fn bench_sharded_world(c: &mut Criterion) {
    // sanity at a cheap size: neither the bus nor the windows nor the
    // threads may change what happens
    let reference = drive(1000, 1, Mode::Step);
    for shards in [1usize, 2, 4, 8] {
        for mode in [Mode::Step, Mode::Win, Mode::Par] {
            assert_eq!(
                drive(1000, shards, mode),
                reference,
                "{shards}-shard {} divergence",
                mode.name()
            );
        }
    }

    let n = match Scale::from_env() {
        Scale::Quick => 10_000,
        Scale::Full => 100_000,
    };
    // ≈ events per iteration: one timer + one delivery per node per
    // ~300 ms of the simulated second
    let events = (n as u64) * 2 * (SIM_MILLIS / 300);
    let mut g = c.benchmark_group("sharded_world");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for shards in [1usize, 2, 4, 8] {
        for mode in [Mode::Step, Mode::Win, Mode::Par] {
            if mode == Mode::Par && shards == 1 {
                continue; // parallel windows need at least two shards
            }
            g.bench_function(
                &format!("gossip_n{n}_shards{shards}_{}", mode.name()),
                |b| b.iter(|| drive(n, shards, mode)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_world);
criterion_main!(benches);
