//! Criterion bench of the sharded world at ring sizes the paper never
//! reached: build an N-node overlay (N = 100 000 at `OCTOPUS_SCALE=full`,
//! 10 000 at the default `quick`), drive one simulated second of
//! staggered per-node gossip timers — half the traffic deliberately
//! crossing the ID-space midpoint so multi-shard runs exercise the
//! cross-shard bus and its lookahead barriers — and compare 1/2/4/8
//! shards under three drive modes: the classic one-event-at-a-time
//! `step` engine, sequential lookahead windows (`win`), and parallel
//! windows with each shard's batch on its own thread (`par`). Results
//! are byte-identical across all of it (pinned by the
//! engine_determinism tests and the in-bench sanity sweep); this bench
//! measures what the partition and the threads cost or save in events
//! per second.
//!
//! The workload itself lives in `octopus_bench::sharded`, shared with
//! the `bench_snapshot` bin that emits the committed
//! `BENCH_sharded_world.json` baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octopus_bench::sharded::{approx_events, drive, Mode};
use octopus_bench::Scale;

fn bench_sharded_world(c: &mut Criterion) {
    // sanity at a cheap size: neither the bus nor the windows nor the
    // threads may change what happens
    let reference = drive(1000, 1, Mode::Step);
    for shards in [1usize, 2, 4, 8] {
        for mode in [Mode::Step, Mode::Win, Mode::Par] {
            assert_eq!(
                drive(1000, shards, mode),
                reference,
                "{shards}-shard {} divergence",
                mode.name()
            );
        }
    }

    let n = match Scale::from_env() {
        Scale::Quick => 10_000,
        Scale::Full => 100_000,
    };
    let mut g = c.benchmark_group("sharded_world");
    g.sample_size(10);
    g.throughput(Throughput::Elements(approx_events(n)));
    for shards in [1usize, 2, 4, 8] {
        for mode in [Mode::Step, Mode::Win, Mode::Par] {
            if mode == Mode::Par && shards == 1 {
                continue; // parallel windows need at least two shards
            }
            g.bench_function(
                &format!("gossip_n{n}_shards{shards}_{}", mode.name()),
                |b| b.iter(|| drive(n, shards, mode)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_world);
criterion_main!(benches);
