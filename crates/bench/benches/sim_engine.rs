//! Criterion bench of the event-queue backends under the paper
//! workload: N = 1000 nodes' worth of periodic protocol timers
//! (stabilize 2 s, walk 15 s, finger 30 s, surveillance 60 s, lookup
//! 60 s) with latency-delayed message deliveries, driven queue-only so
//! the measurement isolates scheduler cost. Reported as ns per popped
//! event — the inverse of events/sec — for each backend.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octopus_sim::{split_seed, Duration, EventQueue, SchedulerKind, SimTime};

const N_NODES: u64 = 1000;
const SIM_SECS: u64 = 30;

/// The §5.1 periodic timer kinds and their periods.
const TIMERS: [(u8, u64); 5] = [
    (0, 2),  // stabilize
    (1, 15), // random walk
    (2, 30), // finger update
    (3, 60), // surveillance
    (4, 60), // application lookup
];

/// Mirror of the engine's real event shape: `octopus_core::Msg` is
/// 72 bytes, so the world's `Event::Deliver` moves ≈ 88 bytes per heap
/// sift — benching a pointer-sized toy event would flatter the heap.
type WirePayload = [u64; 9];

#[derive(Clone, Copy)]
enum Ev {
    Timer { node: u64, kind: u8 },
    Deliver { hop: u8, msg: WirePayload },
}

/// Drive the workload on one backend; returns the number of events
/// popped (identical across backends — the determinism contract).
fn drive(kind: SchedulerKind) -> u64 {
    let mut q: EventQueue<Ev> = EventQueue::with_scheduler(kind);
    let end = SimTime::from_secs(SIM_SECS);
    // deterministic cheap latency stream (~20–420 ms one-way)
    let mut latency_state = 0x9E37_79B9u64;
    let mut next_latency = move || {
        latency_state = split_seed(latency_state, 0xA5A5);
        Duration(20_000 + latency_state % 400_000)
    };
    for node in 0..N_NODES {
        for (timer, period_s) in TIMERS {
            // phase-offset the periodic timers as real joins would
            let phase = split_seed(node, u64::from(timer)) % (period_s * 1_000_000);
            q.push(SimTime(phase), Ev::Timer { node, kind: timer });
        }
    }
    let mut events = 0u64;
    while let Some((t, ev)) = q.pop() {
        events += 1;
        if t >= end {
            continue; // drain without refilling past the horizon
        }
        match ev {
            Ev::Timer { node, kind } => {
                let period_s = TIMERS[kind as usize].1;
                q.push(t + Duration::from_secs(period_s), Ev::Timer { node, kind });
                // each timer firing sends a request that gets a reply
                let msg = [node ^ u64::from(kind); 9];
                q.push(t + next_latency(), Ev::Deliver { hop: 1, msg });
            }
            Ev::Deliver { hop, msg } => {
                // a short request/reply/forward chain per message
                if hop < 3 {
                    q.push(t + next_latency(), Ev::Deliver { hop: hop + 1, msg });
                }
            }
        }
    }
    events
}

fn bench_sim_engine(c: &mut Criterion) {
    let heap_events = drive(SchedulerKind::BinaryHeap);
    let wheel_events = drive(SchedulerKind::TimingWheel);
    assert_eq!(
        heap_events, wheel_events,
        "backends must process identical event streams"
    );
    let mut g = c.benchmark_group("sim_engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(heap_events));
    g.bench_function("events_binary_heap_n1000", |b| {
        b.iter(|| drive(SchedulerKind::BinaryHeap))
    });
    g.bench_function("events_timing_wheel_n1000", |b| {
        b.iter(|| drive(SchedulerKind::TimingWheel))
    });
    g.finish();
}

criterion_group!(benches, bench_sim_engine);
criterion_main!(benches);
