//! Criterion benches of the lookup machinery: greedy next-hop decisions
//! and full iterative lookups on a 10 000-node ring.

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_chord::{iterative_lookup, ChordConfig, GroundTruthView, RoutingView};
use octopus_id::{IdSpace, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_lookup(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let space = IdSpace::random(10_000, &mut rng);
    let cfg = ChordConfig::for_network(10_000);
    let view = GroundTruthView::new(&space, cfg);
    let start = space.ids()[0];
    c.bench_function("iterative_lookup_10k", |b| {
        b.iter(|| {
            let key = Key(rng.gen());
            iterative_lookup(&view, start, std::hint::black_box(key))
        })
    });
    let table = view.table_of(start);
    c.bench_function("next_hop_decision", |b| {
        b.iter(|| {
            let key = Key(rng.gen());
            table.next_hop(std::hint::black_box(key))
        })
    });
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
