//! Criterion micro-benchmarks of the crypto substrate: SHA-256
//! throughput, RSA-64 sign/verify (paid on every routing-table
//! response), and onion wrap/unwrap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octopus_crypto::{onion, sha256, KeyPair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 1024];
    let mut g = c.benchmark_group("sha256");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("1KiB", |b| b.iter(|| sha256(std::hint::black_box(&data))));
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let kp = KeyPair::generate(&mut rng);
    let msg = b"signed routing table bytes";
    let sig = kp.sign(msg);
    c.bench_function("rsa64_sign", |b| {
        b.iter(|| kp.sign(std::hint::black_box(msg)))
    });
    c.bench_function("rsa64_verify", |b| {
        b.iter(|| kp.public().verify(std::hint::black_box(msg), sig))
    });
}

fn bench_onion(c: &mut Criterion) {
    let keys: Vec<[u8; 32]> = (0..4).map(|i| [i as u8 + 1; 32]).collect();
    let hops = [2u64, 3, 4, 0];
    let payload = vec![0x42u8; 64];
    c.bench_function("onion_wrap_4hops", |b| {
        b.iter(|| onion::wrap(std::hint::black_box(&payload), &keys, &hops, 7))
    });
    let wrapped = onion::wrap(&payload, &keys, &hops, 7);
    c.bench_function("onion_unwrap_layer", |b| {
        b.iter(|| onion::unwrap(std::hint::black_box(&wrapped), &keys[0]).unwrap())
    });
}

criterion_group!(benches, bench_sha256, bench_rsa, bench_onion);
criterion_main!(benches);
