//! Million-node scale determinism: the gossip workload at N=1,000,000
//! on 8 shards must reproduce a pinned byte ledger, in both the
//! sequential and the pooled-parallel engine.
//!
//! Ignored by default — the run processes ~6.6M events over a
//! million-node world and takes minutes in a debug build. Run it with
//!
//! ```text
//! cargo test -p octopus-bench --release -- --ignored million_node_ring
//! ```

use octopus_bench::sharded::{drive, Mode};

/// Total bytes shipped by `drive(1_000_000, 8, _)`, pinned from a
/// release run. Any engine change that shifts this number changed
/// *results*, not just speed.
const MILLION_NODE_BYTES: u64 = 333_336_500;

#[test]
#[ignore = "minutes-long at N=1,000,000; run with --release -- --ignored"]
fn million_node_ring() {
    assert_eq!(
        drive(1_000_000, 8, Mode::Par),
        MILLION_NODE_BYTES,
        "parallel million-node ledger diverged from the pinned digest"
    );
    assert_eq!(
        drive(1_000_000, 8, Mode::Step),
        MILLION_NODE_BYTES,
        "sequential million-node ledger diverged from the pinned digest"
    );
}
