//! The UDP poll-loop host: one node behind a real socket.
//!
//! No async runtime: a blocking `std::net::UdpSocket` with a short read
//! timeout, and the same timer-wheel [`EventQueue`] the simulator uses,
//! here keyed by wall-clock microseconds since host start. Each loop
//! iteration drains due timers and delayed sends, then waits on the
//! socket for up to the read timeout. Handler effects are collected
//! through the shared buffer-backed [`Ctx`] — protocol code cannot tell
//! this host from the simulator.
//!
//! Inbound datagrams pass through [`octopus_net::decode_frame`]; every
//! malformation (short frame, bad magic, version skew, checksum
//! mismatch, payload garbage) is counted in [`HostStats`] and dropped.
//! A hostile datagram can never panic the host.

use std::io::ErrorKind;
use std::net::UdpSocket;
use std::time::Instant;

use octopus_net::{
    encode_frame, wire::MAX_PAYLOAD, Addr, Ctx, FrameHeader, NodeBehavior, Runtime, Transport,
    WireCodec,
};
use octopus_sim::{derive_rng, split_seed, Duration, EventQueue, SchedulerKind, SimTime};
use rand::rngs::StdRng;

use crate::peer::PeerTable;

/// How long one socket wait may block before the loop re-checks timers.
const READ_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(2);

// This host *is* the sanctioned wall-clock boundary: real sockets run
// on real time (the octolint OCT-LINT-002 transport exemption; clippy's
// disallowed-methods layer needs the same sanction spelled out).
#[allow(clippy::disallowed_methods)]
fn wall_now() -> Instant {
    Instant::now()
}

/// Datagram counters (diagnostics and smoke-test assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Well-formed frames addressed to this node and delivered.
    pub frames_in: u64,
    /// Frames encoded and handed to the socket.
    pub frames_out: u64,
    /// Datagrams rejected by the frame codec (or misaddressed).
    pub frames_rejected: u64,
    /// Outbound messages dropped because the peer table has no address
    /// for the destination.
    pub dropped_unknown_peer: u64,
    /// Outbound messages whose payload exceeded [`MAX_PAYLOAD`] or whose
    /// socket send failed.
    pub send_failures: u64,
}

/// A queued future effect: a timer firing, or a delayed/local send.
enum Pending<M, T> {
    /// Fire `B::Timer`.
    Timer(T),
    /// Transmit `msg` to `to` (delayed sends and loopback delivery).
    Send(Addr, M),
}

/// One Octopus node served over a real UDP socket.
pub struct UdpHost<B: NodeBehavior> {
    node: B,
    addr: Addr,
    socket: UdpSocket,
    peers: PeerTable,
    queue: EventQueue<Pending<B::Msg, B::Timer>>,
    rng: StdRng,
    epoch: Instant,
    started: bool,
    // pooled handler buffers (same discipline as the simulator's shards)
    outbox: Vec<(Addr, B::Msg, Duration)>,
    timers: Vec<(Duration, B::Timer)>,
    controls: Vec<B::Control>,
    collected: Vec<B::Control>,
    /// Datagram counters.
    pub stats: HostStats,
}

impl<B: NodeBehavior> UdpHost<B>
where
    B::Msg: WireCodec,
{
    /// Host `node` at overlay address `addr` on `socket`. The node's
    /// RNG stream derives from `master_seed` and its overlay id — two
    /// boots with the same seed draw identical protocol randomness, on
    /// any machine (OCT-LINT-003's seeded-randomness contract; only
    /// *time* is wall-clock here).
    ///
    /// # Errors
    /// Propagates failure to set the socket read timeout.
    pub fn new(
        node: B,
        addr: Addr,
        socket: UdpSocket,
        peers: PeerTable,
        master_seed: u64,
    ) -> std::io::Result<Self> {
        socket.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(UdpHost {
            node,
            addr,
            socket,
            peers,
            queue: EventQueue::with_scheduler(SchedulerKind::TimingWheel),
            rng: derive_rng(split_seed(master_seed, addr.0), b"udp-node", 0),
            epoch: wall_now(),
            started: false,
            outbox: Vec::new(),
            timers: Vec::new(),
            controls: Vec::new(),
            collected: Vec::new(),
            stats: HostStats::default(),
        })
    }

    /// Microseconds since host start, as the node-visible clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime(u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX))
    }

    /// The hosted node's overlay address.
    #[must_use]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The hosted node (smoke-test observation).
    #[must_use]
    pub fn node(&self) -> &B {
        &self.node
    }

    /// Run a handler against the pooled buffers, then flush its effects.
    fn dispatch(&mut self, f: impl FnOnce(&mut B, &mut dyn Runtime<B::Msg, B::Timer, B::Control>)) {
        let now = self.now();
        let mut ctx = Ctx::from_parts(
            now,
            self.addr,
            &mut self.rng,
            &mut self.outbox,
            &mut self.timers,
            &mut self.controls,
        );
        f(&mut self.node, &mut ctx);
        // flush: immediate sends hit the socket now; delayed sends and
        // timers go through the wheel keyed by wall-clock microseconds
        let sends: Vec<_> = self.outbox.drain(..).collect();
        for (to, msg, extra) in sends {
            if extra == Duration::ZERO && to != self.addr {
                self.transmit(to, &msg);
            } else {
                // loopback delivery also queues: a self-send must not
                // re-enter the handler that produced it
                self.queue.push(now + extra, Pending::Send(to, msg));
            }
        }
        for (delay, timer) in self.timers.drain(..) {
            self.queue.push(now + delay, Pending::Timer(timer));
        }
        self.collected.append(&mut self.controls);
    }

    /// Encode and send one frame.
    fn transmit(&mut self, to: Addr, msg: &B::Msg) {
        let Some(dest) = self.peers.get(to) else {
            self.stats.dropped_unknown_peer += 1;
            return;
        };
        let header = FrameHeader {
            from: self.addr,
            to,
        };
        // encode_frame panics past MAX_PAYLOAD; a live host drops the
        // oversized message instead (and counts it — silent loss of a
        // protocol message is a diagnosis nightmare)
        let mut payload_probe = Vec::new();
        msg.encode_payload(&mut payload_probe);
        if payload_probe.len() > MAX_PAYLOAD {
            self.stats.send_failures += 1;
            return;
        }
        let frame = encode_frame(header, msg);
        match self.socket.send_to(&frame, dest) {
            Ok(_) => self.stats.frames_out += 1,
            Err(_) => self.stats.send_failures += 1,
        }
    }

    /// Deliver the node's `on_start` (arms its periodic timers).
    pub fn start(&mut self) {
        if !self.started {
            self.started = true;
            self.dispatch(|n, ctx| n.on_start(ctx));
        }
    }

    /// Fire every timer and queued send that is due now.
    fn drain_due(&mut self) {
        loop {
            let bound = SimTime(self.now().0.saturating_add(1));
            let Some((_, pending)) = self.queue.pop_before(bound) else {
                return;
            };
            match pending {
                Pending::Timer(t) => self.dispatch(|n, ctx| n.on_timer(ctx, t)),
                Pending::Send(to, msg) => {
                    if to == self.addr {
                        let from = self.addr;
                        self.dispatch(|n, ctx| n.on_message(ctx, from, msg));
                    } else {
                        self.transmit(to, &msg);
                    }
                }
            }
        }
    }

    /// Block on the socket for up to the read timeout; decode and
    /// deliver at most one frame. Returns whether a datagram arrived.
    fn recv_one(&mut self) -> bool {
        let mut buf = [0u8; MAX_PAYLOAD + 64];
        match self.socket.recv_from(&mut buf) {
            Ok((len, _src)) => {
                match octopus_net::decode_frame::<B::Msg>(&buf[..len]) {
                    Ok((header, msg)) if header.to == self.addr => {
                        self.stats.frames_in += 1;
                        let from = header.from;
                        self.dispatch(|n, ctx| n.on_message(ctx, from, msg));
                    }
                    // well-formed but misaddressed (stale peer table on
                    // the sender) — reject, don't deliver
                    Ok(_) | Err(_) => self.stats.frames_rejected += 1,
                }
                true
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => false,
            // transient socket errors (e.g. ECONNREFUSED surfaced on a
            // connected peer's ICMP) must not kill the loop
            Err(_) => false,
        }
    }
}

impl<B: NodeBehavior> Transport<B> for UdpHost<B>
where
    B::Msg: WireCodec,
{
    fn inject(&mut self, from: Addr, to: Addr, msg: B::Msg) {
        if to == self.addr {
            self.dispatch(|n, ctx| n.on_message(ctx, from, msg));
        } else {
            self.transmit(to, &msg);
        }
    }

    /// Poll sockets and timers for `budget` of *wall-clock* time (the
    /// simulator's implementation of the same trait advances virtual
    /// time instead).
    fn drive(&mut self, budget: Duration) -> Vec<B::Control> {
        self.start();
        let deadline = wall_now() + std::time::Duration::from_micros(budget.0);
        loop {
            self.drain_due();
            if wall_now() >= deadline {
                break;
            }
            self.recv_one();
        }
        std::mem::take(&mut self.collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_id::NodeId;
    use octopus_net::WireMsg;
    use rand::Rng;

    /// Counts messages; replies `v+1` to even values.
    struct Echo {
        seen: Vec<(Addr, u32)>,
        timers_fired: u32,
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Num(u32);

    impl WireMsg for Num {
        fn wire_bytes(&self) -> u32 {
            4
        }
    }

    impl WireCodec for Num {
        fn encode_payload(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0.to_be_bytes());
        }
        fn decode_payload(
            r: &mut octopus_net::PayloadReader<'_>,
        ) -> Result<Self, octopus_net::DecodeError> {
            Ok(Num(r.u32()?))
        }
    }

    impl NodeBehavior for Echo {
        type Msg = Num;
        type Timer = u8;
        type Control = u32;

        fn on_message(&mut self, ctx: &mut dyn Runtime<Num, u8, u32>, from: Addr, msg: Num) {
            self.seen.push((from, msg.0));
            ctx.emit(msg.0);
            if msg.0 % 2 == 0 {
                ctx.send(from, Num(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut dyn Runtime<Num, u8, u32>, _timer: u8) {
            self.timers_fired += 1;
            let _: u64 = ctx.rng().gen();
        }

        fn on_start(&mut self, ctx: &mut dyn Runtime<Num, u8, u32>) {
            ctx.set_timer(Duration::from_millis(1), 0);
        }
    }

    fn echo_host(id: u64) -> UdpHost<Echo> {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        UdpHost::new(
            Echo {
                seen: Vec::new(),
                timers_fired: 0,
            },
            NodeId(id),
            socket,
            PeerTable::new(),
            7,
        )
        .expect("host")
    }

    #[test]
    fn two_hosts_exchange_frames() {
        let mut a = echo_host(1);
        let mut b = echo_host(2);
        let addr_a = a.socket.local_addr().expect("addr");
        let addr_b = b.socket.local_addr().expect("addr");
        a.peers.insert(NodeId(2), addr_b);
        b.peers.insert(NodeId(1), addr_a);

        // a sends 10 to b; b replies 11
        a.inject(NodeId(1), NodeId(2), Num(10));
        let controls_b = b.drive(Duration::from_millis(30));
        assert_eq!(controls_b, vec![10]);
        let controls_a = a.drive(Duration::from_millis(30));
        assert_eq!(controls_a, vec![11]);
        assert_eq!(b.node().seen, vec![(NodeId(1), 10)]);
        assert_eq!(a.node().seen, vec![(NodeId(2), 11)]);
        assert_eq!(a.stats.frames_out, 1);
        assert_eq!(a.stats.frames_in, 1);
    }

    #[test]
    fn garbage_datagrams_rejected_not_fatal() {
        let mut h = echo_host(1);
        let dest = h.socket.local_addr().expect("addr");
        let spray = UdpSocket::bind("127.0.0.1:0").expect("bind");
        spray.send_to(b"not a frame at all", dest).expect("send");
        spray.send_to(&[0u8; 64], dest).expect("send");
        // valid magic, hostile everything-else
        let mut junk = b"OCT0".to_vec();
        junk.extend_from_slice(&[0xff; 40]);
        spray.send_to(&junk, dest).expect("send");
        let controls = h.drive(Duration::from_millis(30));
        assert!(controls.is_empty());
        assert_eq!(h.stats.frames_rejected, 3);
        assert_eq!(h.stats.frames_in, 0);
    }

    #[test]
    fn timers_fire_and_unknown_peers_counted() {
        let mut h = echo_host(1);
        h.drive(Duration::from_millis(20));
        assert!(h.node().timers_fired >= 1, "on_start timer fired");
        h.inject(NodeId(1), NodeId(99), Num(4)); // nobody knows 99
        assert_eq!(h.stats.dropped_unknown_peer, 1);
    }

    #[test]
    fn loopback_send_delivers_via_queue() {
        let mut h = echo_host(5);
        h.inject(NodeId(9), NodeId(5), Num(3)); // odd: no reply
        assert_eq!(h.node().seen, vec![(NodeId(9), 3)]);
        let controls = h.drive(Duration::from_millis(10));
        assert_eq!(controls, vec![3]);
    }

    #[test]
    fn rng_stream_is_seed_deterministic() {
        let mut a = derive_rng(split_seed(42, 7), b"udp-node", 0);
        let mut b = derive_rng(split_seed(42, 7), b"udp-node", 0);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }
}
