//! `octopus-node`: one Octopus node (peer or CA) over real UDP.
//!
//! Boot is fully deterministic from the shared master seed: every
//! process in a deployment derives the *same* certificate authority,
//! the same per-node keypairs and certificates, and the same idealized
//! ring state, purely from `seed` and the (sorted) peer table — no
//! key-distribution step, which keeps multi-process bring-up a matter
//! of pointing N processes at the same config. The protocol running on
//! top is the untouched `octopus-core` code driven through the
//! transport-agnostic `Runtime` boundary.
//!
//! ```text
//! octopus-node --node-config node3.toml
//! octopus-node --addr 3@127.0.0.1:7003 \
//!              --peers 1@127.0.0.1:7001,2@127.0.0.1:7002,3@127.0.0.1:7003 \
//!              --seed 42
//! ```
//!
//! Progress is reported as machine-parsable lines on stdout (`ready`,
//! `lookup-done`, `final`, `clean-shutdown`) — the multi-process smoke
//! test drives and asserts on exactly these.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::UdpSocket;

use octopus_bench::RunArgs;
use octopus_chord::signed::successor_list_table;
use octopus_chord::{ChordConfig, SignedRoutingTable};
use octopus_core::simnet::CA_ADDR;
use octopus_core::{Actor, CaNode, Control, OctopusConfig, OctopusNode};
use octopus_crypto::{Certificate, CertificateAuthority, KeyPair};
use octopus_id::{NodeId, ShardedIdSpace};
use octopus_net::Transport;
use octopus_sim::{derive_rng, Duration};
use octopus_transport::{NodeConfig, UdpHost};

/// Protocol periods shrunk for wall-clock runs: the paper's periods
/// (2 s stabilize, 60 s lookups) assume long-lived deployments; a smoke
/// run has seconds, not minutes.
fn accelerated_config(n: usize) -> OctopusConfig {
    let mut cfg = OctopusConfig::for_network(n.max(2));
    cfg.stabilize_every = Duration::from_millis(250);
    cfg.finger_update_every = Duration::from_secs(5);
    cfg.surveillance_every = Duration::from_secs(60);
    cfg.walk_every = Duration::from_secs(2);
    cfg.lookup_every = Duration::from_millis(500);
    cfg.request_timeout = Duration::from_secs(2);
    cfg.relay_max_delay = Duration::from_millis(10);
    cfg
}

/// Deterministic deployment-wide key material: every process computes
/// this identically from the master seed and the sorted ring ids.
struct Deployment {
    ca_node: CaNode,
    keys: BTreeMap<NodeId, (KeyPair, Certificate)>,
    space: ShardedIdSpace,
}

fn derive_deployment(seed: u64, ring_ids: &[NodeId], cfg: OctopusConfig) -> Deployment {
    let mut rng = derive_rng(seed, b"udp-boot", 0);
    let authority = CertificateAuthority::new(&mut rng);
    let mut ca_node = CaNode::new(CA_ADDR, authority, cfg);
    let mut keys = BTreeMap::new();
    for &id in ring_ids {
        let kp = KeyPair::generate(&mut rng);
        let cert = ca_node.issue_cert(id, kp.public());
        ca_node.register(id, kp.public());
        ca_node.note_join(id, 0);
        keys.insert(id, (kp, cert));
    }
    ca_node.broadcast_to = ring_ids.to_vec();
    Deployment {
        ca_node,
        keys,
        space: ShardedIdSpace::new(ring_ids),
    }
}

/// Idealized-join seeding, mirroring the simulator's driver: ring lists
/// from ground truth, finger provenance signed by real third parties,
/// and an initial relay-pair pool so lookups work before the first walk
/// completes.
fn seed_node(node: &mut OctopusNode, dep: &Deployment, chord: ChordConfig, seed: u64) {
    let id = node.id;
    let space = &dep.space;
    let succs = space.successor_list(id, chord.successors);
    let preds = space.predecessor_list(id, chord.predecessors);
    let fingers: Vec<NodeId> = (0..chord.fingers)
        .map(|i| space.owner_of(chord.finger_target(id, i)).owner)
        .collect();
    let mut rng = derive_rng(seed, b"udp-relays", id.0);
    let mut pairs = Vec::new();
    while pairs.len() < 4 {
        let a = space.random_member(&mut rng);
        let b = space.random_member(&mut rng);
        if a != b && a != id && b != id {
            pairs.push((a, b));
        } else if space.len() < 4 {
            break; // tiny ring: distinct pairs may not exist
        }
    }
    node.seed_state(succs, preds, fingers, pairs);
    for i in 0..chord.fingers {
        let ideal = chord.finger_target(id, i);
        let owner = space.owner_of(ideal).owner;
        let signer = (1..=3)
            .map(|d| space.predecessor(owner, d))
            .find(|&s| s != id && s != owner);
        let Some(signer) = signer else { continue };
        let Some((kp, cert)) = dep.keys.get(&signer) else {
            continue;
        };
        let list = space.successor_list(signer, chord.successors);
        let signed = SignedRoutingTable::sign(successor_list_table(signer, list), 0, kp, *cert);
        node.set_finger_provenance(i, signed);
    }
}

fn run() -> Result<(), String> {
    let args = RunArgs::from_env();
    let cfg = NodeConfig::resolve(&args)?;
    // the CA's reserved overlay address identifies it even without an
    // explicit `ca = true` in the config
    let is_ca = cfg.ca || cfg.id == CA_ADDR;
    let my_id = if is_ca { CA_ADDR } else { cfg.id };

    // ring members: every peer-table entry except the CA's
    let ring_ids: Vec<NodeId> = cfg
        .peers
        .ids()
        .into_iter()
        .filter(|&i| i != CA_ADDR)
        .collect();
    if !is_ca && !ring_ids.contains(&cfg.id) {
        return Err(format!(
            "own id {} missing from the peer table (add it to peers)",
            cfg.id.0
        ));
    }
    let ocfg = accelerated_config(ring_ids.len());
    let dep = derive_deployment(cfg.seed, &ring_ids, ocfg);
    let ca_key = dep.ca_node.public_key();

    let actor = if is_ca {
        Actor::Ca(Box::new(dep.ca_node))
    } else {
        let (kp, cert) = dep
            .keys
            .get(&cfg.id)
            .cloned()
            .ok_or_else(|| "own key missing after derivation".to_string())?;
        let mut node = OctopusNode::new(cfg.id, ocfg, kp, cert, CA_ADDR, ca_key, None);
        seed_node(&mut node, &dep, ocfg.chord, cfg.seed);
        Actor::Peer(Box::new(node))
    };

    let socket = UdpSocket::bind(cfg.bind).map_err(|e| format!("bind {}: {e}", cfg.bind))?;
    let local = socket.local_addr().map_err(|e| e.to_string())?;
    let mut host = UdpHost::new(actor, my_id, socket, cfg.peers.clone(), cfg.seed)
        .map_err(|e| e.to_string())?;
    println!("ready id={} bind={local}", my_id.0);
    std::io::stdout().flush().ok();
    // grace period: give the rest of the deployment time to bind before
    // the first onion goes out (a message to an unbound peer is silently
    // lost and costs a full request timeout)
    std::thread::sleep(std::time::Duration::from_millis(400));

    let run_ms = if cfg.run_ms == 0 {
        u64::MAX
    } else {
        cfg.run_ms
    };
    let chunk = Duration::from_millis(100);
    let mut elapsed_ms = 0u64;
    let mut lookups = 0u64;
    let mut converged = 0u64;
    while elapsed_ms < run_ms {
        for control in host.drive(chunk) {
            if let Control::LookupDone {
                initiator,
                key,
                result,
                hops,
                ..
            } = control
            {
                let expected = dep.space.owner_of(key).owner;
                let ok = result == Some(expected);
                lookups += 1;
                converged += u64::from(ok);
                println!(
                    "lookup-done id={} key={:#x} ok={ok} hops={hops}",
                    initiator.0, key.0
                );
                std::io::stdout().flush().ok();
            }
        }
        elapsed_ms = elapsed_ms.saturating_add(100);
    }

    let s = host.stats;
    println!(
        "final id={} lookups={lookups} converged={converged} frames_in={} frames_out={} \
         rejected={} unknown_peer={}",
        my_id.0, s.frames_in, s.frames_out, s.frames_rejected, s.dropped_unknown_peer
    );
    println!("clean-shutdown id={}", my_id.0);
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("octopus-node: {e}");
        std::process::exit(1);
    }
}
