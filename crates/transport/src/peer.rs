//! The peer table: overlay id → socket address.
//!
//! The simulator routes by [`octopus_net::Addr`] directly; a real
//! transport needs the extra indirection. Entries use the textual form
//! `id@host:port` (decimal or `0x`-prefixed hex id), the same syntax the
//! `--peers` flag, `OCTOPUS_PEERS` and the TOML config accept.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use octopus_id::NodeId;

/// Maps overlay ids to UDP socket addresses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerTable {
    map: BTreeMap<NodeId, SocketAddr>,
}

impl PeerTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) a peer's address.
    pub fn insert(&mut self, id: NodeId, addr: SocketAddr) {
        self.map.insert(id, addr);
    }

    /// Look up a peer's socket address.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<SocketAddr> {
        self.map.get(&id).copied()
    }

    /// Number of known peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All known overlay ids, in ring order.
    #[must_use]
    pub fn ids(&self) -> Vec<NodeId> {
        self.map.keys().copied().collect()
    }

    /// Iterate `(id, addr)` pairs in ring order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, SocketAddr)> + '_ {
        self.map.iter().map(|(&id, &a)| (id, a))
    }

    /// Parse one `id@host:port` endpoint.
    #[must_use]
    pub fn parse_entry(s: &str) -> Option<(NodeId, SocketAddr)> {
        let (id, addr) = s.trim().split_once('@')?;
        let id = parse_node_id(id)?;
        let addr: SocketAddr = addr.parse().ok()?;
        Some((id, addr))
    }

    /// Parse a comma-separated endpoint list (the `--peers` format).
    /// Returns `None` if any entry is malformed, so a typo fails the
    /// whole boot instead of silently shrinking the ring.
    #[must_use]
    pub fn from_spec(spec: &str) -> Option<Self> {
        let mut table = PeerTable::new();
        for entry in spec.split(',') {
            if entry.trim().is_empty() {
                continue;
            }
            let (id, addr) = Self::parse_entry(entry)?;
            table.insert(id, addr);
        }
        Some(table)
    }
}

/// Parse a node id: decimal, or hex with a `0x` prefix.
#[must_use]
pub fn parse_node_id(s: &str) -> Option<NodeId> {
    let s = s.trim();
    let v = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok()?,
        None => s.parse().ok()?,
    };
    Some(NodeId(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_endpoints() {
        let (id, addr) = PeerTable::parse_entry("42@127.0.0.1:7042").expect("valid");
        assert_eq!(id, NodeId(42));
        assert_eq!(addr, "127.0.0.1:7042".parse().unwrap());
        let (id, _) = PeerTable::parse_entry("0xff@127.0.0.1:1").expect("hex id");
        assert_eq!(id, NodeId(255));
    }

    #[test]
    fn spec_roundtrip() {
        let t = PeerTable::from_spec("1@127.0.0.1:7001, 2@127.0.0.1:7002,").expect("valid spec");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(NodeId(1)), Some("127.0.0.1:7001".parse().unwrap()));
        assert_eq!(t.get(NodeId(2)), Some("127.0.0.1:7002".parse().unwrap()));
        assert_eq!(t.get(NodeId(3)), None);
    }

    #[test]
    fn malformed_specs_rejected() {
        assert!(PeerTable::from_spec("1@nonsense").is_none());
        assert!(PeerTable::from_spec("one@127.0.0.1:7001").is_none());
        assert!(PeerTable::from_spec("127.0.0.1:7001").is_none());
        // empty spec is a valid empty table (seed processes start alone)
        assert_eq!(PeerTable::from_spec("").map(|t| t.len()), Some(0));
    }
}
