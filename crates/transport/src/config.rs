//! Boot configuration for `octopus-node`.
//!
//! A node boots from a minimal TOML file (no external TOML crate — the
//! subset parsed here is flat `key = value` pairs with strings,
//! integers, booleans and single-line string arrays, which covers every
//! knob the binary has), overridden by the shared
//! [`octopus_bench::RunArgs`] env/flag parser: `--addr`/`OCTOPUS_ADDR`,
//! `--peers`/`OCTOPUS_PEERS`, `--seed`/`OCTOPUS_SEED` and
//! `--node-config`/`OCTOPUS_NODE_CONFIG` all work without a file.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use octopus_bench::RunArgs;
use octopus_id::NodeId;

use crate::peer::{parse_node_id, PeerTable};

/// Everything one `octopus-node` process needs to boot.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConfig {
    /// This node's overlay id.
    pub id: NodeId,
    /// UDP bind address.
    pub bind: SocketAddr,
    /// Shared master seed: every process in a deployment must agree on
    /// it (keys, certificates and the seeded ring state derive from it).
    pub seed: u64,
    /// The full peer table, including this node's own entry.
    pub peers: PeerTable,
    /// Whether this process hosts the certificate authority instead of
    /// a peer.
    pub ca: bool,
    /// Wall-clock run length in milliseconds (0 = run until killed).
    pub run_ms: u64,
}

/// A parsed TOML scalar (the subset the config uses).
#[derive(Clone, Debug, PartialEq)]
enum TomlValue {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

/// Parse the flat TOML subset: `key = value` per line, `#` comments,
/// bare/quoted strings, integers, booleans, `["a", "b"]` arrays.
fn parse_toml(text: &str) -> Result<BTreeMap<String, TomlValue>, String> {
    let mut map = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.split_once('#') {
            // a '#' inside quotes would be truncated here; the config
            // schema has no values that legitimately contain '#'
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {}: tables are not supported", lineno + 1));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
        let key = key.trim().to_string();
        let value = parse_value(value.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        map.insert(key, value);
    }
    Ok(map)
}

fn parse_value(s: &str) -> Result<TomlValue, String> {
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?;
        let mut items = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                TomlValue::Str(v) => items.push(v),
                _ => return Err("arrays may only contain strings".to_string()),
            }
        }
        return Ok(TomlValue::StrArray(items));
    }
    if let Some(inner) = s.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match s {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(v) = s.parse::<i64>() {
        return Ok(TomlValue::Int(v));
    }
    Err(format!("cannot parse value: {s}"))
}

impl NodeConfig {
    /// Parse a config file's text. Returns a readable error, never
    /// panics on malformed input.
    ///
    /// # Errors
    /// On any syntax error, missing required key, or malformed endpoint.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let map = parse_toml(text)?;
        Self::from_map(&map)
    }

    fn from_map(map: &BTreeMap<String, TomlValue>) -> Result<Self, String> {
        let addr = match map.get("addr") {
            Some(TomlValue::Str(s)) => Some(s.clone()),
            Some(_) => return Err("addr must be a string".to_string()),
            None => None,
        };
        let (id, bind) = match addr {
            Some(spec) => {
                let (id, bind) = PeerTable::parse_entry(&spec)
                    .ok_or_else(|| format!("malformed addr: {spec}"))?;
                (Some(id), Some(bind))
            }
            None => (None, None),
        };
        let id = match map.get("id") {
            Some(TomlValue::Str(s)) => {
                Some(parse_node_id(s).ok_or_else(|| format!("malformed id: {s}"))?)
            }
            Some(TomlValue::Int(v)) => Some(NodeId(
                u64::try_from(*v).map_err(|_| "id must be non-negative")?,
            )),
            Some(_) => return Err("id must be an integer or string".to_string()),
            None => id,
        };
        let bind = match map.get("bind") {
            Some(TomlValue::Str(s)) => Some(s.parse().map_err(|_| format!("malformed bind: {s}"))?),
            Some(_) => return Err("bind must be a string".to_string()),
            None => bind,
        };
        let seed = match map.get("seed") {
            Some(TomlValue::Int(v)) => {
                u64::try_from(*v).map_err(|_| "seed must be non-negative".to_string())?
            }
            Some(_) => return Err("seed must be an integer".to_string()),
            None => 0,
        };
        let peers = match map.get("peers") {
            Some(TomlValue::StrArray(items)) => {
                let mut table = PeerTable::new();
                for item in items {
                    let (pid, paddr) = PeerTable::parse_entry(item)
                        .ok_or_else(|| format!("malformed peer: {item}"))?;
                    table.insert(pid, paddr);
                }
                table
            }
            Some(TomlValue::Str(spec)) => {
                PeerTable::from_spec(spec).ok_or_else(|| format!("malformed peers: {spec}"))?
            }
            Some(_) => return Err("peers must be an array of strings".to_string()),
            None => PeerTable::new(),
        };
        let ca = match map.get("ca") {
            Some(TomlValue::Bool(b)) => *b,
            Some(_) => return Err("ca must be a boolean".to_string()),
            None => false,
        };
        let run_ms = match map.get("run_ms") {
            Some(TomlValue::Int(v)) => {
                u64::try_from(*v).map_err(|_| "run_ms must be non-negative".to_string())?
            }
            Some(_) => return Err("run_ms must be an integer".to_string()),
            None => 0,
        };
        Ok(NodeConfig {
            id: id.ok_or_else(|| "missing id (or addr)".to_string())?,
            bind: bind.ok_or_else(|| "missing bind (or addr)".to_string())?,
            seed,
            peers,
            ca,
            run_ms,
        })
    }

    /// Resolve the full boot config: the `--node-config` TOML file (if
    /// any) overridden by `RunArgs` knobs. A config can come entirely
    /// from flags/env — the file is optional.
    ///
    /// # Errors
    /// On unreadable/malformed file or malformed override values.
    pub fn resolve(args: &RunArgs) -> Result<Self, String> {
        let mut map = match &args.node_config {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parse_toml(&text)?
            }
            None => BTreeMap::new(),
        };
        if let Some(addr) = &args.addr {
            map.insert("addr".to_string(), TomlValue::Str(addr.clone()));
            // an explicit --addr supersedes the file's id/bind split
            map.remove("id");
            map.remove("bind");
        }
        if let Some(peers) = &args.peers {
            map.insert("peers".to_string(), TomlValue::Str(peers.clone()));
        }
        if let Some(seed) = args.seed {
            let seed = i64::try_from(seed).map_err(|_| "seed too large".to_string())?;
            map.insert("seed".to_string(), TomlValue::Int(seed));
        }
        Self::from_map(&map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# octopus-node boot config
addr = "3@127.0.0.1:7003"
seed = 99
ca = false
run_ms = 5000
peers = ["1@127.0.0.1:7001", "2@127.0.0.1:7002", "3@127.0.0.1:7003"]
"#;

    #[test]
    fn parses_sample() {
        let c = NodeConfig::from_toml(SAMPLE).expect("valid");
        assert_eq!(c.id, NodeId(3));
        assert_eq!(c.bind, "127.0.0.1:7003".parse().unwrap());
        assert_eq!(c.seed, 99);
        assert!(!c.ca);
        assert_eq!(c.run_ms, 5000);
        assert_eq!(c.peers.len(), 3);
    }

    #[test]
    fn split_id_bind_form() {
        let c = NodeConfig::from_toml("id = 7\nbind = \"0.0.0.0:9000\"").expect("valid");
        assert_eq!(c.id, NodeId(7));
        assert_eq!(c.bind, "0.0.0.0:9000".parse().unwrap());
    }

    #[test]
    fn malformed_rejected_with_context() {
        assert!(NodeConfig::from_toml("addr = ").is_err());
        assert!(NodeConfig::from_toml("[section]").is_err());
        assert!(NodeConfig::from_toml("addr = \"unterminated").is_err());
        assert!(NodeConfig::from_toml("peers = [3]").is_err());
        assert!(NodeConfig::from_toml("seed = -4").is_err());
        // missing id entirely
        assert!(NodeConfig::from_toml("seed = 4").is_err());
    }

    #[test]
    fn flags_override_file_values() {
        let args = RunArgs {
            addr: Some("9@127.0.0.1:9009".to_string()),
            seed: Some(123),
            ..RunArgs::default()
        };
        // no file: flags alone suffice
        let c = NodeConfig::resolve(&args).expect("valid");
        assert_eq!(c.id, NodeId(9));
        assert_eq!(c.seed, 123);
    }
}
