//! Real-network transport for Octopus nodes.
//!
//! The protocol in `octopus-core` is written against the
//! [`octopus_net::Runtime`] boundary, so the identical node code that
//! runs in the deterministic simulator also runs here, over real UDP
//! sockets:
//!
//! * [`peer::PeerTable`] maps overlay ids to socket addresses
//!   (`id@host:port` entries);
//! * [`host::UdpHost`] is the poll-loop host: a `std::net::UdpSocket`
//!   with a read timeout, a timer wheel reused from `octopus-sim`, and
//!   the shared buffer-backed [`octopus_net::Ctx`] — no async runtime;
//! * frames on the wire are the versioned, checksummed format of
//!   `octopus_net::wire` (`encode_frame`/`decode_frame`); malformed
//!   datagrams are counted and dropped, never panicked on;
//! * [`config::NodeConfig`] boots one node from a minimal TOML file
//!   plus `OCTOPUS_*` env / `--flag` overrides (the shared
//!   `octopus_bench::RunArgs` parser).
//!
//! This crate is the sanctioned home for wall-clock time and socket
//! I/O (see OCT-LINT-002/003 scoping in `crates/lint`): determinism
//! here means *seeded protocol randomness* — every node's RNG stream
//! still derives from the configured master seed — while message
//! arrival order is whatever the real network delivers.

pub mod config;
pub mod host;
pub mod peer;

pub use config::NodeConfig;
pub use host::{HostStats, UdpHost};
pub use peer::PeerTable;
