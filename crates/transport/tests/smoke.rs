//! Multi-process UDP smoke test (feature `net-smoke`).
//!
//! Boots a real deployment on localhost — four Octopus peers plus the
//! CA, five OS processes total — from generated TOML configs, lets it
//! run lookups over actual UDP sockets, and asserts:
//!
//! * every process reports `ready` and exits cleanly (status 0 with a
//!   `clean-shutdown` line) within a hard timeout;
//! * every peer completes lookups and the large majority *converge*
//!   (the result matches the ground-truth ring owner — the paper's
//!   correctness criterion);
//! * no process rejected a frame: all traffic is codec-clean.
//!
//! Gated behind `net-smoke` because it binds sockets and spawns
//! processes; the dedicated CI job runs
//! `cargo test -p octopus-transport --features net-smoke --test smoke`.

#![cfg(feature = "net-smoke")]

use std::io::Write;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Hard ceiling on the whole deployment's lifetime. The run itself is
/// ~7 s; anything past this is a hang, and the harness kills it rather
/// than letting CI time out opaquely.
const HARD_TIMEOUT: Duration = Duration::from_secs(60);

/// Wall-clock protocol runtime per process (ms).
const RUN_MS: u64 = 6000;

const PEER_IDS: [u64; 4] = [100, 200, 300, 400];
const CA_ID: u64 = u64::MAX;

struct Proc {
    name: String,
    child: Child,
}

fn spawn_deployment(dir: &std::path::Path, base_port: u16) -> Vec<Proc> {
    let ca_entry = format!("{CA_ID}@127.0.0.1:{base_port}");
    let mut entries: Vec<String> = PEER_IDS
        .iter()
        .enumerate()
        .map(|(i, id)| format!("{id}@127.0.0.1:{}", base_port + 1 + i as u16))
        .collect();
    entries.push(ca_entry.clone());
    let peers_toml = entries
        .iter()
        .map(|e| format!("\"{e}\""))
        .collect::<Vec<_>>()
        .join(", ");

    let mut procs = Vec::new();
    for entry in &entries {
        let id: u64 = entry.split('@').next().unwrap().parse().unwrap();
        let name = if id == CA_ID {
            "ca".to_string()
        } else {
            format!("peer{id}")
        };
        let config =
            format!("addr = \"{entry}\"\nseed = 42\nrun_ms = {RUN_MS}\npeers = [{peers_toml}]\n");
        let path = dir.join(format!("{name}.toml"));
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(config.as_bytes()))
            .expect("write config");
        let child = Command::new(env!("CARGO_BIN_EXE_octopus-node"))
            .arg("--node-config")
            .arg(&path)
            // isolate from the developer's environment
            .env_remove("OCTOPUS_ADDR")
            .env_remove("OCTOPUS_PEERS")
            .env_remove("OCTOPUS_SEED")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn octopus-node");
        procs.push(Proc { name, child });
    }
    procs
}

// Timing a real multi-process deployment is inherently wall-clock
// (the octolint OCT-LINT-002 transport exemption; clippy's
// disallowed-methods layer needs the same sanction spelled out).
#[allow(clippy::disallowed_methods)]
fn wall_now() -> Instant {
    Instant::now()
}

/// Wait for every process within the hard timeout; kill stragglers.
fn wait_all(procs: &mut [Proc]) -> Vec<(String, std::process::Output)> {
    let deadline = wall_now() + HARD_TIMEOUT;
    let mut done: Vec<Option<()>> = procs.iter().map(|_| None).collect();
    loop {
        let mut all_done = true;
        for (i, p) in procs.iter_mut().enumerate() {
            if done[i].is_none() {
                match p.child.try_wait().expect("try_wait") {
                    Some(_) => done[i] = Some(()),
                    None => all_done = false,
                }
            }
        }
        if all_done {
            break;
        }
        if wall_now() >= deadline {
            for p in procs.iter_mut() {
                let _ = p.child.kill();
            }
            panic!("deployment exceeded the {HARD_TIMEOUT:?} hard timeout");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    procs
        .iter_mut()
        .map(|p| {
            let out = std::mem::replace(&mut p.child, Command::new("true").spawn().unwrap())
                .wait_with_output()
                .expect("collect output");
            (p.name.clone(), out)
        })
        .collect()
}

fn field(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

#[test]
fn four_process_udp_deployment_converges() {
    let dir = std::env::temp_dir().join(format!("octopus-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut procs = spawn_deployment(&dir, 17900);
    let outputs = wait_all(&mut procs);

    let mut total_converged = 0u64;
    for (name, out) in &outputs {
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "{name} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
            out.status
        );
        assert!(stdout.contains("ready id="), "{name} never reported ready");
        assert!(
            stdout.contains("clean-shutdown id="),
            "{name} did not shut down cleanly:\n{stdout}"
        );
        let final_line = stdout
            .lines()
            .find(|l| l.starts_with("final "))
            .unwrap_or_else(|| panic!("{name} printed no final line:\n{stdout}"));
        let lookups = field(final_line, "lookups").expect("lookups field");
        let converged = field(final_line, "converged").expect("converged field");
        let rejected = field(final_line, "rejected").expect("rejected field");
        assert_eq!(rejected, 0, "{name} rejected frames: {final_line}");
        if name != "ca" {
            // each peer runs lookups every ~500 ms for 6 s: demand real
            // activity and majority convergence (startup raciness may
            // cost the first request-timeout's worth)
            assert!(lookups >= 4, "{name} ran too few lookups: {final_line}");
            assert!(
                converged * 2 > lookups,
                "{name} failed to converge a majority: {final_line}"
            );
            total_converged += converged;
        }
    }
    assert!(
        total_converged >= PEER_IDS.len() as u64 * 3,
        "deployment converged too few lookups in total ({total_converged})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
