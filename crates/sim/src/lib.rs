//! Deterministic discrete-event simulation engine.
//!
//! The paper evaluates Octopus' attacker-identification mechanisms with
//! an event-based simulator (§5.1, written in C++ there). This crate is
//! our equivalent: a time-ordered event queue ([`EventQueue`]),
//! simulation clock ([`SimTime`]), deterministic per-component RNG
//! streams ([`rng`]), and the exponential churn process of §5.1
//! ([`churn`]).
//!
//! The engine is protocol-agnostic: `octopus-net` layers a message-passing
//! world on top, and `octopus-core::simnet` layers the full Octopus
//! security simulation on that.
//!
//! The queue's storage is pluggable ([`sched`]): a reference
//! binary-heap backend and a hierarchical timing-wheel backend that is
//! ≥ 2× faster on the timer-dominated paper workload. Both obey the
//! same ordering contract, so the choice ([`SchedulerKind`]) changes
//! speed, never results.
//!
//! The engine also composes to *several* queues: a sharded world keeps
//! one [`EventQueue`] per shard, assigns totally ordered `(time, seq)`
//! keys without cross-shard coordination by packing a
//! `(lane, origin, counter)` tie-break into the 128-bit `seq`
//! ([`EventQueue::push_with_seq`]), merges heads with
//! [`EventQueue::peek_key`], and bounds how far execution may run
//! between cross-shard synchronization barriers with a conservative
//! [`LookaheadWindow`] ([`window`]).
//!
//! Determinism contract: given the same master seed and the same sequence
//! of `push` calls, `pop` returns events in an identical order (ties break
//! by insertion sequence number) on every backend, so every experiment in
//! the paper harness is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod time;
pub mod window;

pub use churn::ChurnProcess;
pub use queue::EventQueue;
pub use rng::{derive_rng, split_seed};
pub use sched::{BinaryHeapScheduler, Scheduler, SchedulerKind, TimingWheel};
pub use time::{Duration, SimTime};
pub use window::LookaheadWindow;
