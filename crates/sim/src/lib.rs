//! Deterministic discrete-event simulation engine.
//!
//! The paper evaluates Octopus' attacker-identification mechanisms with
//! an event-based simulator (§5.1, written in C++ there). This crate is
//! our equivalent: a time-ordered event queue ([`EventQueue`]),
//! simulation clock ([`SimTime`]), deterministic per-component RNG
//! streams ([`rng`]), and the exponential churn process of §5.1
//! ([`churn`]).
//!
//! The engine is protocol-agnostic: `octopus-net` layers a message-passing
//! world on top, and `octopus-core::simnet` layers the full Octopus
//! security simulation on that.
//!
//! Determinism contract: given the same master seed and the same sequence
//! of `push` calls, `pop` returns events in an identical order (ties break
//! by insertion sequence number), so every experiment in the paper harness
//! is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod queue;
pub mod rng;
pub mod time;

pub use churn::ChurnProcess;
pub use queue::EventQueue;
pub use rng::{derive_rng, split_seed};
pub use time::{Duration, SimTime};
